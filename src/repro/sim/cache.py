"""Client-side caching for broadcast disks.

The broadcast-disk literature the paper builds on (Acharya, Franklin &
Zdonik) pairs the server's program with client cache management: a mobile
client with a small buffer should not cache what the server broadcasts
most often, but what is *valuable relative to its broadcast frequency*.
This module provides the two classic policies plus the caching client the
examples and benches use:

* :class:`LruCache` - ordinary recency-based replacement (the baseline
  Acharya et al. argue against for broadcast environments);
* :class:`PixCache` - their ``PIX`` rule: evict the page with the lowest
  ratio of access probability to broadcast frequency, so hot-but-
  frequently-rebroadcast items make way for warm-but-rare ones;
* :class:`CachingClient` - wraps retrieval with a cache: a hit answers in
  zero slots, a miss pays the broadcast latency and inserts.

The cache operates at file granularity (the unit of reconstruction): once
a client holds a file's ``m`` blocks it holds the file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol

from repro.errors import SimulationError, SpecificationError
from repro.bdisk.program import BroadcastProgram
from repro.sim.client import RetrievalResult, default_horizon, retrieve
from repro.sim.faults import FaultModel, NoFaults


class CachePolicy(Protocol):
    """Chooses victims for a full cache."""

    def on_access(self, name: str, now: int) -> None:
        """Record a reference to ``name`` at time ``now``."""
        ...

    def victim(self, resident: set[str]) -> str:
        """Pick the resident entry to evict."""
        ...


class LruCache:
    """Least-recently-used replacement."""

    def __init__(self) -> None:
        self._last_use: dict[str, int] = {}

    def on_access(self, name: str, now: int) -> None:
        self._last_use[name] = now

    def victim(self, resident: set[str]) -> str:
        # Ties (equal last use, or several never-seen residents) break on
        # the name: set iteration order follows randomized string hashes,
        # so keying on it would make eviction vary run to run.
        return min(
            resident, key=lambda name: (self._last_use.get(name, -1), name)
        )

    def __repr__(self) -> str:
        return "LruCache()"


class PixCache:
    """Acharya et al.'s PIX: evict the lowest probability / frequency.

    ``access_probability`` is the client's interest in each file;
    ``broadcast_frequency`` how often the server repeats it (e.g. the
    file's slots per cycle).  Items re-broadcast constantly are cheap to
    re-fetch, so they are the first to go - even when hot.
    """

    def __init__(
        self,
        access_probability: Mapping[str, float],
        broadcast_frequency: Mapping[str, float],
    ) -> None:
        for name, value in access_probability.items():
            if value < 0:
                raise SpecificationError(
                    f"access probability for {name!r} must be >= 0"
                )
        for name, value in broadcast_frequency.items():
            if value <= 0:
                raise SpecificationError(
                    f"broadcast frequency for {name!r} must be > 0"
                )
        self._p = dict(access_probability)
        self._x = dict(broadcast_frequency)

    @classmethod
    def for_program(
        cls,
        program: BroadcastProgram,
        access_probability: Mapping[str, float],
        file_sizes: Mapping[str, int] | None = None,
    ) -> "PixCache":
        """Derive frequencies from a program's layout.

        Frequency is *full-file broadcasts per slot*: a file's slot count
        divided by its size (one reconstruction opportunity per ``m``
        slots) and by the period - so a big file occupying many slots is
        not mistaken for a frequently-repeated one.  Without
        ``file_sizes`` each appearance counts as a broadcast (size 1).
        """
        sizes = file_sizes or {}
        frequencies = {
            name: program.schedule.total(name)
            / max(1, sizes.get(name, 1))
            / program.broadcast_period
            for name in program.files
        }
        return cls(access_probability, frequencies)

    def on_access(self, name: str, now: int) -> None:
        # PIX is frequency-based, not recency-based; nothing to record.
        return None

    def pix(self, name: str) -> float:
        """The eviction score: access probability over frequency."""
        frequency = self._x.get(name)
        if frequency is None:
            raise SimulationError(
                f"no broadcast frequency known for {name!r}"
            )
        return self._p.get(name, 0.0) / frequency

    def victim(self, resident: set[str]) -> str:
        # Equal PIX scores break on the name (see LruCache.victim).
        return min(resident, key=lambda name: (self.pix(name), name))

    def __repr__(self) -> str:
        return f"PixCache(files={sorted(self._x)})"


@dataclass
class CacheStats:
    """Hit/miss accounting for one caching client."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    miss_latency: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean slots per access (hits are free, misses pay broadcast)."""
        if not self.accesses:
            return 0.0
        return self.miss_latency / self.accesses


@dataclass
class CachingClient:
    """A client with a bounded file cache in front of the broadcast disk.

    Parameters
    ----------
    program:
        The server's broadcast program.
    file_sizes:
        Blocks needed per file.
    capacity:
        Cache capacity in *files* (the paper's clients have small buffers
        relative to the database, which is the whole point).
    policy:
        Replacement policy (:class:`LruCache` or :class:`PixCache`).
    faults:
        Channel fault model applied to cache misses.
    max_slots:
        Per-miss listening horizon override (default: the shared
        ``(m + 2)``-data-cycle convention, see
        :func:`repro.sim.client.default_horizon`).
    """

    program: BroadcastProgram
    file_sizes: Mapping[str, int]
    capacity: int
    policy: CachePolicy
    faults: FaultModel = field(default_factory=NoFaults)
    max_slots: int | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SpecificationError(
                f"cache capacity must be >= 1 file: {self.capacity}"
            )
        if self.max_slots is not None and self.max_slots < 1:
            raise SpecificationError(
                f"max_slots must be >= 1: {self.max_slots}"
            )
        self._resident: set[str] = set()
        self.stats = CacheStats()

    def horizon(self, name: str) -> int:
        """Slots a miss on ``name`` listens before giving up."""
        if self.max_slots is not None:
            return self.max_slots
        return default_horizon(self.program, self.file_sizes[name])

    @property
    def resident(self) -> frozenset[str]:
        """Files currently cached."""
        return frozenset(self._resident)

    def access(self, name: str, now: int) -> RetrievalResult | None:
        """Read ``name`` at slot ``now``.

        Returns ``None`` on a cache hit (zero latency); otherwise the
        broadcast :class:`RetrievalResult` for the miss.  Incomplete
        retrievals (channel black-out) are not cached.
        """
        if name not in self.file_sizes:
            raise SimulationError(f"unknown file {name!r}")
        self.policy.on_access(name, now)
        if name in self._resident:
            self.stats.hits += 1
            return None

        self.stats.misses += 1
        result = retrieve(
            self.program,
            name,
            self.file_sizes[name],
            start=now,
            faults=self.faults,
            max_slots=self.max_slots,
        )
        if result.completed and result.latency is not None:
            self.stats.miss_latency += result.latency
            if len(self._resident) >= self.capacity:
                victim = self.policy.victim(self._resident)
                self._resident.discard(victim)
                self.stats.evictions += 1
            self._resident.add(name)
        return result
