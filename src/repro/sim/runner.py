"""End-to-end simulation: a broadcast program serving a request stream.

Ties the pieces together: the server runs a :class:`BroadcastProgram`,
the channel applies a :class:`FaultModel`, clients issue deadline-tagged
requests and retrieve via :func:`repro.sim.client.retrieve`, and the
outcome is summarized with :mod:`repro.sim.metrics`.  This is the harness
behind the multidisk-baseline comparison and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import SimulationError
from repro.bdisk.program import BroadcastProgram
from repro.sim.client import RetrievalResult, retrieve
from repro.sim.faults import FaultModel, NoFaults
from repro.sim.metrics import LatencySummary, summarize_latencies
from repro.sim.workload import Request


@dataclass(frozen=True)
class SimulationResult:
    """All retrievals of a run plus per-run summaries."""

    retrievals: tuple[RetrievalResult, ...]
    requests: tuple[Request, ...]
    summary: LatencySummary
    deadline_misses: int

    @property
    def deadline_miss_rate(self) -> float:
        return (
            self.deadline_misses / len(self.requests)
            if self.requests
            else 0.0
        )


def simulate_requests(
    program: BroadcastProgram,
    requests: Sequence[Request],
    *,
    file_sizes: Mapping[str, int],
    faults: FaultModel | None = None,
    need_distinct: bool = True,
    max_slots: int | None = None,
) -> SimulationResult:
    """Run a request stream against a program.

    Parameters
    ----------
    program:
        The server's broadcast program.
    requests:
        Deadline-tagged requests (see :func:`repro.sim.workload.request_stream`).
    file_sizes:
        Blocks needed per file (``m_i``) - the reconstruction requirement.
    faults:
        Channel fault model shared by all clients (default: none).
    need_distinct:
        IDA mode (any ``m`` distinct blocks) vs specific-blocks mode.
    max_slots:
        Per-retrieval listening horizon (default: generous, see
        :func:`repro.sim.client.retrieve`).
    """
    if not requests:
        raise SimulationError("no requests supplied")
    fault_model = faults if faults is not None else NoFaults()

    retrievals: list[RetrievalResult] = []
    misses = 0
    for request in requests:
        if request.file not in file_sizes:
            raise SimulationError(
                f"no size known for requested file {request.file!r}"
            )
        result = retrieve(
            program,
            request.file,
            file_sizes[request.file],
            start=request.time,
            faults=fault_model,
            need_distinct=need_distinct,
            max_slots=max_slots,
        )
        retrievals.append(result)
        if not result.met_deadline(request.deadline):
            misses += 1

    summary = summarize_latencies(
        (r.latency for r in retrievals),
    )
    return SimulationResult(
        retrievals=tuple(retrievals),
        requests=tuple(requests),
        summary=summary,
        deadline_misses=misses,
    )
