"""End-to-end simulation: a broadcast program serving a request stream.

Ties the pieces together: the server runs a :class:`BroadcastProgram`,
the channel applies a :class:`FaultModel`, clients issue deadline-tagged
requests and retrieve via :func:`repro.sim.client.retrieve`, and the
outcome is summarized with :mod:`repro.sim.metrics`.  This is the harness
behind the multidisk-baseline comparison and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.errors import SimulationError
from repro.bdisk.multichannel import ChannelSet
from repro.bdisk.program import BroadcastProgram
from repro.sim.client import (
    MultiChannelRetrieval,
    RetrievalResult,
    retrieve,
    retrieve_multichannel,
)
from repro.sim.faults import FaultModel, NoFaults
from repro.sim.metrics import LatencySummary, summarize_latencies
from repro.sim.workload import Request


@dataclass(frozen=True)
class SimulationResult:
    """All retrievals of a run plus per-run summaries."""

    retrievals: tuple[RetrievalResult, ...]
    requests: tuple[Request, ...]
    summary: LatencySummary
    deadline_misses: int

    @property
    def deadline_miss_rate(self) -> float:
        return (
            self.deadline_misses / len(self.requests)
            if self.requests
            else 0.0
        )


def simulate_requests(
    program: BroadcastProgram,
    requests: Sequence[Request],
    *,
    file_sizes: Mapping[str, int],
    faults: FaultModel | None = None,
    need_distinct: bool = True,
    max_slots: int | None = None,
) -> SimulationResult:
    """Run a request stream against a program.

    Parameters
    ----------
    program:
        The server's broadcast program.
    requests:
        Deadline-tagged requests (see :func:`repro.sim.workload.request_stream`).
    file_sizes:
        Blocks needed per file (``m_i``) - the reconstruction requirement.
    faults:
        Channel fault model shared by all clients (default: none).
    need_distinct:
        IDA mode (any ``m`` distinct blocks) vs specific-blocks mode.
    max_slots:
        Per-retrieval listening horizon (default: generous, see
        :func:`repro.sim.client.retrieve`).
    """
    if not requests:
        raise SimulationError("no requests supplied")
    fault_model = faults if faults is not None else NoFaults()

    # Group requests by file: sizes are validated once per file, the
    # occurrence index is forced once up front, and each file's occurrence
    # table stays hot in cache while its requests replay back to back.
    # Fault decisions are deterministic per (seed, slot), so regrouping
    # cannot change any retrieval outcome; results are reported in the
    # original request order.
    by_file: dict[str, list[int]] = {}
    for position, request in enumerate(requests):
        by_file.setdefault(request.file, []).append(position)
    unknown = [file for file in by_file if file not in file_sizes]
    if unknown:
        raise SimulationError(
            f"no size known for requested file {unknown[0]!r}"
        )
    program.index  # build the shared occurrence tables once

    # Over the failure-free channel a retrieval's outcome depends on the
    # start slot only through its phase (start mod data cycle): the
    # occurrence sequence seen from `start` is the sequence seen from the
    # phase, shifted by a whole number of data cycles, and the horizon
    # length does not depend on `start`.  Heavy traffic therefore costs
    # one real retrieval per (file, phase); every other request is a
    # shift.  Stochastic models key decisions on absolute slots, so no
    # such reuse is possible there.
    cycle = program.data_cycle_length
    fault_free = isinstance(fault_model, NoFaults)

    retrievals: list[RetrievalResult | None] = [None] * len(requests)
    misses = 0
    for file, positions in by_file.items():
        m_needed = file_sizes[file]
        if not fault_free:
            for position in positions:
                request = requests[position]
                result = retrieve(
                    program,
                    file,
                    m_needed,
                    start=request.time,
                    faults=fault_model,
                    need_distinct=need_distinct,
                    max_slots=max_slots,
                )
                retrievals[position] = result
                if not result.met_deadline(request.deadline):
                    misses += 1
            continue
        # Results are immutable, so requests with the same start slot
        # share one result object; distinct starts shift the one real
        # retrieval of their phase.
        by_phase: dict[int, RetrievalResult] = {}
        by_start: dict[int, RetrievalResult] = {}
        for position in positions:
            request = requests[position]
            start = request.time
            result = by_start.get(start)
            if result is None:
                phase = start % cycle
                cached = by_phase.get(phase)
                if cached is None:
                    cached = by_phase[phase] = retrieve(
                        program,
                        file,
                        m_needed,
                        start=phase,
                        need_distinct=need_distinct,
                        max_slots=max_slots,
                    )
                shift = start - phase
                if shift == 0:
                    result = cached
                elif cached.completed:
                    result = RetrievalResult(
                        file=file,
                        start=start,
                        completed=True,
                        finish_slot=cached.finish_slot + shift,
                        latency=cached.latency,
                        received=cached.received,
                        lost_slots=(),
                    )
                else:
                    result = replace(cached, start=start)
                by_start[start] = result
            retrievals[position] = result
            if not (
                result.completed and result.latency <= request.deadline
            ):
                misses += 1

    summary = summarize_latencies(
        (r.latency for r in retrievals),
    )
    return SimulationResult(
        retrievals=tuple(retrievals),
        requests=tuple(requests),
        summary=summary,
        deadline_misses=misses,
    )


def simulate_requests_multichannel(
    channels: ChannelSet,
    requests: Sequence[Request],
    *,
    file_sizes: Mapping[str, int],
    faults: Sequence[FaultModel | None] | None = None,
    max_slots: int | None = None,
) -> SimulationResult:
    """Run a request stream against a multi-channel set.

    The multichannel counterpart of :func:`simulate_requests`: each
    request models a freshly arriving client signed on tuned to channel
    0, retrieving via :func:`repro.sim.client.retrieve_multichannel`
    (earliest-feasible channel, tuning cost on a switch).  The
    retrievals are :class:`~repro.sim.client.MultiChannelRetrieval`
    records - a superset of the single-channel result fields, so the
    :class:`SimulationResult` summaries read the same.  ``faults`` is
    one model per channel (``None`` entries mean a clean channel);
    request streams are modest, so there is no phase memo here.
    """
    if not requests:
        raise SimulationError("no requests supplied")
    if faults is not None and len(faults) != channels.count:
        raise SimulationError(
            f"per-channel faults must have one entry per channel: "
            f"got {len(faults)} for {channels.count} channel(s)"
        )
    unknown = [
        request.file
        for request in requests
        if request.file not in file_sizes
    ]
    if unknown:
        raise SimulationError(
            f"no size known for requested file {unknown[0]!r}"
        )
    for program in channels.programs:
        program.index  # build the shared occurrence tables once

    retrievals: list[MultiChannelRetrieval] = []
    misses = 0
    for request in requests:
        result = retrieve_multichannel(
            channels,
            request.file,
            file_sizes[request.file],
            start=request.time,
            tuned=0,
            faults=faults,
            max_slots=max_slots,
        )
        retrievals.append(result)
        if not result.met_deadline(request.deadline):
            misses += 1

    summary = summarize_latencies(
        (r.latency for r in retrievals),
    )
    return SimulationResult(
        retrievals=tuple(retrievals),
        requests=tuple(requests),
        summary=summary,
        deadline_misses=misses,
    )
