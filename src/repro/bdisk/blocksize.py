"""The block-size / dispersal-level trade-off (Section 5, open issue).

The paper closes with an open problem: IDA disperses a file of
``size = m * b`` bytes into pieces of ``b`` bytes, so the dispersal level
``m`` is inversely proportional to the chosen block size.  Smaller blocks
mean:

* finer-grained windows - padding and fault-budget slots waste less
  bandwidth (density falls toward the information-theoretic floor), but
* higher dispersal/reconstruction cost (a trivial IDA implementation is
  ``O(m^2)`` per byte).

This module implements the paper's proposed analysis: given file sizes in
*bytes*, latency budgets in seconds, per-file fault budgets, and a channel
bandwidth in bytes/second, it evaluates candidate system-wide block sizes
``b`` and reports, for each, the induced pinwheel density and whether the
Chan & Chin test admits it - answering "the largest ``b`` that satisfies
the combined timeliness, fault-tolerance, and bandwidth constraints".

The generalization the paper sketches (per-file multiples ``b_i = k_i *
b``) is provided by :func:`per_file_multiples`: larger files may use
bigger blocks (fewer pieces, cheaper codecs) while small urgent files
stay fine-grained.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.errors import SpecificationError
from repro.core.bounds import CHAN_CHIN_DENSITY


@dataclass(frozen=True, slots=True)
class SizedFile:
    """A file for block-size analysis: bytes, latency, fault budget."""

    name: str
    size_bytes: int
    latency_seconds: Fraction | int
    fault_budget: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 1:
            raise SpecificationError(
                f"file {self.name!r}: size must be >= 1 byte"
            )
        if Fraction(self.latency_seconds) <= 0:
            raise SpecificationError(
                f"file {self.name!r}: latency must be > 0"
            )
        if self.fault_budget < 0:
            raise SpecificationError(
                f"file {self.name!r}: fault budget must be >= 0"
            )

    def dispersal_level(self, block_size: int) -> int:
        """``m = ceil(size / b)`` - pieces needed at block size ``b``."""
        return -(-self.size_bytes // block_size)


@dataclass(frozen=True)
class BlockSizeReport:
    """Analysis of one candidate block size."""

    block_size: int
    density: Fraction
    schedulable: bool
    dispersal_levels: dict[str, int]
    codec_cost: float

    def __str__(self) -> str:
        flag = "OK " if self.schedulable else "-- "
        return (
            f"{flag}b={self.block_size:>6}: density "
            f"{float(self.density):.4f}, max m "
            f"{max(self.dispersal_levels.values())}, codec ~"
            f"{self.codec_cost:.1f}"
        )


def analyze_block_size(
    files: Sequence[SizedFile],
    bandwidth_bytes_per_s: int,
    block_size: int,
) -> BlockSizeReport:
    """Evaluate one system-wide block size.

    At block size ``b`` the channel carries ``B / b`` slots per second, so
    file ``i`` induces the pinwheel task ``(m_i + r_i, T_i * B / b)`` with
    ``m_i = ceil(size_i / b)`` and density contribution
    ``(m_i + r_i) * b / (T_i * B)``.  The task system is declared
    schedulable when total density is at most the Chan & Chin 7/10 (the
    same test Equations 1-2 rest on); the relative codec cost models the
    paper's ``O(m^2)`` dispersal arithmetic, normalized per byte.
    """
    if block_size < 1:
        raise SpecificationError(f"block size must be >= 1: {block_size}")
    if bandwidth_bytes_per_s < 1:
        raise SpecificationError(
            f"bandwidth must be >= 1 byte/s: {bandwidth_bytes_per_s}"
        )
    if not files:
        raise SpecificationError("at least one file is required")

    density = Fraction(0)
    levels: dict[str, int] = {}
    codec = 0.0
    for spec in files:
        m = spec.dispersal_level(block_size)
        levels[spec.name] = m
        window_slots = (
            Fraction(spec.latency_seconds)
            * bandwidth_bytes_per_s
            / block_size
        )
        requirement = m + spec.fault_budget
        if window_slots < requirement:
            # Even a perfect schedule cannot fit the blocks in the window.
            density += Fraction(10**9)
        else:
            density += Fraction(requirement) / window_slots
        # O(m^2) arithmetic over size bytes -> per-byte factor of m.
        codec += spec.size_bytes * m
    codec /= sum(spec.size_bytes for spec in files)
    return BlockSizeReport(
        block_size=block_size,
        density=density,
        schedulable=density <= CHAN_CHIN_DENSITY,
        dispersal_levels=levels,
        codec_cost=codec,
    )


def largest_schedulable_block_size(
    files: Sequence[SizedFile],
    bandwidth_bytes_per_s: int,
    candidates: Sequence[int],
) -> tuple[BlockSizeReport | None, list[BlockSizeReport]]:
    """The paper's question: the largest ``b`` passing the density test.

    Returns ``(best, all_reports)`` where ``best`` is the schedulable
    report with the largest block size (``None`` when no candidate
    passes).  Larger blocks are preferred because the codec cost falls
    quadratically with ``b``.
    """
    if not candidates:
        raise SpecificationError("no candidate block sizes supplied")
    reports = [
        analyze_block_size(files, bandwidth_bytes_per_s, candidate)
        for candidate in sorted(set(candidates))
    ]
    best = None
    for report in reports:
        if report.schedulable:
            best = report
    return best, reports


def per_file_multiples(
    files: Sequence[SizedFile],
    bandwidth_bytes_per_s: int,
    base_block: int,
    max_multiple: int = 8,
) -> dict[str, int]:
    """Greedy ``b_i = k_i * b`` assignment (the paper's generalization).

    Starting from ``k_i = 1``, repeatedly doubles the ``k`` of the file
    whose codec cost is worst, as long as total density stays within the
    Chan & Chin bound.  Returns the chosen multiple per file.  This is a
    heuristic - the paper leaves the exact optimization open - but it
    captures the intended behaviour: big cold files get big blocks.
    """
    if base_block < 1 or max_multiple < 1:
        raise SpecificationError("base_block and max_multiple must be >= 1")
    multiples = {spec.name: 1 for spec in files}

    def density_at(assignment: dict[str, int]) -> Fraction:
        total = Fraction(0)
        for spec in files:
            block = base_block * assignment[spec.name]
            m = spec.dispersal_level(block)
            window = (
                Fraction(spec.latency_seconds)
                * bandwidth_bytes_per_s
                / block
            )
            requirement = m + spec.fault_budget
            if window < requirement:
                return Fraction(10**9)
            total += Fraction(requirement) / window
        return total

    if density_at(multiples) > CHAN_CHIN_DENSITY:
        raise SpecificationError(
            f"base block {base_block} is already unschedulable"
        )
    improved = True
    while improved:
        improved = False
        # Worst codec cost first: the file with the highest current m.
        order = sorted(
            files,
            key=lambda s: s.dispersal_level(
                base_block * multiples[s.name]
            ),
            reverse=True,
        )
        for spec in order:
            if multiples[spec.name] * 2 > max_multiple:
                continue
            trial = dict(multiples)
            trial[spec.name] *= 2
            if density_at(trial) <= CHAN_CHIN_DENSITY:
                multiples = trial
                improved = True
                break
    return multiples


def codec_cost_model(m: int) -> int:
    """Relative per-byte cost of dispersal at level ``m`` (``O(m)`` per
    byte, ``O(m^2)`` per block row) - exposed for benches to plot."""
    if m < 1:
        raise SpecificationError(f"dispersal level must be >= 1: {m}")
    return m
