"""Multi-channel broadcast programs: ``k`` pinwheels aired in parallel.

The paper designs one fault-tolerant broadcast channel; production
broadcast-disk deployments stripe hot data over several parallel
channels and replicate critical items across them.  This module is the
design half of that generalization:

* :func:`resolve_assignment` turns an assignment policy (striped /
  replicated / explicit) into a concrete ``file -> channels`` map, using
  the partitioner registry (:mod:`repro.core.partition`) for stripes -
  the *partition* step of partition-then-solve multiprocessor pinwheel
  scheduling.
* :func:`design_multichannel_program` then solves each channel as an
  ordinary single-channel instance through the existing scheduler
  portfolio (the *solve* step), applies per-channel fault budgets, and
  harmonizes regular-model bandwidths so all channels share one slot
  clock.
* :class:`ChannelSet` packages the per-channel
  :class:`~repro.bdisk.program.BroadcastProgram` objects with the
  assignment map and the client-side runtime knobs (tuning cost, quorum
  size); every program reuses :class:`~repro.bdisk.index.ProgramIndex`
  unchanged, so all single-channel walkers and tables work per channel.

A one-channel set is the bit-identical degenerate case: channel 0 gets
the same files, budgets, bandwidth, and scheduler routing the
single-channel designer would use, so its program - and everything
downstream of it - is equal to the classic design.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Mapping, Sequence, TYPE_CHECKING

from repro import obs
from repro.errors import SpecificationError
from repro.bdisk.builder import (
    ProgramDesign,
    design_generalized_program,
    design_program,
)
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.bdisk.program import BroadcastProgram
from repro.core.partition import partition_files

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.scenario import ChannelSpec

AnyFile = FileSpec | GeneralizedFileSpec


@dataclass(frozen=True)
class ChannelSet:
    """``k`` parallel broadcast programs plus the client-facing contract.

    Attributes
    ----------
    programs:
        One verified :class:`BroadcastProgram` per channel.
    assignment:
        File name -> sorted tuple of channel indices airing it.
    tuning_cost:
        Slots a client pays to re-tune to a different channel.
    quorum:
        Copies a versioned read must assemble with a consistent version.
    """

    programs: tuple[BroadcastProgram, ...]
    assignment: Mapping[str, tuple[int, ...]]
    tuning_cost: int = 0
    quorum: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "programs", tuple(self.programs))
        if not self.programs:
            raise SpecificationError(
                "a ChannelSet needs at least one channel program"
            )
        normalized = {
            name: tuple(sorted(ids))
            for name, ids in dict(self.assignment).items()
        }
        count = len(self.programs)
        for name, ids in normalized.items():
            if not ids:
                raise SpecificationError(
                    f"file {name!r} is assigned to no channel"
                )
            if ids[0] < 0 or ids[-1] >= count:
                raise SpecificationError(
                    f"file {name!r} is assigned to channel(s) "
                    f"{list(ids)}, but the set has {count}"
                )
            for channel in ids:
                if name not in self.programs[channel].files:
                    raise SpecificationError(
                        f"file {name!r} is assigned to channel "
                        f"{channel}, whose program does not carry it"
                    )
        object.__setattr__(self, "assignment", normalized)
        if self.tuning_cost < 0:
            raise SpecificationError(
                f"tuning_cost must be >= 0: {self.tuning_cost}"
            )
        if not 1 <= self.quorum <= count:
            raise SpecificationError(
                f"quorum must be in 1..{count}: {self.quorum}"
            )

    @property
    def count(self) -> int:
        """Number of channels ``k``."""
        return len(self.programs)

    def channels_for(self, file: str) -> tuple[int, ...]:
        """The channels airing ``file`` (sorted ascending)."""
        try:
            return self.assignment[file]
        except KeyError:
            known = ", ".join(sorted(self.assignment))
            raise SpecificationError(
                f"file {file!r} is not in the channel set "
                f"(files: {known})"
            ) from None

    def listen_start(self, start: int, tuned: int, channel: int) -> int:
        """The first slot a client tuned to ``tuned`` hears ``channel``.

        Re-tuning costs ``tuning_cost`` slots; staying costs nothing.
        """
        if channel == tuned:
            return start
        return start + self.tuning_cost

    def __getstate__(self) -> dict[str, Any]:
        # Mirror BroadcastProgram.__getstate__: plain field dict (the
        # programs drop their lazily built indexes themselves).
        return {
            "programs": self.programs,
            "assignment": dict(self.assignment),
            "tuning_cost": self.tuning_cost,
            "quorum": self.quorum,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)


@dataclass(frozen=True)
class MultiChannelDesign:
    """The outcome of a partition-then-solve multi-channel design.

    Attributes
    ----------
    channel_set:
        The aired programs plus runtime contract.
    designs:
        The per-channel single-channel :class:`ProgramDesign` records
        (scheduler reports, bandwidth plans, densities).
    partition:
        Per-channel tuples of file names, catalogue order - the
        partition step's provenance.
    assignment_policy:
        ``"striped"``, ``"replicated"``, or ``"explicit"``.
    partitioner:
        The registered partitioner used (``None`` unless striped).
    """

    channel_set: ChannelSet
    designs: tuple[ProgramDesign, ...]
    partition: tuple[tuple[str, ...], ...]
    assignment_policy: str = "explicit"
    partitioner: str | None = None

    @property
    def count(self) -> int:
        """Number of channels ``k``."""
        return len(self.designs)

    @property
    def densities(self) -> tuple[Fraction, ...]:
        """Per-channel scheduled densities (the utilization profile)."""
        return tuple(design.density for design in self.designs)

    def __str__(self) -> str:
        lines = [
            f"MultiChannelDesign(k={self.count}, "
            f"policy={self.assignment_policy}"
            + (f", partitioner={self.partitioner}" if self.partitioner else "")
            + f", tuning_cost={self.channel_set.tuning_cost}"
            f", quorum={self.channel_set.quorum})"
        ]
        for channel, design in enumerate(self.designs):
            files = ", ".join(self.partition[channel])
            lines.append(f"  channel {channel} [{files}]: {design}")
        return "\n".join(lines)


def resolve_assignment(
    files: Sequence[AnyFile], spec: "ChannelSpec"
) -> dict[str, tuple[int, ...]]:
    """File name -> sorted channel indices under ``spec``'s policy.

    The single source of truth shared by the design step and
    :meth:`repro.api.Scenario.channel_assignment` - the two must never
    disagree, or cached designs would stop matching their scenarios.
    """
    if spec.explicit is not None:
        return {file.name: tuple(spec.explicit[file.name]) for file in files}
    if spec.assignment == "replicated":
        everywhere = tuple(range(spec.count))
        return {file.name: everywhere for file in files}
    bins = partition_files(files, spec.count, partitioner=spec.partitioner)
    assignment: dict[str, tuple[int, ...]] = {}
    for channel, bin_ in enumerate(bins):
        for idx in bin_:
            assignment[files[idx].name] = (channel,)
    return assignment


def _budgeted(spec: AnyFile, extra: int) -> AnyFile:
    """``spec`` with ``extra`` per-channel fault budget folded in."""
    if extra == 0:
        return spec
    if isinstance(spec, GeneralizedFileSpec):
        raise SpecificationError(
            f"file {spec.name!r}: per-channel fault budgets apply to "
            f"regular files only"
        )
    return FileSpec(
        spec.name,
        spec.blocks,
        spec.latency,
        fault_budget=spec.fault_budget + extra,
        data=spec.data,
    )


def design_multichannel_program(
    files: Sequence[AnyFile],
    spec: "ChannelSpec",
    *,
    bandwidth: int | None = None,
    policy: str | Sequence[str] = "auto",
) -> MultiChannelDesign:
    """Design ``spec.count`` parallel channels for ``files``.

    Partition-then-solve: resolve the assignment policy, then design
    every channel through the ordinary single-channel pipeline (so each
    channel gets the full scheduler portfolio, including exact-first
    fallbacks, under ``policy``).  Per-channel ``fault_budgets`` add
    redundant blocks to the regular files a channel carries before its
    solve.

    Regular-model channels designed without a forced ``bandwidth`` may
    choose different Equation 1/2 bounds; since clients hop between
    channels on one slot clock, lagging channels are re-designed at the
    set-wide maximum (extra bandwidth never hurts feasibility).  With
    ``k=1`` no harmonization happens and the sole channel's design is
    exactly the single-channel one.
    """
    files = tuple(files)
    if not files:
        raise SpecificationError("at least one file is required")
    generalized = isinstance(files[0], GeneralizedFileSpec)
    assignment = resolve_assignment(files, spec)
    partition = tuple(
        tuple(
            file.name
            for file in files
            if channel in assignment[file.name]
        )
        for channel in range(spec.count)
    )
    for channel, names in enumerate(partition):
        if not names:
            raise SpecificationError(
                f"channel {channel} carries no files under "
                f"{spec.assignment!r} assignment"
            )

    def _solve(channel: int, forced: int | None) -> ProgramDesign:
        extra = spec.budget_for(channel)
        channel_files = [
            _budgeted(file, extra)
            for file in files
            if channel in assignment[file.name]
        ]
        obs.inc("design.channel.solves", channel=channel)
        if generalized:
            return design_generalized_program(channel_files, policy=policy)
        return design_program(
            channel_files, bandwidth=forced, policy=policy
        )

    with obs.span(
        "design.multichannel",
        channels=spec.count,
        assignment=spec.assignment,
    ):
        designs = [
            _solve(channel, bandwidth) for channel in range(spec.count)
        ]
        if not generalized and bandwidth is None and spec.count > 1:
            chosen = [
                design.bandwidth_plan.bandwidth for design in designs
            ]
            peak = max(chosen)
            designs = [
                design
                if chosen[channel] == peak
                else _solve(channel, peak)
                for channel, design in enumerate(designs)
            ]
    channel_set = ChannelSet(
        programs=tuple(design.program for design in designs),
        assignment=assignment,
        tuning_cost=spec.tuning_cost,
        quorum=spec.quorum,
    )
    return MultiChannelDesign(
        channel_set=channel_set,
        designs=tuple(designs),
        partition=partition,
        assignment_policy=spec.assignment,
        partitioner=(
            spec.partitioner if spec.assignment == "striped" else None
        ),
    )
