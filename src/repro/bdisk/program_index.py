"""Precomputed occurrence tables for a broadcast program.

Every simulation question about a :class:`~repro.bdisk.program.BroadcastProgram`
reduces to questions about *occurrences* - the slots at which a file is
served and the block index each service carries.  The seed implementations
answered them by walking the program slot by slot, paying the per-slot
``slot_content`` arithmetic even for idle slots and slots of other files.

:class:`ProgramIndex` computes, in one O(data-cycle) pass, everything the
simulators need:

* the full content table of one data cycle (making ``slot_content`` an
  O(1) list lookup);
* per-file occurrence arrays (slot positions and block indices), so a
  client can jump occurrence-to-occurrence instead of scanning idle air;
* per-file prefix counts (O(1) window counting on the infinite program);
* per-file gap structure (Lemma 2's ``Delta`` without rescanning).

The index is immutable once built and is shared by every consumer of the
same program; :attr:`BroadcastProgram.index` builds it lazily exactly
once.  All quantities are defined over the *data cycle* (the period of
the ``(file, block)`` content), so block indices repeat exactly beyond
it and the occurrence generator can extend the tables cyclically
forever.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Iterator

from repro.errors import ProgramError, SpecificationError
from repro.core.schedule import IDLE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bdisk.program import BroadcastProgram, SlotContent


class ProgramIndex:
    """Occurrence tables over one data cycle of a broadcast program.

    Construction is a single pass over the data cycle; every query
    afterwards is O(1) or O(log occurrences).  Obtain the shared instance
    via :attr:`BroadcastProgram.index` rather than constructing directly.
    """

    __slots__ = (
        "_program",
        "_cycle",
        "_contents",
        "_slots",
        "_blocks",
        "_prefix",
    )

    def __init__(self, program: "BroadcastProgram") -> None:
        from repro.bdisk.program import SlotContent

        self._program = program
        schedule = program.schedule
        cycle = program.data_cycle_length
        self._cycle = cycle

        counters = {file: 0 for file in program.files}
        block_counts = {
            file: program.block_count(file) for file in program.files
        }
        contents: list["SlotContent" | None] = []
        slots: dict[str, list[int]] = {file: [] for file in program.files}
        blocks: dict[str, list[int]] = {file: [] for file in program.files}
        period = schedule.cycle_length
        cycle_owners = schedule.cycle
        for t in range(cycle):
            file = cycle_owners[t % period]
            if file is IDLE:
                contents.append(None)
                continue
            count = counters[file]
            counters[file] = count + 1
            index = count % block_counts[file]
            contents.append(SlotContent(file, index))
            slots[file].append(t)
            blocks[file].append(index)
        self._contents: tuple["SlotContent" | None, ...] = tuple(contents)
        self._slots = {f: tuple(s) for f, s in slots.items()}
        self._blocks = {f: tuple(b) for f, b in blocks.items()}
        # prefix[file][t] = occurrences of `file` in slots [0, t) of the
        # data cycle; length cycle + 1 so windows are pure subtractions.
        prefix: dict[str, tuple[int, ...]] = {}
        for file, positions in self._slots.items():
            row = [0] * (cycle + 1)
            for slot in positions:
                row[slot + 1] = 1
            for t in range(cycle):
                row[t + 1] += row[t]
            prefix[file] = tuple(row)
        self._prefix = prefix

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def program(self) -> "BroadcastProgram":
        """The program this index describes."""
        return self._program

    @property
    def data_cycle_length(self) -> int:
        """The period of the content table."""
        return self._cycle

    @property
    def contents(self) -> tuple["SlotContent" | None, ...]:
        """One full data cycle of slot contents (shared, immutable)."""
        return self._contents

    @property
    def files(self) -> tuple[str, ...]:
        """Files with occurrence tables (= the program's files)."""
        return self._program.files

    def _occurrence_arrays(
        self, file: str
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        try:
            return self._slots[file], self._blocks[file]
        except KeyError:
            raise ProgramError(
                f"file {file!r} never appears in the program"
            ) from None

    # ------------------------------------------------------------------
    # Occurrence queries
    # ------------------------------------------------------------------

    def occurrence_slots(self, file: str) -> tuple[int, ...]:
        """Slots of one data cycle at which ``file`` is served (sorted)."""
        return self._occurrence_arrays(file)[0]

    def occurrence_blocks(self, file: str) -> tuple[int, ...]:
        """Block indices aligned with :meth:`occurrence_slots`."""
        return self._occurrence_arrays(file)[1]

    def occurrences(self, file: str) -> tuple[tuple[int, int], ...]:
        """``(slot, block_index)`` pairs of one data cycle, in slot order."""
        slots, blocks = self._occurrence_arrays(file)
        return tuple(zip(slots, blocks))

    def occurrences_per_cycle(self, file: str) -> int:
        """Services of ``file`` per data cycle."""
        return len(self._occurrence_arrays(file)[0])

    def next_occurrence(self, file: str, t: int) -> tuple[int, int]:
        """First ``(slot, block_index)`` of ``file`` at a slot >= ``t``.

        Works on the infinite periodic extension; O(log occurrences).
        """
        if t < 0:
            raise SpecificationError(f"slot index must be >= 0, got {t}")
        slots, blocks = self._occurrence_arrays(file)
        if not slots:
            raise ProgramError(f"file {file!r} never appears in the program")
        base, within = divmod(t, self._cycle)
        k = bisect_left(slots, within)
        if k == len(slots):
            base += 1
            k = 0
        return base * self._cycle + slots[k], blocks[k]

    def occurrences_from(
        self, file: str, start: int
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(slot, block_index)`` for every service of ``file`` at
        slots >= ``start``, in slot order, forever.

        This is the occurrence-walker primitive: consumers jump from
        service to service without ever touching idle slots or slots of
        other files.
        """
        if start < 0:
            raise SpecificationError(f"slot index must be >= 0, got {start}")
        slots, blocks = self._occurrence_arrays(file)
        if not slots:
            return
        cycle = self._cycle
        quotient, within = divmod(start, cycle)
        base = quotient * cycle
        k = bisect_left(slots, within)
        count = len(slots)
        while True:
            while k < count:
                yield base + slots[k], blocks[k]
                k += 1
            base += cycle
            k = 0

    # ------------------------------------------------------------------
    # Window arithmetic
    # ------------------------------------------------------------------

    def content(self, t: int) -> "SlotContent" | None:
        """The ``(file, block)`` of slot ``t`` - an O(1) table lookup."""
        if t < 0:
            raise SpecificationError(f"slot index must be >= 0, got {t}")
        return self._contents[t % self._cycle]

    def count_in_window(self, file: str, start: int, length: int) -> int:
        """Services of ``file`` in slots ``[start, start + length)``.

        O(1) via the per-file prefix table, valid for any window of the
        infinite program.
        """
        if start < 0 or length < 0:
            raise ProgramError(
                f"window must satisfy start >= 0 and length >= 0: "
                f"({start}, {length})"
            )
        prefix = self._prefix.get(file)
        if prefix is None:
            raise ProgramError(
                f"file {file!r} never appears in the program"
            )
        cycle = self._cycle
        total = prefix[cycle]

        def cumulative(upto: int) -> int:
            full, rem = divmod(upto, cycle)
            return full * total + prefix[rem]

        return cumulative(start + length) - cumulative(start)

    def max_gap(self, file: str) -> int:
        """Largest cyclic spacing between consecutive services of
        ``file`` (Lemma 2's ``Delta``)."""
        slots, _ = self._occurrence_arrays(file)
        if not slots:
            raise ProgramError(f"file {file!r} never appears in the program")
        if len(slots) == 1:
            return self._cycle
        best = self._cycle - slots[-1] + slots[0]
        for i in range(len(slots) - 1):
            best = max(best, slots[i + 1] - slots[i])
        return best

    def min_distinct_in_window(self, file: str, window: int) -> int:
        """Minimum distinct block indices of ``file`` in any window.

        Exactly the fault-tolerance quantity of
        :meth:`BroadcastProgram.min_distinct_in_window`, but computed by
        sliding over *occurrences* rather than slots: the distinct count
        is piecewise constant in the window start and only changes when
        an occurrence enters or leaves, so only those event starts are
        evaluated.  O(occurrences) instead of O(data cycle x window).
        """
        if window < 0:
            raise ProgramError(f"window must be >= 0: {window}")
        # A file the program never serves has zero blocks in every window
        # (matching the seed slot-walking behaviour, which returned 0).
        slots = self._slots.get(file, ())
        blocks = self._blocks.get(file, ())
        if window == 0 or not slots:
            return 0
        cycle = self._cycle
        count = len(slots)

        def occurrence(i: int) -> tuple[int, int]:
            """(absolute slot, block) of the i-th occurrence from t=0."""
            quotient, remainder = divmod(i, count)
            return slots[remainder] + quotient * cycle, blocks[remainder]

        # Window [0, window): low points at the first occurrence inside,
        # high at the first occurrence beyond.
        full, remainder = divmod(window, cycle)
        high = full * count + bisect_left(slots, remainder)
        low = 0
        in_window: dict[int, int] = {}
        for i in range(low, high):
            block = occurrence(i)[1]
            in_window[block] = in_window.get(block, 0) + 1
        best = len(in_window)
        while True:
            # Next start at which the window content changes: the low
            # occurrence leaves at slot_low + 1, the high one enters at
            # slot_high - window + 1.
            start = min(
                occurrence(low)[0] + 1, occurrence(high)[0] - window + 1
            )
            if start >= cycle:
                return best
            while occurrence(low)[0] < start:
                block = occurrence(low)[1]
                in_window[block] -= 1
                if in_window[block] == 0:
                    del in_window[block]
                low += 1
            while occurrence(high)[0] < start + window:
                block = occurrence(high)[1]
                in_window[block] = in_window.get(block, 0) + 1
                high += 1
            best = min(best, len(in_window))

    def __repr__(self) -> str:
        return (
            f"ProgramIndex(data_cycle={self._cycle}, "
            f"files={list(self.files)})"
        )
