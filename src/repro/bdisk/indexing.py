"""Broadcast indexing: the alternative the paper decided against.

Footnote 3 of the paper: instead of self-identifying blocks, the server
could "broadcast a directory (or index) at the beginning of each
broadcast period" (Imielinski et al.'s *indexing on air*).  The paper
rejects this because "it does not lend itself to a clean fault-tolerant
organization" - this module implements the index regime so benches and
tests can *quantify* that judgement.

Model:

* the broadcast period is prefixed (and optionally interleaved, the
  ``(1, m)``-style replication) with *index slots* describing where each
  file's blocks appear in the period;
* a dozing client wakes, listens until it catches an index slot, then
  sleeps and wakes exactly on its file's slots - its **tuning time**
  (slots actively listened, the battery cost) is far below its access
  latency;
* a lost index slot costs waiting for the next index; a lost file slot
  costs a *re-tune* (the client cannot identify substitute blocks
  without headers) - the fault-tolerance weakness the paper calls out.

Contrast with self-identifying AIDA blocks: tuning time equals latency
(always listening) but every fault costs only Delta.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError, SpecificationError
from repro.bdisk.program import BroadcastProgram
from repro.sim.faults import FaultModel, NoFaults

#: Owner marker for index slots in an indexed program's layout.
INDEX = "__index__"


@dataclass(frozen=True)
class IndexedProgram:
    """A broadcast program with interleaved index slots.

    ``layout`` is one period: each slot is either :data:`INDEX` or a
    ``(file, block_index)`` pair; the directory content is implicit
    (every index slot describes the whole period).
    """

    layout: tuple
    base: BroadcastProgram
    replication: int

    @property
    def period(self) -> int:
        return len(self.layout)

    def slot(self, t: int):
        """Layout entry for slot ``t`` of the infinite schedule."""
        return self.layout[t % len(self.layout)]

    def index_positions(self) -> tuple[int, ...]:
        return tuple(
            i for i, entry in enumerate(self.layout) if entry == INDEX
        )


def build_indexed_program(
    program: BroadcastProgram, *, replication: int = 1
) -> IndexedProgram:
    """Interleave ``replication`` index slots into each data cycle.

    The index slots are spread evenly (the ``(1, m)``-indexing idea);
    each one carries the full directory for the coming period.  The
    returned period is one *data cycle* of the base program plus the
    index slots, so the directory can name exact block indices.
    """
    if replication < 1:
        raise SpecificationError(
            f"index replication must be >= 1: {replication}"
        )
    content = program.content_cycle()
    if replication > len(content):
        raise SpecificationError(
            f"cannot interleave {replication} index slots into "
            f"{len(content)} content slots"
        )
    chunk = len(content) / replication
    layout: list = []
    cursor = 0.0
    for i in range(replication):
        layout.append(INDEX)
        take = round(cursor + chunk) - round(cursor)
        start = round(cursor)
        layout.extend(
            (c.file, c.block_index) if c is not None else None
            for c in content[start : start + take]
        )
        cursor += chunk
    return IndexedProgram(
        layout=tuple(layout), base=program, replication=replication
    )


@dataclass(frozen=True)
class TunedRetrieval:
    """Outcome of a dozing-client retrieval.

    ``latency`` is wall-clock slots from wake-up to the last needed
    block; ``tuning_time`` counts only slots the receiver was powered -
    the quantity energy-constrained mobile clients minimize.
    """

    file: str
    completed: bool
    latency: int | None
    tuning_time: int
    retunes: int


def tuned_retrieve(
    indexed: IndexedProgram,
    file: str,
    m_needed: int,
    *,
    start: int = 0,
    faults: FaultModel | None = None,
    max_slots: int | None = None,
) -> TunedRetrieval:
    """Retrieve via the index with a dozing receiver.

    Phase 1: listen every slot until an (uncorrupted) index arrives.
    Phase 2: doze; wake exactly on the target file's slots named by the
    directory.  A lost file block forces a **re-tune** (back to phase 1)
    because without self-identifying headers the client cannot pick up
    substitute blocks opportunistically - the paper's footnote-3
    objection, made executable.
    """
    if not any(
        entry not in (None, INDEX) and entry[0] == file
        for entry in indexed.layout
    ):
        raise SimulationError(f"file {file!r} is not broadcast")
    fault_model = faults if faults is not None else NoFaults()
    horizon = (
        max_slots
        if max_slots is not None
        else (m_needed + 3) * indexed.period * 3
    )
    period = indexed.period
    tuning = 0
    retunes = 0
    collected: set[int] = set()
    t = start
    deadline = start + horizon

    while t < deadline:
        # Phase 1: hunt for an index slot.
        while t < deadline:
            tuning += 1
            entry = indexed.slot(t)
            if entry == INDEX and not fault_model.is_lost(t):
                break
            t += 1
        else:
            break
        # Phase 2: doze until the file's slots within the next period.
        retuned = False
        for offset in range(1, period + 1):
            when = t + offset
            if when >= deadline:
                break
            entry = indexed.slot(when)
            if (
                entry is None
                or entry == INDEX
                or entry[0] != file
            ):
                continue
            if entry[1] in collected:
                continue
            tuning += 1
            if fault_model.is_lost(when):
                # Lost block: the schedule in hand is now stale; re-tune.
                t = when + 1
                retunes += 1
                retuned = True
                break
            collected.add(entry[1])
            if len(collected) >= m_needed:
                return TunedRetrieval(
                    file=file,
                    completed=True,
                    latency=when - start + 1,
                    tuning_time=tuning,
                    retunes=retunes,
                )
        if not retuned:
            t += period

    return TunedRetrieval(
        file=file,
        completed=False,
        latency=None,
        tuning_time=tuning,
        retunes=retunes,
    )
