"""Flat broadcast programs (Figures 5 and 6 of the paper).

A *flat* program scans through every file's blocks once per broadcast
period.  We spread each file's slots uniformly across the period (the
paper: "the various blocks of a given file should be uniformly distributed
throughout the broadcast period") using exact fractional interleaving:
file ``i``'s ``k``-th slot gets the sort key ``(2k + 1) / (2 m_i)``, and
slots are laid out in key order.  For the paper's toy example - file A
with 5 blocks, file B with 3 - this yields exactly Figure 6's layout::

    A'1 B'1 A'2 A'3 B'2 A'4 B'3 A'5

Two builders:

* :func:`build_flat_program` - no dispersal: every period carries blocks
  ``1 .. m_i`` of each file, so one lost block costs a whole period
  (Lemma 1);
* :func:`build_aida_flat_program` - AIDA: file ``i`` is dispersed into
  ``n_i >= m_i`` blocks and the server rotates through them across
  periods, creating the *program data cycle* and cutting the per-error
  delay to one inter-block gap (Lemma 2).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import SpecificationError
from repro.core.schedule import Schedule
from repro.bdisk.program import BroadcastProgram


def uniform_interleave(sizes: dict[str, int]) -> list[str]:
    """Spread each file's slots evenly over one period.

    Returns a list of file names of length ``sum(sizes.values())``.  Exact
    rational sort keys avoid float ties; ties break by declaration order,
    which is what reproduces the paper's figures.
    """
    if not sizes:
        raise SpecificationError("at least one file is required")
    order = {name: position for position, name in enumerate(sizes)}
    keyed: list[tuple[Fraction, int, str]] = []
    for name, count in sizes.items():
        if count < 1:
            raise SpecificationError(
                f"file {name!r}: slot count must be >= 1, got {count}"
            )
        for k in range(count):
            keyed.append((Fraction(2 * k + 1, 2 * count), order[name], name))
    keyed.sort()
    return [name for _, _, name in keyed]


def build_flat_program(files: Sequence[tuple[str, int]]) -> BroadcastProgram:
    """A Figure 5-style flat program: no dispersal, no rotation.

    ``files`` is a sequence of ``(name, blocks)``.  Every broadcast period
    transmits each file's blocks in order (block ``k`` at the file's
    ``k``-th slot of the period); the data cycle equals the broadcast
    period.
    """
    sizes = _validate_unique(files)
    layout = uniform_interleave(sizes)
    schedule = Schedule(layout)
    # Rotating through exactly m_i blocks reproduces "same blocks every
    # period": occurrence c carries block c mod m_i.
    return BroadcastProgram(schedule, dict(sizes))


def build_aida_flat_program(
    files: Sequence[tuple[str, int, int]],
) -> BroadcastProgram:
    """A Figure 6-style AIDA flat program with block rotation.

    ``files`` is a sequence of ``(name, m, n_total)``: the file needs any
    ``m`` distinct blocks for reconstruction and the server rotates
    through ``n_total >= m`` dispersed blocks.  Each broadcast period
    carries ``m`` slots per file (enough to reconstruct within one
    period); the program data cycle is the period times
    ``lcm_i(n_i / gcd(n_i, m_i))``.

    For ``[("A", 5, 10), ("B", 3, 6)]`` this reproduces Figure 6: period
    8, data cycle 16.
    """
    sizes: dict[str, int] = {}
    rotation: dict[str, int] = {}
    for name, m, n_total in files:
        if name in sizes:
            raise SpecificationError(f"duplicate file name {name!r}")
        if n_total < m:
            raise SpecificationError(
                f"file {name!r}: n_total={n_total} must be >= m={m}"
            )
        sizes[name] = m
        rotation[name] = n_total
    layout = uniform_interleave(sizes)
    return BroadcastProgram(Schedule(layout), rotation)


def _validate_unique(files: Sequence[tuple[str, int]]) -> dict[str, int]:
    sizes: dict[str, int] = {}
    for name, blocks in files:
        if name in sizes:
            raise SpecificationError(f"duplicate file name {name!r}")
        sizes[name] = blocks
    return sizes
