"""Broadcast disks: files, programs, builders, and bandwidth planning.

This subpackage composes the pinwheel core (:mod:`repro.core`) and the
dispersal substrate (:mod:`repro.ida`) into the paper's actual object of
study - *broadcast programs*:

* :mod:`repro.bdisk.file` - file specifications (size, latency, fault
  budget; or a generalized latency vector);
* :mod:`repro.bdisk.program` - the broadcast program abstraction: a cyclic
  slot-to-(file, block) mapping with broadcast period, program data cycle,
  inter-block gaps (Lemma 2's Delta), and distinct-block window checks;
* :mod:`repro.bdisk.program_index` - the precomputed occurrence index
  every program builds lazily: O(1) slot content, per-file occurrence
  tables, prefix counts, and occurrence-jumping walks for the simulators;
* :mod:`repro.bdisk.flat` - flat programs (Figure 5) and AIDA flat
  programs with uniform spreading and block rotation (Figure 6);
* :mod:`repro.bdisk.pinwheel_program` - programs derived from verified
  pinwheel schedules (Sections 3.2 and 4);
* :mod:`repro.bdisk.bandwidth` - Equation 1/2 planning plus empirical
  minimal-bandwidth search;
* :mod:`repro.bdisk.multidisk` - the demand-driven multi-speed disk
  baseline of Acharya et al., for contrast benchmarks;
* :mod:`repro.bdisk.builder` - the end-to-end designers for regular and
  generalized fault-tolerant real-time broadcast disks.
"""

from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.bdisk.program import BroadcastProgram, SlotContent
from repro.bdisk.program_index import ProgramIndex
from repro.bdisk.flat import build_flat_program, build_aida_flat_program
from repro.bdisk.pinwheel_program import build_pinwheel_program
from repro.bdisk.bandwidth import (
    BandwidthPlan,
    minimal_feasible_bandwidth,
    plan_bandwidth,
)
from repro.bdisk.multidisk import MultidiskConfig, build_multidisk_program
from repro.bdisk.builder import (
    ProgramDesign,
    design_generalized_program,
    design_program,
)
from repro.bdisk.blocksize import (
    BlockSizeReport,
    SizedFile,
    analyze_block_size,
    largest_schedulable_block_size,
    per_file_multiples,
)
from repro.bdisk.indexing import (
    IndexedProgram,
    TunedRetrieval,
    build_indexed_program,
    tuned_retrieve,
)

__all__ = [
    "FileSpec",
    "GeneralizedFileSpec",
    "BroadcastProgram",
    "SlotContent",
    "ProgramIndex",
    "build_flat_program",
    "build_aida_flat_program",
    "build_pinwheel_program",
    "BandwidthPlan",
    "minimal_feasible_bandwidth",
    "plan_bandwidth",
    "MultidiskConfig",
    "build_multidisk_program",
    "ProgramDesign",
    "design_generalized_program",
    "design_program",
    "BlockSizeReport",
    "SizedFile",
    "analyze_block_size",
    "largest_schedulable_block_size",
    "per_file_multiples",
    "IndexedProgram",
    "TunedRetrieval",
    "build_indexed_program",
    "tuned_retrieve",
]
