"""Multi-speed broadcast disks: the demand-driven baseline.

Before this paper, broadcast-disk research (Acharya, Franklin & Zdonik)
organized the channel as a *hierarchy of disks spinning at different
speeds*: hot items go on fast disks (broadcast often), cold items on slow
disks.  That layout minimizes **average** latency for a given access
distribution - but offers no per-file worst-case guarantee, which is the
gap the paper's pinwheel formulation closes.

We implement the classic Acharya et al. program generator so benchmarks
can contrast the two philosophies on the same workload
(``benchmarks/bench_multidisk_baseline.py``):

1. order disks by relative frequency ``f_1 >= f_2 >= ...``;
2. split disk ``i`` into ``max_chunks / f_i`` chunks, where ``max_chunks
   = lcm_i(max_f / f_i ... )`` - concretely ``num_chunks_i = L / f_i``
   with ``L = lcm(f_1, ..., f_k)``;
3. minor cycle ``j`` broadcasts chunk ``j mod num_chunks_i`` of every
   disk ``i``; the major cycle (= broadcast period) ends after ``L``
   minor cycles.

Every block of disk ``i`` then appears exactly ``f_i`` times per major
cycle, evenly spaced - "equal spacing" is the property Acharya et al.
emphasize, and it is what makes the comparison with pinwheel programs
fair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.errors import SpecificationError
from repro.core.schedule import Schedule
from repro.bdisk.program import BroadcastProgram


@dataclass(frozen=True)
class MultidiskConfig:
    """A hierarchy of broadcast disks.

    ``disks`` maps each disk to ``(relative_frequency, [(file, blocks)])``:
    the disk spins ``relative_frequency`` times per major cycle and holds
    the listed files.  Frequencies must be positive; file names unique
    across disks.
    """

    disks: tuple[tuple[int, tuple[tuple[str, int], ...]], ...]

    def __init__(
        self,
        disks: Sequence[tuple[int, Sequence[tuple[str, int]]]],
    ) -> None:
        normalized = tuple(
            (freq, tuple((name, blocks) for name, blocks in files))
            for freq, files in disks
        )
        object.__setattr__(self, "disks", normalized)
        self._validate()

    def _validate(self) -> None:
        if not self.disks:
            raise SpecificationError("at least one disk is required")
        seen: set[str] = set()
        for index, (freq, files) in enumerate(self.disks):
            if freq < 1:
                raise SpecificationError(
                    f"disk #{index}: frequency {freq} must be >= 1"
                )
            if not files:
                raise SpecificationError(f"disk #{index} holds no files")
            for name, blocks in files:
                if blocks < 1:
                    raise SpecificationError(
                        f"file {name!r}: blocks={blocks} must be >= 1"
                    )
                if name in seen:
                    raise SpecificationError(
                        f"file {name!r} appears on two disks"
                    )
                seen.add(name)

    def frequencies(self) -> tuple[int, ...]:
        return tuple(freq for freq, _ in self.disks)

    def file_names(self) -> tuple[str, ...]:
        return tuple(
            name for _, files in self.disks for name, _ in files
        )


def build_multidisk_program(config: MultidiskConfig) -> BroadcastProgram:
    """Generate the Acharya et al. broadcast program for a disk hierarchy.

    Returns a :class:`BroadcastProgram` whose schedule owners are file
    names; block rotation is each file's own size, so each appearance of
    a file within a disk spin transmits its blocks in order (no AIDA - the
    baseline has no dispersal).
    """
    frequencies = config.frequencies()
    major = math.lcm(*frequencies)

    # Flatten each disk into its block sequence, tagged by file.
    disk_blocks: list[list[str]] = []
    for freq, files in config.disks:
        blocks: list[str] = []
        for name, size in files:
            blocks.extend([name] * size)
        disk_blocks.append(blocks)

    # Chunking: disk i is split into (major / freq_i) chunks.
    chunked: list[list[list[str]]] = []
    for (freq, _), blocks in zip(config.disks, disk_blocks):
        num_chunks = major // freq
        per_chunk = -(-len(blocks) // num_chunks)  # ceil
        chunks = [
            blocks[k * per_chunk : (k + 1) * per_chunk]
            for k in range(num_chunks)
        ]
        chunked.append(chunks)

    slots: list[str | None] = []
    for minor in range(major):
        for chunks in chunked:
            chunk = chunks[minor % len(chunks)]
            slots.extend(chunk)
            # Chunks of a disk may be uneven; pad the short ones so every
            # minor cycle has a fixed layout (idle slots model the "extra
            # slot" padding of the original algorithm).
            longest = max(len(c) for c in chunks)
            slots.extend([None] * (longest - len(chunk)))
    schedule = Schedule(slots)

    sizes = {
        name: size
        for _, files in config.disks
        for name, size in files
    }
    return BroadcastProgram(schedule, sizes)


def expected_average_latency(
    config: MultidiskConfig, demand: dict[str, float]
) -> float:
    """Expected latency (slots) of demand-weighted random requests.

    For a request arriving uniformly in time for file ``F``, the expected
    wait for a *specific* block of ``F`` is approximately half that
    block's inter-appearance spacing; summing the spacing of every block
    of the file approximates a full-file retrieval.  This is the quantity
    the demand-driven layout optimizes; the bench reports it next to the
    pinwheel program's worst-case guarantees.
    """
    program = build_multidisk_program(config)
    period = program.broadcast_period
    total_weight = sum(demand.values())
    if total_weight <= 0:
        raise SpecificationError("demand weights must sum to > 0")
    latency = 0.0
    for name, weight in demand.items():
        appearances = program.schedule.total(name)
        if appearances == 0:
            raise SpecificationError(f"file {name!r} not in the program")
        spacing = period / appearances
        latency += (weight / total_weight) * (spacing / 2.0)
    return latency


def config_from_demand(
    files: Sequence[tuple[str, int]],
    demand: dict[str, float],
    *,
    levels: Sequence[int] = (4, 2, 1),
) -> MultidiskConfig:
    """Assign files to disks by demand rank (hot -> fast).

    ``levels`` are the relative frequencies of the disks, fastest first;
    files are sorted by demand and distributed evenly across the disks.
    A small convenience for benches and examples.
    """
    if not files:
        raise SpecificationError("at least one file is required")
    ranked = sorted(
        files, key=lambda item: demand.get(item[0], 0.0), reverse=True
    )
    per_disk = -(-len(ranked) // len(levels))  # ceil
    disks: list[tuple[int, list[tuple[str, int]]]] = []
    for level, freq in enumerate(levels):
        chunk = ranked[level * per_disk : (level + 1) * per_disk]
        if chunk:
            disks.append((freq, chunk))
    return MultidiskConfig(disks)
