"""Broadcast programs from verified pinwheel schedules.

This is the paper's Section 3.2/4 pipeline made concrete: a pinwheel
schedule whose owners are file names (after projecting virtual helper
tasks back onto their files) becomes a broadcast program by attaching
block rotation.  The pinwheel condition ``pc(i, m_i + r_i, b_i)``
guarantees at least ``m_i + r_i`` service slots in every ``b_i``-window;
rotating through ``n_i = m_i + r_i`` *distinct* dispersed blocks then
guarantees at least ``m_i + r_i`` distinct blocks per window - so any
``r_i`` losses still leave the ``m_i`` blocks IDA needs.

The builder can check that guarantee exactly (distinct-block window
minima over the data cycle) before returning.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ProgramError
from repro.core.conditions import NiceConjunct
from repro.core.schedule import Schedule
from repro.core.verify import project_to_files
from repro.bdisk.program import BroadcastProgram


def build_pinwheel_program(
    schedule: Schedule,
    block_counts: Mapping[str, int],
    *,
    check_windows: Mapping[str, tuple[int, int, int]] | None = None,
) -> BroadcastProgram:
    """Attach AIDA block rotation to a pinwheel schedule.

    Parameters
    ----------
    schedule:
        Verified schedule whose owners are file names.
    block_counts:
        ``n_i`` per file - how many distinct dispersed blocks to rotate
        through (typically ``m_i + r_i``).
    check_windows:
        Optional exact fault-tolerance check: maps file name to
        ``(m, faults, window)``; the builder verifies every window of
        ``window`` slots carries at least ``m + faults`` distinct blocks
        and raises :class:`ProgramError` otherwise.

    Notes
    -----
    The distinct-block property needs ``n_i >= max slots of i in any
    window``; since rotation is cyclic, a window with ``k`` service slots
    of file ``i`` carries ``min(k, n_i)`` distinct blocks.  When ``n_i``
    equals the per-window requirement this is exactly sufficient.
    """
    program = BroadcastProgram(schedule, block_counts)
    if check_windows:
        for file, (m, faults, window) in check_windows.items():
            distinct = program.min_distinct_in_window(file, window)
            if distinct < m + faults:
                raise ProgramError(
                    f"fault-tolerance check failed for {file!r}: windows "
                    f"of {window} slots carry only {distinct} distinct "
                    f"blocks, need {m + faults}"
                )
    return program


def program_from_conjunct(
    schedule: Schedule,
    conjunct: NiceConjunct,
    block_counts: Mapping[str, int],
    *,
    check_windows: Mapping[str, tuple[int, int, int]] | None = None,
) -> BroadcastProgram:
    """Project a nice-conjunct schedule onto files and attach rotation.

    The schedule's owners are the conjunct's (possibly virtual) task keys;
    the paper's ``map(i', i)`` says blocks of file ``i`` are broadcast
    whenever either task is scheduled, which is exactly the projection.
    """
    projected = project_to_files(schedule, conjunct)
    return build_pinwheel_program(
        projected, block_counts, check_windows=check_windows
    )
