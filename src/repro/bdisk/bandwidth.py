"""Bandwidth planning for real-time fault-tolerant broadcast disks.

Implements the Section 3.2 reduction both ways:

* *analytically* - Equations 1 and 2 give a bandwidth that is always
  sufficient (the induced pinwheel density lands at or below the Chan &
  Chin 7/10 bound) and at most ~43% above the trivial lower bound;
* *empirically* - :func:`minimal_feasible_bandwidth` searches upward from
  the lower bound for the smallest integer bandwidth the portfolio solver
  can actually schedule, quantifying how much of the 43% slack is real.

:func:`plan_bandwidth` packages the whole pipeline: bounds, bandwidth
choice, induced pinwheel system, verified schedule, and the resulting
broadcast program.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.errors import (
    BandwidthError,
    InfeasibleError,
    SchedulingError,
    SpecificationError,
)
from repro.core.bounds import (
    necessary_bandwidth,
    sufficient_bandwidth_eq1,
    sufficient_bandwidth_eq2,
)
from repro.core.solver import SolveReport, solve
from repro.core.task import PinwheelSystem
from repro.bdisk.file import FileSpec
from repro.bdisk.pinwheel_program import build_pinwheel_program
from repro.bdisk.program import BroadcastProgram


@dataclass(frozen=True)
class BandwidthPlan:
    """Everything the planner decided for a file set.

    Attributes
    ----------
    files:
        The input specifications.
    necessary:
        The trivial lower bound ``sum (m_i + r_i) / T_i`` (blocks/second).
    eq_bound:
        The Equation 1/2 sufficient bandwidth.
    bandwidth:
        The bandwidth actually chosen (defaults to ``eq_bound``).
    density:
        Induced pinwheel density at ``bandwidth``.
    report:
        The portfolio's :class:`SolveReport` (schedule + method).
    program:
        The broadcast program with block rotation attached.
    """

    files: tuple[FileSpec, ...]
    necessary: Fraction
    eq_bound: int
    bandwidth: int
    density: Fraction
    report: SolveReport
    program: BroadcastProgram

    @property
    def overhead(self) -> Fraction:
        """``(bandwidth - necessary) / necessary`` - the Eq. 1/2 slack."""
        return (Fraction(self.bandwidth) - self.necessary) / self.necessary

    def __str__(self) -> str:
        return (
            f"BandwidthPlan(B={self.bandwidth} blocks/s, "
            f"necessary>={float(self.necessary):.2f}, "
            f"eq_bound={self.eq_bound}, "
            f"density={float(self.density):.4f}, "
            f"method={self.report.method})"
        )


def _eq_bound(files: Sequence[FileSpec]) -> int:
    if any(spec.fault_budget for spec in files):
        return sufficient_bandwidth_eq2(
            [(s.blocks, s.fault_budget, s.latency) for s in files]
        )
    return sufficient_bandwidth_eq1(
        [(s.blocks, s.latency) for s in files]
    )


def induced_system(
    files: Sequence[FileSpec], bandwidth: int
) -> PinwheelSystem:
    """The pinwheel system of Section 3.2 at a given bandwidth."""
    return PinwheelSystem(spec.as_task(bandwidth) for spec in files)


def plan_bandwidth(
    files: Sequence[FileSpec],
    *,
    bandwidth: int | None = None,
    policy: str | Sequence[str] = "auto",
) -> BandwidthPlan:
    """Plan bandwidth and build the broadcast program for a file set.

    With ``bandwidth=None`` the Equation 1/2 bound is used, which the
    paper guarantees schedulable (density <= 7/10).  A caller-chosen
    bandwidth is honoured if the portfolio can schedule at it, otherwise
    :class:`BandwidthError` is raised.  ``policy`` selects the scheduler
    policy (see :mod:`repro.core.registry`).

    Block rotation is ``n_i = m_i + r_i`` per file, which (together with
    the verified ``pc(m_i + r_i, B T_i)`` condition) guarantees that any
    ``r_i`` losses in a window still leave ``m_i`` distinct blocks.
    """
    specs = tuple(files)
    if not specs:
        raise BandwidthError("at least one file is required")
    necessary = sum((s.demand for s in specs), Fraction(0))
    eq_bound = _eq_bound(specs)
    chosen = eq_bound if bandwidth is None else bandwidth

    try:
        system = induced_system(specs, chosen)
    except SpecificationError as error:
        # A window B*T smaller than its m + r requirement means the
        # chosen bandwidth cannot even carry one file's blocks.
        raise BandwidthError(
            f"bandwidth {chosen} blocks/s is insufficient: {error}"
        ) from error
    try:
        report = solve(system, policy=policy)
    except (SchedulingError, InfeasibleError) as error:
        raise BandwidthError(
            f"no schedule at bandwidth {chosen} blocks/s "
            f"(density {float(system.density):.4f}): {error}"
        ) from error

    program = build_pinwheel_program(
        report.schedule,
        {s.name: s.slots_per_window for s in specs},
        check_windows={
            s.name: (s.blocks, s.fault_budget, chosen * s.latency)
            for s in specs
        },
    )
    return BandwidthPlan(
        files=specs,
        necessary=necessary,
        eq_bound=eq_bound,
        bandwidth=chosen,
        density=system.density,
        report=report,
        program=program,
    )


def minimal_feasible_bandwidth(
    files: Sequence[FileSpec],
    *,
    search_limit: int | None = None,
) -> int:
    """Smallest integer bandwidth the portfolio can actually schedule.

    Scans upward from ``ceil(necessary)``; the Equation 1/2 bound is an
    (analytically guaranteed) ceiling for the search, so the scan always
    terminates.  ``search_limit`` optionally caps the scan earlier.

    The gap between this and the Equation bound is the empirical cost of
    the 10/7 safety factor - reported by
    ``benchmarks/bench_bandwidth_bounds.py``.
    """
    specs = tuple(files)
    if not specs:
        raise BandwidthError("at least one file is required")
    necessary = sum((s.demand for s in specs), Fraction(0))
    ceiling = _eq_bound(specs)
    limit = ceiling if search_limit is None else min(ceiling, search_limit)

    for candidate in range(math.ceil(necessary), limit + 1):
        system = induced_system(specs, candidate)
        if system.density > 1:
            continue
        try:
            solve(system)
        except (SchedulingError, InfeasibleError):
            continue
        return candidate
    raise BandwidthError(
        f"no feasible bandwidth found in "
        f"[{math.ceil(necessary)}, {limit}]"
    )
