"""End-to-end designers for real-time fault-tolerant broadcast disks.

Two entry points, one per paper model:

* :func:`design_program` - the Section 3.2 pipeline for regular
  (uniform-latency) files: plan bandwidth via Equation 1/2, schedule the
  induced pinwheel system, attach AIDA block rotation, verify the
  fault-tolerance windows.  (Thin wrapper around
  :func:`repro.bdisk.bandwidth.plan_bandwidth` that returns the richer
  :class:`ProgramDesign` record.)
* :func:`design_generalized_program` - the Section 4 pipeline for
  generalized files with latency *vectors*: convert each ``bc(i, m, d)``
  to its best nice conjunct (TR1/TR2/merge strategies), schedule the
  combined conjunct, project virtual helper tasks back onto files
  (``map(i', i)``), attach rotation, and verify every fault level's
  distinct-block window exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.errors import SchedulingError
from repro.core.conditions import NiceConjunct
from repro.core.solver import SolveReport, solve_nice_conjunct
from repro.core.transforms import TransformCandidate, design_nice_system
from repro.core.verify import verify_schedule
from repro.bdisk.bandwidth import BandwidthPlan, plan_bandwidth
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.bdisk.pinwheel_program import program_from_conjunct
from repro.bdisk.program import BroadcastProgram


@dataclass(frozen=True)
class ProgramDesign:
    """The full output of a broadcast-disk design run.

    Attributes
    ----------
    program:
        The broadcast program (slot -> file/block, with rotation).
    report:
        How the pinwheel system was scheduled.
    conjunct:
        The nice conjunct that was scheduled (generalized path) or
        ``None`` (regular path schedules the induced system directly).
    candidates:
        Per-file transformation choices (generalized path only).
    bandwidth_plan:
        The bandwidth decision (regular path only).
    density:
        Density of the scheduled system/conjunct.
    """

    program: BroadcastProgram
    report: SolveReport
    density: Fraction
    conjunct: NiceConjunct | None = None
    candidates: tuple[TransformCandidate, ...] = ()
    bandwidth_plan: BandwidthPlan | None = None

    def __str__(self) -> str:
        head = (
            f"ProgramDesign(period={self.program.broadcast_period}, "
            f"data_cycle={self.program.data_cycle_length}, "
            f"density={float(self.density):.4f}, "
            f"method={self.report.method})"
        )
        if self.bandwidth_plan is not None:
            head += f"\n  {self.bandwidth_plan}"
        for candidate in self.candidates:
            head += f"\n  {candidate}"
        return head


def design_program(
    files: Sequence[FileSpec],
    *,
    bandwidth: int | None = None,
    policy: str | Sequence[str] = "auto",
) -> ProgramDesign:
    """Design a regular fault-tolerant real-time broadcast disk.

    See :func:`repro.bdisk.bandwidth.plan_bandwidth` for the pipeline and
    guarantees; ``policy`` selects the scheduler policy (see
    :mod:`repro.core.registry`).
    """
    plan = plan_bandwidth(files, bandwidth=bandwidth, policy=policy)
    return ProgramDesign(
        program=plan.program,
        report=plan.report,
        density=plan.density,
        bandwidth_plan=plan,
    )


def design_generalized_program(
    files: Sequence[GeneralizedFileSpec],
    *,
    policy: str | Sequence[str] = "auto",
) -> ProgramDesign:
    """Design a generalized fault-tolerant real-time broadcast disk.

    The Section 4 pipeline.  Raises :class:`SchedulingError` if the
    combined nice conjunct cannot be scheduled by the portfolio (its
    density may exceed the Chan & Chin bound even when each file's
    transformation was optimal - the paper's Example 1-style caveat).

    On success, the resulting program is *doubly* verified: the schedule
    against the nice conjunct, and - after projection - the program's
    distinct-block windows against every ``(m + j, d(j))`` fault level of
    every file.
    """
    specs = tuple(files)
    conditions = [spec.as_condition() for spec in specs]
    conjunct, candidates = design_nice_system(conditions)

    report = solve_nice_conjunct(conjunct, policy=policy)

    # Block rotation must cover the *largest* per-window requirement of
    # each file across its fault levels: n_i = m_i + r_i.
    block_counts = {
        spec.name: spec.blocks + spec.max_faults for spec in specs
    }
    check_windows = {}
    for spec in specs:
        # Check the tightest level exactly here (all levels are checked
        # individually below; the builder takes a single window per file).
        j = spec.max_faults
        check_windows[spec.name] = (
            spec.blocks,
            j,
            spec.latency_vector[j],
        )
    program = program_from_conjunct(
        report.schedule, conjunct, block_counts, check_windows=check_windows
    )

    # Verify the original bc conditions on the projected program, and
    # every fault level's distinct-block guarantee.
    verify_schedule(program.schedule, conditions)
    for spec in specs:
        for j, window in enumerate(spec.latency_vector):
            distinct = program.min_distinct_in_window(spec.name, window)
            if distinct < spec.blocks + j:
                raise SchedulingError(
                    f"generalized design failed distinct-block check for "
                    f"{spec.name!r} at fault level {j}: {distinct} < "
                    f"{spec.blocks + j} in windows of {window}"
                )

    return ProgramDesign(
        program=program,
        report=report,
        density=conjunct.density,
        conjunct=conjunct,
        candidates=tuple(candidates),
    )
