"""Broadcast file specifications.

Two flavours, matching the paper's two models:

* :class:`FileSpec` - the Section 3.2 model: a file has a size ``m_i`` in
  blocks, a latency ``T_i`` in seconds, and (optionally) a uniform fault
  budget ``r_i``.  At channel bandwidth ``B`` blocks/second this induces
  the pinwheel task ``(i, m_i + r_i, B * T_i)``.
* :class:`GeneralizedFileSpec` - the Section 4 model: the bandwidth is
  known, latencies are given directly in slots as a vector
  ``d = [d(0), ..., d(r)]`` (tolerable latency as a function of the fault
  count), and the file induces the broadcast condition ``bc(i, m, d)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.errors import SpecificationError
from repro.core.conditions import BroadcastCondition, bc
from repro.core.task import PinwheelTask


@dataclass(frozen=True, slots=True)
class FileSpec:
    """A real-time broadcast file: ``m`` blocks to deliver within ``T``.

    Attributes
    ----------
    name:
        File identity (the broadcast program's owner key).
    blocks:
        Size ``m`` in blocks (the dispersal level under AIDA).
    latency:
        Retrieval latency budget ``T`` in seconds.
    fault_budget:
        Block losses ``r`` to tolerate per retrieval window (0 = none).
    data:
        Optional file contents for end-to-end simulation; when absent,
        simulators synthesize deterministic payloads from the name.
    """

    name: str
    blocks: int
    latency: int
    fault_budget: int = 0
    data: bytes | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.blocks < 1:
            raise SpecificationError(
                f"file {self.name!r}: blocks={self.blocks} must be >= 1"
            )
        if self.latency < 1:
            raise SpecificationError(
                f"file {self.name!r}: latency={self.latency} must be >= 1"
            )
        if self.fault_budget < 0:
            raise SpecificationError(
                f"file {self.name!r}: fault_budget={self.fault_budget} "
                f"must be >= 0"
            )

    @property
    def slots_per_window(self) -> int:
        """Block slots needed per window: ``m + r``."""
        return self.blocks + self.fault_budget

    @property
    def demand(self) -> Fraction:
        """Bandwidth demand ``(m + r) / T`` in blocks per second."""
        return Fraction(self.slots_per_window, self.latency)

    def as_task(self, bandwidth: int) -> PinwheelTask:
        """The induced pinwheel task at channel bandwidth ``bandwidth``.

        Window is ``B * T`` slots; requirement is ``m + r`` slots.
        """
        if bandwidth < 1:
            raise SpecificationError(
                f"bandwidth must be >= 1, got {bandwidth}"
            )
        return PinwheelTask(
            self.name, self.slots_per_window, bandwidth * self.latency
        )

    def payload(self, block_size: int = 64) -> bytes:
        """File contents for simulation: explicit data, or synthesized.

        Synthesized payloads are deterministic in the name so tests and
        benches reproduce bit-for-bit.
        """
        if self.data is not None:
            return self.data
        seed = self.name.encode("utf-8")
        unit = (seed * (block_size // max(1, len(seed)) + 1))[:block_size]
        return unit * self.blocks


@dataclass(frozen=True, slots=True)
class GeneralizedFileSpec:
    """A generalized fault-tolerant real-time broadcast file (Section 4).

    Attributes
    ----------
    name:
        File identity.
    blocks:
        Size ``m`` in blocks.
    latency_vector:
        ``d = [d(0), ..., d(r)]`` in *slots*: tolerable worst-case latency
        in the presence of ``j`` faults.  Regular real-time files are the
        special case ``r = 0``; regular fault-tolerant files set all
        entries equal.
    data:
        Optional contents, as in :class:`FileSpec`.
    """

    name: str
    blocks: int
    latency_vector: tuple[int, ...]
    data: bytes | None = field(default=None, compare=False)

    def __init__(
        self,
        name: str,
        blocks: int,
        latency_vector: tuple[int, ...] | list[int],
        data: bytes | None = None,
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "blocks", blocks)
        object.__setattr__(self, "latency_vector", tuple(latency_vector))
        object.__setattr__(self, "data", data)
        # Validation is delegated to the bc constructor.
        self.as_condition()

    @property
    def max_faults(self) -> int:
        """``r``: the number of faults the latency vector covers."""
        return len(self.latency_vector) - 1

    def as_condition(self) -> BroadcastCondition:
        """The induced broadcast-file condition ``bc(name, m, d)``."""
        return bc(self.name, self.blocks, self.latency_vector)

    @classmethod
    def regular(
        cls, name: str, blocks: int, latency_slots: int
    ) -> "GeneralizedFileSpec":
        """A regular real-time file: no fault tolerance (``r = 0``)."""
        return cls(name, blocks, (latency_slots,))

    @classmethod
    def uniform(
        cls, name: str, blocks: int, latency_slots: int, faults: int
    ) -> "GeneralizedFileSpec":
        """A regular fault-tolerant file: one latency for all fault counts.

        ``d(0) = d(1) = ... = d(r) = latency_slots``, the paper's encoding
        of the Section 3.2 model inside the generalized one.
        """
        if faults < 0:
            raise SpecificationError(f"faults must be >= 0, got {faults}")
        return cls(name, blocks, (latency_slots,) * (faults + 1))

    def payload(self, block_size: int = 64) -> bytes:
        """Deterministic simulation payload (see :meth:`FileSpec.payload`)."""
        if self.data is not None:
            return self.data
        seed = self.name.encode("utf-8")
        unit = (seed * (block_size // max(1, len(seed)) + 1))[:block_size]
        return unit * self.blocks
