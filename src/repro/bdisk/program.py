"""The broadcast program abstraction.

A broadcast program (Definition 1 of Section 4.1) maps each time slot to
the file transmitted in that slot - or to nothing.  Under AIDA a slot
additionally carries *which* dispersed block of the file goes out, and the
server rotates through ``n_i`` distinct blocks of file ``i`` across its
service slots.  Two periods matter (Section 2.3, Figure 6):

* the **broadcast period** - the cycle of the slot-to-file map; it is
  sized so every window contains enough blocks of each file;
* the **program data cycle** - the longer cycle after which the
  (file, block) content repeats; block rotation makes consecutive
  services carry *distinct* blocks, which is what turns "r errors cost r
  full periods" (Lemma 1) into "r errors cost r inter-block gaps"
  (Lemma 2).

:class:`BroadcastProgram` wraps a verified :class:`repro.core.Schedule`
(owners = file names) with per-file block-rotation counts, and exposes the
quantities the lemmas and the simulator need: ``Pi`` (broadcast period),
``Delta_i`` (max inter-service gap), and exact distinct-block window
minima.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import ProgramError, SpecificationError
from repro.core.schedule import IDLE, Schedule


@dataclass(frozen=True, slots=True)
class SlotContent:
    """What one slot carries: a file name and a dispersed block index."""

    file: str
    block_index: int

    def __str__(self) -> str:
        return f"{self.file}'{self.block_index + 1}"


class BroadcastProgram:
    """A cyclic broadcast program with AIDA block rotation.

    Parameters
    ----------
    schedule:
        The slot-to-file map (owners are file names; ``IDLE`` allowed).
    block_counts:
        For each file, the number ``n_i`` of distinct dispersed blocks the
        server rotates through.  Files absent from the mapping rotate
        through exactly their per-cycle occurrence count (i.e. every
        period transmits the same blocks - the plain Figure 5 regime).
    """

    __slots__ = ("_schedule", "_block_counts", "_data_cycle", "_index")

    def __init__(
        self,
        schedule: Schedule,
        block_counts: Mapping[str, int] | None = None,
    ) -> None:
        self._schedule = schedule
        counts: dict[str, int] = {}
        for file in schedule.owners():
            per_cycle = schedule.total(file)
            requested = (
                block_counts.get(file, per_cycle)
                if block_counts is not None
                else per_cycle
            )
            if requested < 1:
                raise ProgramError(
                    f"file {file!r}: block count must be >= 1, "
                    f"got {requested}"
                )
            counts[file] = requested
        if block_counts:
            unknown = set(block_counts) - set(counts)
            if unknown:
                raise ProgramError(
                    f"block counts for files not in the program: {unknown}"
                )
        self._block_counts = counts
        # Data cycle: after `k` schedule cycles, file i has had
        # k * per_cycle occurrences; content repeats when every file's
        # occurrence count is a multiple of its n_i.
        multiplier = 1
        for file, n_blocks in counts.items():
            per_cycle = schedule.total(file)
            repeat = n_blocks // math.gcd(n_blocks, per_cycle)
            multiplier = math.lcm(multiplier, repeat)
        self._data_cycle = schedule.cycle_length * multiplier
        self._index = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def schedule(self) -> Schedule:
        """The underlying slot-to-file schedule."""
        return self._schedule

    @property
    def broadcast_period(self) -> int:
        """The paper's ``Pi``: the slot-to-file cycle length."""
        return self._schedule.cycle_length

    @property
    def data_cycle_length(self) -> int:
        """The program data cycle: period of the (file, block) content."""
        return self._data_cycle

    @property
    def files(self) -> tuple[str, ...]:
        """Files appearing in the program."""
        return self._schedule.owners()

    def block_count(self, file: str) -> int:
        """``n_i``: distinct blocks file ``i`` rotates through."""
        return self._block_counts[file]

    @property
    def index(self) -> "ProgramIndex":
        """The program's occurrence index (built lazily, exactly once).

        One O(data-cycle) pass precomputes per-file occurrence tables;
        every simulator sharing this program shares the same index.
        """
        if self._index is None:
            from repro.bdisk.program_index import ProgramIndex

            self._index = ProgramIndex(self)
        return self._index

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------

    def __getstate__(self) -> tuple[Schedule, dict[str, int], int]:
        # The occurrence index never crosses a pickle: pool tasks that
        # need it rebuild lazily (or, in the vectorized engine, attach
        # the parent's shared-memory tables instead), so shipping a
        # program costs the schedule alone.
        return self._schedule, self._block_counts, self._data_cycle

    def __setstate__(
        self, state: tuple[Schedule, dict[str, int], int]
    ) -> None:
        self._schedule, self._block_counts, self._data_cycle = state
        self._index = None

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------

    def slot_content(self, t: int) -> SlotContent | None:
        """The ``(file, block)`` transmitted in slot ``t`` (None = idle).

        Block rotation: the ``c``-th service of file ``i`` (counting from
        the start of the data cycle) carries block ``c mod n_i``.  An O(1)
        lookup into the precomputed occurrence index.
        """
        if t < 0:
            raise SpecificationError(f"slot index must be >= 0, got {t}")
        return self.index.contents[t % self._data_cycle]

    def content_cycle(self) -> list[SlotContent | None]:
        """One full data cycle of slot contents."""
        return list(self.index.contents)

    def slots(self, horizon: int) -> Iterator[tuple[int, SlotContent | None]]:
        """Yield ``(t, content)`` for ``t = 0 .. horizon - 1``."""
        for t in range(horizon):
            yield t, self.slot_content(t)

    # ------------------------------------------------------------------
    # Metrics the lemmas use
    # ------------------------------------------------------------------

    def max_gap(self, file: str) -> int:
        """Lemma 2's ``Delta``: largest spacing between services of
        ``file``.  Raises for files the program never serves."""
        gap = self._schedule.max_gap(file)
        if gap is None:
            raise ProgramError(f"file {file!r} never appears in the program")
        return gap

    def min_count_in_window(self, file: str, window: int) -> int:
        """Minimum service slots of ``file`` over all windows of ``window``."""
        return self._schedule.min_in_any_window(file, window)

    def min_distinct_in_window(self, file: str, window: int) -> int:
        """Minimum *distinct block indices* of ``file`` in any window.

        This is the fault-tolerance quantity: with AIDA, ``j`` losses in a
        window still permit reconstruction iff the window held at least
        ``m + j`` distinct blocks.  Computed by sliding over the file's
        precomputed occurrences (the content is periodic beyond one data
        cycle); see :meth:`ProgramIndex.min_distinct_in_window`.
        """
        return self.index.min_distinct_in_window(file, window)

    def verify_fault_tolerance(
        self, file: str, m: int, faults: int, window: int
    ) -> bool:
        """Whether any ``window`` guarantees reconstruction under faults.

        True iff every window of ``window`` slots carries at least
        ``m + faults`` distinct blocks of ``file``: then any ``faults``
        losses still leave ``m`` distinct blocks for IDA.
        """
        return self.min_distinct_in_window(file, window) >= m + faults

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, *, periods: int | None = None) -> str:
        """Figure 5/6-style rendering, e.g. ``A'1 B'1 A'2 ...``.

        ``periods`` limits output to that many broadcast periods
        (default: one full data cycle).
        """
        horizon = (
            self._data_cycle
            if periods is None
            else periods * self.broadcast_period
        )
        parts = []
        for t in range(horizon):
            content = self.slot_content(t)
            parts.append("--" if content is None else str(content))
        return " ".join(parts)

    def __repr__(self) -> str:
        return (
            f"BroadcastProgram(period={self.broadcast_period}, "
            f"data_cycle={self._data_cycle}, files={list(self.files)})"
        )
