"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subclasses are
organized by subsystem (scheduling, dispersal, broadcast programs,
simulation) and carry enough structured context to be actionable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SpecificationError(ReproError, ValueError):
    """A task, file, or condition specification is malformed.

    Raised eagerly at construction time (e.g. a pinwheel task with a
    non-positive window, or a latency vector that is not non-decreasing in
    the places the model requires).
    """


class InfeasibleError(ReproError):
    """The requested scheduling problem is provably infeasible.

    Carries the offending density or witness when known.
    """

    def __init__(self, message: str, *, density: float | None = None) -> None:
        super().__init__(message)
        #: System density at the point infeasibility was established,
        #: if a density argument was involved (``None`` otherwise).
        self.density = density


class SchedulingError(ReproError):
    """A scheduler failed to produce a schedule.

    Unlike :class:`InfeasibleError`, this does *not* assert that no schedule
    exists - only that the particular algorithm (or portfolio) gave up.
    """


class VerificationError(ReproError):
    """A produced schedule or program failed verification.

    Schedulers in this library always verify their output before returning;
    this error therefore indicates an internal bug and includes the first
    violated condition and window for debugging.
    """


class DispersalError(ReproError):
    """IDA/AIDA dispersal or reconstruction failed.

    Typical causes: fewer than ``m`` distinct blocks supplied, mismatched
    file identifiers, or corrupted self-identifying headers.
    """


class BlockCodecError(DispersalError):
    """A wire-encoded block could not be decoded (bad magic, short frame)."""


class ProgramError(ReproError):
    """A broadcast program violates its structural invariants."""


class BandwidthError(ReproError):
    """No feasible bandwidth exists within the searched range."""


class SimulationError(ReproError, ValueError):
    """A simulation was configured inconsistently or failed to converge.

    Also a ``ValueError``: simulation misuses (scheduling an event into
    the past, requesting a file that is never aired) are value errors in
    the plain-Python sense, and callers outside the library commonly
    guard with ``except ValueError``.
    """
