"""Experiment MDISK: demand-driven multidisk vs deadline-driven pinwheel.

The paper's positioning claim (Section 1): demand-driven broadcast disks
(Acharya et al.) optimize *average* latency for hot items but offer no
worst-case guarantee, while the pinwheel formulation guarantees every
file's deadline.  The bench runs the same Zipf-skewed request stream over
both program styles and reports mean latency (where multidisk shines)
next to deadline-miss rate (where pinwheel wins by construction).
"""

from benchmarks.conftest import print_table
from repro.api import BroadcastEngine, Scenario, WorkloadSpec
from repro.bdisk.file import FileSpec
from repro.bdisk.multidisk import build_multidisk_program, config_from_demand
from repro.sim.runner import simulate_requests

FILES = [
    FileSpec("hot", 2, 8),
    FileSpec("warm-1", 3, 16),
    FileSpec("warm-2", 3, 20),
    FileSpec("cold-1", 5, 40),
    FileSpec("cold-2", 6, 60),
]
DEMAND = {"hot": 20.0, "warm-1": 5.0, "warm-2": 4.0,
          "cold-1": 1.0, "cold-2": 0.5}


def _scenario(seed: int) -> Scenario:
    # Deadlines are in pinwheel slots; the multidisk channel runs at the
    # same slot rate, so the same deadline applies to both programs.
    return Scenario(
        name="mdisk",
        files=FILES,
        workload=WorkloadSpec(
            requests=150, horizon=600, zipf_skew=1.2, seed=seed
        ),
    )


def _run_both(seed: int):
    result = BroadcastEngine(_scenario(seed)).run()

    multidisk = build_multidisk_program(
        config_from_demand(
            [(f.name, f.blocks) for f in FILES], DEMAND, levels=(4, 2, 1)
        )
    )
    # Replay the engine's exact request stream on the baseline layout.
    multi_result = simulate_requests(
        multidisk,
        result.simulation.requests,
        file_sizes={f.name: f.blocks for f in FILES},
        need_distinct=False,
    )
    return result.design, result.simulation, multi_result


def test_multidisk_vs_pinwheel(benchmark):
    design, pinwheel_result, multi_result = benchmark(_run_both, 77)
    print_table(
        "MDISK: same Zipf request stream over both layouts",
        ["program", "mean latency", "p95", "worst",
         "deadline miss rate"],
        [
            [
                "pinwheel (deadline-driven)",
                f"{pinwheel_result.summary.mean:.1f}",
                f"{pinwheel_result.summary.p95:.0f}",
                f"{pinwheel_result.summary.worst:.0f}",
                f"{pinwheel_result.deadline_miss_rate:.3f}",
            ],
            [
                "multidisk (demand-driven)",
                f"{multi_result.summary.mean:.1f}",
                f"{multi_result.summary.p95:.0f}",
                f"{multi_result.summary.worst:.0f}",
                f"{multi_result.deadline_miss_rate:.3f}",
            ],
        ],
    )
    # The paper's claim: pinwheel programs never miss a deadline.
    assert pinwheel_result.deadline_miss_rate == 0.0


def test_pinwheel_guarantee_under_any_phase(benchmark):
    """Worst-case check: every phase of every file meets its window."""

    def worst_phase_check():
        design = BroadcastEngine(_scenario(77)).design()
        program = design.program
        bandwidth = design.bandwidth_plan.bandwidth
        worst = {}
        for spec in FILES:
            window = bandwidth * spec.latency
            count = program.min_count_in_window(spec.name, window)
            worst[spec.name] = (count, spec.blocks)
        return worst

    worst = benchmark(worst_phase_check)
    print_table(
        "MDISK: pinwheel worst-window block counts",
        ["file", "min blocks in window", "blocks needed"],
        [[name, got, need] for name, (got, need) in worst.items()],
    )
    for got, need in worst.values():
        assert got >= need
