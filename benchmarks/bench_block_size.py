"""Experiment BLK: the Section 5 block-size trade-off.

The paper's closing open issue: the smaller the communication block, the
finer the dispersal (better bandwidth efficiency) but the costlier the
IDA arithmetic.  The bench sweeps block sizes for a fixed catalogue and
reports the induced pinwheel density, the dispersal levels, the relative
codec cost, and the answer to the paper's question - the largest
schedulable block size.  A second sweep exercises the per-file
``b_i = k_i * b`` generalization.
"""

from fractions import Fraction

from benchmarks.conftest import print_table
from repro.bdisk.blocksize import (
    SizedFile,
    analyze_block_size,
    largest_schedulable_block_size,
    per_file_multiples,
)

CATALOGUE = [
    SizedFile("tracks", 8_192, Fraction(1, 2), fault_budget=2),
    SizedFile("map-tiles", 65_536, 8, fault_budget=1),
    SizedFile("advisories", 4_096, 2),
    SizedFile("firmware", 262_144, 60),
]
BANDWIDTH = 64_000  # bytes/second
CANDIDATES = [256, 512, 1024, 2048, 4096, 8192]


def test_block_size_sweep(benchmark):
    best, reports = benchmark(
        largest_schedulable_block_size, CATALOGUE, BANDWIDTH, CANDIDATES
    )
    rows = []
    for report in reports:
        rows.append(
            [
                report.block_size,
                f"{float(min(report.density, Fraction(99))):.4f}",
                "yes" if report.schedulable else "no",
                max(report.dispersal_levels.values()),
                f"{report.codec_cost:.1f}",
            ]
        )
    print_table(
        "BLK: block-size sweep (64 KB/s channel)",
        ["block bytes", "density", "schedulable", "max m", "codec cost"],
        rows,
    )
    assert best is not None
    print(f"\nlargest schedulable block size: {best.block_size} bytes")
    # Small blocks approach the information-theoretic floor; the largest
    # candidate always costs at least as much density as the smallest
    # (quantization + fault slots), though the middle need not be
    # monotone because of per-file ceiling effects.
    densities = [r.density for r in reports if r.density < 99]
    assert densities[0] <= densities[-1]


def test_density_vs_codec_frontier(benchmark):
    """The trade-off curve itself: density floor vs codec cost."""

    def frontier():
        return [
            analyze_block_size(CATALOGUE, BANDWIDTH, b)
            for b in CANDIDATES
        ]

    reports = benchmark(frontier)
    floor = sum(
        Fraction(f.size_bytes) / (Fraction(f.latency_seconds) * BANDWIDTH)
        for f in CATALOGUE
    )
    rows = [
        [
            r.block_size,
            f"{float(min(r.density, Fraction(99))):.4f}",
            f"{float(floor):.4f}",
            f"{r.codec_cost:.1f}",
        ]
        for r in reports
    ]
    print_table(
        "BLK: density vs codec-cost frontier",
        ["block bytes", "density", "info-theoretic floor", "codec cost"],
        rows,
    )
    for report in reports:
        assert report.density >= floor


def test_per_file_multiples(benchmark):
    """The paper's k_i generalization: big files get big blocks."""
    multiples = benchmark(
        per_file_multiples, CATALOGUE, BANDWIDTH, 512, 16
    )
    rows = [
        [
            spec.name,
            spec.size_bytes,
            multiples[spec.name],
            512 * multiples[spec.name],
            spec.dispersal_level(512 * multiples[spec.name]),
        ]
        for spec in CATALOGUE
    ]
    print_table(
        "BLK: per-file block multiples (base 512 B)",
        ["file", "bytes", "k_i", "block bytes", "dispersal m"],
        rows,
    )
    # The biggest file should take the biggest (or equal) multiple.
    biggest = max(CATALOGUE, key=lambda s: s.size_bytes)
    assert multiples[biggest.name] == max(multiples.values())
