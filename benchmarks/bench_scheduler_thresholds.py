"""Experiment THR: the density thresholds of Section 3.1.

The paper's scheduling-theory ladder:

* Holte et al. [19]: single-number reduction, density <= 1/2;
* Chan & Chin [12]: density <= 7/10 (the bound Equations 1-2 use);
* Lin & Lin [27]: three tasks, density <= 5/6;
* Holte et al. [20]: two tasks, density <= 1.

For each scheduler the bench sweeps density-targeted random instances and
reports success rates at and beyond its guarantee - validating that the
implementations deliver their contracts (the DESIGN.md substitution for
Chan & Chin is checked at exactly the 7/10 operating point).

Greedy runs with a bounded step budget: at high densities its failure
mode is a long fruitless walk, and the interesting number is how often it
wins quickly, not how long it takes to give up.
"""

import random

from benchmarks.conftest import print_table
from repro.core.double_reduction import schedule_double_reduction
from repro.core.greedy import schedule_greedy
from repro.core.single_reduction import schedule_single_reduction
from repro.core.task import PinwheelSystem
from repro.core.three_task import schedule_three_tasks
from repro.core.two_task import schedule_two_tasks
from repro.errors import ReproError
from repro.sim.workload import random_pinwheel_system

DENSITIES = [0.45, 0.50, 0.60, 0.70, 0.80, 0.90]
TRIALS = 10

SCHEDULERS = {
    "single(Sa)": schedule_single_reduction,
    "double(Sx)": schedule_double_reduction,
    "greedy": lambda s: schedule_greedy(s, step_budget=60_000),
}


def _success_rate(scheduler, systems) -> float:
    wins = 0
    for system in systems:
        try:
            scheduler(system)
            wins += 1
        except ReproError:
            pass
    return wins / len(systems)


def _instances(seed: int, count_range, density: float):
    rng = random.Random(seed)
    systems = []
    while len(systems) < TRIALS:
        count = rng.randint(*count_range)
        try:
            systems.append(
                random_pinwheel_system(
                    rng, count, density, max_window=80
                )
            )
        except ReproError:
            continue
    return systems


def test_threshold_ladder(benchmark):
    def sweep():
        table = {}
        for density in DENSITIES:
            systems = _instances(
                100 + int(density * 100), (4, 8), density
            )
            table[density] = {
                name: _success_rate(scheduler, systems)
                for name, scheduler in SCHEDULERS.items()
            }
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{density:.2f}"]
        + [f"{table[density][name]:.2f}" for name in SCHEDULERS]
        for density in DENSITIES
    ]
    print_table(
        "THR: success rate vs density (4-8 unit-demand tasks, "
        f"{TRIALS} instances/cell)",
        ["density", "Sa (guar. 0.50)", "Sx (oper. 0.70)",
         "greedy EDF (60k budget)"],
        rows,
    )
    # Contracts: perfect success at or below each guarantee.
    assert table[0.45]["single(Sa)"] == 1.0
    assert table[0.50]["single(Sa)"] == 1.0
    for density in (0.45, 0.50, 0.60, 0.70):
        assert table[density]["double(Sx)"] == 1.0


def test_two_task_completeness(benchmark):
    """Two tasks: density <= 1 always schedulable (and fast)."""

    def sweep():
        rng = random.Random(7)
        wins = 0
        for _ in range(50):
            b1, b2 = rng.randint(2, 60), rng.randint(2, 60)
            a1 = rng.randint(1, b1 - 1)
            budget = 1 - a1 / b1
            a2 = max(1, int(budget * b2))
            if a1 / b1 + a2 / b2 > 1:
                continue
            system = PinwheelSystem.from_pairs([(a1, b1), (a2, b2)])
            schedule_two_tasks(system)
            wins += 1
        return wins

    wins = benchmark(sweep)
    print_table(
        "THR: two-task completeness at density <= 1",
        ["instances scheduled", "failures"],
        [[wins, 0]],
    )
    assert wins > 0


def test_three_task_lin_lin_point(benchmark):
    """Three tasks at density ~5/6 - the Lin & Lin frontier."""

    def sweep():
        rng = random.Random(8)
        wins = attempts = 0
        while attempts < 12:
            try:
                # min_window=2: three windows >= 4 cap density at 0.75,
                # below the 5/6 operating point this bench probes.
                system = random_pinwheel_system(
                    rng, 3, 5 / 6, min_window=2, max_window=40
                )
            except ReproError:
                continue
            attempts += 1
            try:
                schedule_three_tasks(system)
                wins += 1
            except ReproError:
                pass
        return wins, attempts

    wins, attempts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "THR: three-task success at density <= 5/6",
        ["attempts", "scheduled", "rate"],
        [[attempts, wins, f"{wins / attempts:.2f}"]],
    )
    assert wins == attempts  # the Lin & Lin guarantee
