"""Experiment SWEEP: the schedule solve-cache on a fault-only grid.

A parameter sweep that varies only fault and traffic knobs leaves the
scheduled pinwheel instance untouched, so under the content-addressed
solve-cache (:mod:`repro.sweep.cache`) exactly one cell pays the
designer - bandwidth planning, portfolio scheduling, verification - and
every other cell injects the cached :class:`ProgramDesign` and pays only
its own simulation.  This bench quantifies that on a 120-cell grid over
a 40-file catalogue (expensive enough to design that the solver
dominates a cell):

* **cache off** - every cell re-solves the identical instance;
* **cache on** - one solve, every other cell a content-addressed hit.

The acceptance floor is a >= 5x wall-clock speedup (full configuration
only).  The run store is exercised in both arms (rows stream to JSONL
either way), so the speedup is end-to-end, not a microbenchmark of the
solver.  Results land in ``BENCH_sweep.json`` at the repo root.  Set
``REPRO_BENCH_SMOKE=1`` for a tiny CI-friendly grid (no JSON record, no
floor).
"""

from __future__ import annotations

import json
import os
import platform
import random
import time
from pathlib import Path

from benchmarks.conftest import print_table
from repro.api import Scenario
from repro.sweep import SweepSpec, marginals, run_sweep

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
FILES = 6 if SMOKE else 40
REQUESTS = 4 if SMOKE else 6
PROBABILITIES = (0.0, 0.05) if SMOKE else (
    0.0, 0.01, 0.02, 0.05, 0.08, 0.1, 0.15, 0.2, 0.25, 0.3,
)
SEEDS = (1, 2) if SMOKE else tuple(range(1, 13))
SEED = 0x1997
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"


def _catalogue() -> list[dict]:
    rng = random.Random(SEED)
    files = []
    for index in range(FILES):
        blocks = rng.randint(2, 6)
        files.append(
            {
                "name": f"f{index:02d}",
                "blocks": blocks,
                "latency": rng.randint(3 * blocks, 6 * blocks),
                "fault_budget": rng.randint(0, 2),
            }
        )
    return files


def _grid() -> SweepSpec:
    base = Scenario.from_dict(
        {
            "name": "solve-cache-grid",
            "files": _catalogue(),
            "workload": {"requests": REQUESTS, "horizon": 150, "seed": 7},
        }
    )
    return SweepSpec.from_dict(
        {
            "name": "bench-fault-grid",
            "base": base.to_dict(),
            "axes": [
                {"field": "faults.kind", "values": ["bernoulli"]},
                {"field": "faults.probability",
                 "values": list(PROBABILITIES)},
                {"field": "faults.seed", "values": list(SEEDS)},
            ],
        }
    )


def _run(tmp_path: Path, use_cache: bool):
    tag = "cached" if use_cache else "uncached"
    begin = time.perf_counter()
    result = run_sweep(
        _grid(),
        store_path=tmp_path / f"{tag}.runs.jsonl",
        cache_dir=(tmp_path / "solve-cache") if use_cache else None,
        use_cache=use_cache,
    )
    return result, time.perf_counter() - begin


def test_solve_cache_speedup_and_record(tmp_path):
    """The acceptance measurement: cache on vs. off over one grid."""
    spec = _grid()
    cells = spec.total_cells
    uncached, cold_elapsed = _run(tmp_path, use_cache=False)
    cached, warm_elapsed = _run(tmp_path, use_cache=True)

    # Identical grids, identical results - the cache changes timing
    # only, never output.
    assert [row["result"] for row in cached.rows] == [
        row["result"] for row in uncached.rows
    ]
    assert uncached.solves == cells
    assert cached.solves == 1 and cached.cache_hits == cells - 1

    speedup = cold_elapsed / warm_elapsed if warm_elapsed else float("inf")
    print_table(
        f"SWEEP: solve-cache on a {cells}-cell fault grid "
        f"({FILES}-file catalogue)",
        ["arm", "cells", "solves", "cache hits", "wall (s)", "speedup"],
        [
            ["cache off", cells, uncached.solves, 0,
             f"{cold_elapsed:.2f}", "1.0x"],
            ["cache on", cells, cached.solves, cached.cache_hits,
             f"{warm_elapsed:.2f}", f"{speedup:.1f}x"],
        ],
    )

    by_probability = marginals(
        cached.records(), "faults.probability", ["sim_miss_rate", "sim_p99"]
    )
    print_table(
        "SWEEP: miss rate / p99 vs. fault probability (cached arm)",
        ["p", "cells", "mean miss rate", "mean p99"],
        [
            [entry["faults.probability"], entry["cells"],
             f"{entry['mean_sim_miss_rate']:.4f}"
             if entry["mean_sim_miss_rate"] is not None else "-",
             f"{entry['mean_sim_p99']:.1f}"
             if entry["mean_sim_p99"] is not None else "-"]
            for entry in by_probability
        ],
    )

    if SMOKE:  # smoke asserts correctness only, never timing
        return
    assert speedup >= 5.0, (
        f"expected the solve-cache to be >= 5x faster on a "
        f"design-dominated grid, measured {speedup:.1f}x "
        f"({cold_elapsed:.2f}s -> {warm_elapsed:.2f}s)"
    )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "bench": "sweep",
                "grid": {
                    "files": FILES,
                    "cells": cells,
                    "axes": ["faults.probability", "faults.seed"],
                    "workload_requests": REQUESTS,
                },
                "python": platform.python_version(),
                "cache_off": {
                    "wall_seconds": round(cold_elapsed, 3),
                    "solves": uncached.solves,
                },
                "cache_on": {
                    "wall_seconds": round(warm_elapsed, 3),
                    "solves": cached.solves,
                    "cache_hits": cached.cache_hits,
                },
                "speedup": round(speedup, 2),
                "miss_rate_by_probability": [
                    {
                        "probability": entry["faults.probability"],
                        "mean_miss_rate": entry["mean_sim_miss_rate"],
                        "mean_p99": entry["mean_sim_p99"],
                    }
                    for entry in by_probability
                ],
            },
            indent=2,
        )
        + "\n"
    )


def test_resume_completes_a_killed_sweep(tmp_path):
    """Resume integrity at bench scale: truncate the store mid-grid and
    re-invoke; only the missing cells run and the rows converge."""
    spec = _grid()
    store = tmp_path / "resume.runs.jsonl"
    cache = tmp_path / "resume-cache"
    full = run_sweep(spec, store_path=store, cache_dir=cache)
    keep = spec.total_cells // 3
    lines = store.read_text(encoding="utf-8").splitlines()[:keep]
    store.write_text("\n".join(lines) + "\n", encoding="utf-8")
    resumed = run_sweep(
        spec, store_path=store, cache_dir=cache, resume=True
    )
    assert resumed.resumed == keep
    assert resumed.executed == spec.total_cells - keep
    assert resumed.solves == 0  # the design was already cached
    assert [row["result"] for row in resumed.rows] == [
        row["result"] for row in full.rows
    ]
