"""Experiment IDA-T: dispersal/reconstruction throughput.

Section 2.1 footnote: the SETH VLSI chip implemented IDA at about
1 MB/s (1990 fabrication).  This bench measures the pure-Python + numpy
implementation on growing payloads and m-of-N configurations, reporting
MB/s next to that historical reference.  Absolute numbers are
machine-dependent; the point is that the software substrate is fast
enough to feed the simulators and examples.
"""

import os

from benchmarks.conftest import print_table
from repro.ida.dispersal import disperse, reconstruct

PAYLOAD = os.urandom(1 << 18)  # 256 KiB, fixed across rounds
SETH_REFERENCE_MBS = 1.0


def _mbs(nbytes: int, seconds: float) -> float:
    return nbytes / seconds / 1e6 if seconds else float("inf")


def test_disperse_throughput_8_of_16(benchmark):
    blocks = benchmark(disperse, PAYLOAD, 8, 16)
    assert len(blocks) == 16
    seconds = benchmark.stats.stats.mean
    print_table(
        "IDA-T: disperse 256 KiB, 8-of-16",
        ["ours (MB/s)", "SETH chip (MB/s, 1990)"],
        [[f"{_mbs(len(PAYLOAD), seconds):.2f}", SETH_REFERENCE_MBS]],
    )


def test_disperse_throughput_4_of_8(benchmark):
    blocks = benchmark(disperse, PAYLOAD, 4, 8)
    assert len(blocks) == 8
    seconds = benchmark.stats.stats.mean
    print_table(
        "IDA-T: disperse 256 KiB, 4-of-8",
        ["ours (MB/s)", "SETH chip (MB/s, 1990)"],
        [[f"{_mbs(len(PAYLOAD), seconds):.2f}", SETH_REFERENCE_MBS]],
    )


def test_reconstruct_throughput_redundant_rows(benchmark):
    """Reconstruction from the redundancy rows (full matrix inversion)."""
    blocks = disperse(PAYLOAD, 8, 16)
    survivors = blocks[8:]
    restored = benchmark(reconstruct, survivors)
    assert restored == PAYLOAD
    seconds = benchmark.stats.stats.mean
    print_table(
        "IDA-T: reconstruct 256 KiB from redundancy rows, 8-of-16",
        ["ours (MB/s)", "SETH chip (MB/s, 1990)"],
        [[f"{_mbs(len(PAYLOAD), seconds):.2f}", SETH_REFERENCE_MBS]],
    )


def test_reconstruct_systematic_fast_path(benchmark):
    """Systematic dispersal: plaintext rows decode by concatenation."""
    blocks = disperse(PAYLOAD, 8, 16, systematic=True)
    survivors = blocks[:8]
    restored = benchmark(reconstruct, survivors)
    assert restored == PAYLOAD
    seconds = benchmark.stats.stats.mean
    print_table(
        "IDA-T: systematic fast-path reconstruct, 8-of-16",
        ["ours (MB/s)"],
        [[f"{_mbs(len(PAYLOAD), seconds):.2f}"]],
    )


def test_dispersal_level_scaling(benchmark):
    """Cost versus dispersal level m (the O(m^2) remark of Section 5)."""

    def sweep():
        import time

        rows = []
        data = PAYLOAD[: 1 << 16]  # 64 KiB per point
        for m in (2, 4, 8, 16, 32):
            start = time.perf_counter()
            disperse(data, m, 2 * m)
            elapsed = time.perf_counter() - start
            rows.append((m, elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "IDA-T: dispersal cost vs level m (64 KiB, N = 2m)",
        ["m", "seconds", "MB/s"],
        [
            [m, f"{sec:.4f}", f"{_mbs(1 << 16, sec):.2f}"]
            for m, sec in rows
        ],
    )
