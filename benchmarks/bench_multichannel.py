"""Experiment MULTICHANNEL: latency and consistency across k channels.

Two claims from the multi-channel generalization are measured and
recorded:

* **Latency vs. channel count.**  A hot-set population over a *dense*
  catalogue (aggregate pinwheel density 0.9 on one channel) is served
  at k = 1, 2, 4 striped channels.  On one channel the schedule has no
  slack, so every file is aired exactly at its required rate and
  retrievals pay near-worst-case gaps; striping the same catalogue
  over k channels leaves each channel underloaded, files are aired
  more densely, and mean latency drops - the aggregate-bandwidth win
  the multi-channel stack exists for.  Acceptance floor (full
  configuration only): k=2 mean latency <= 0.75x the k=1 mean.

* **Quorum fault tolerance.**  A temporal population reads
  version-consistently at 1-of-1 (single channel) and 2-of-3
  (replicated channels, quorum 2).  The quorum pays an assembly
  latency premium on the clean channel, holds its success rate under
  5% Bernoulli loss, and - the point - *survives a dead channel*:
  1-of-1 on a dead carrier is a total outage (quorum success 0.0),
  2-of-3 with one dead carrier keeps assembling from the survivors.
  Acceptance floors (full configuration only): 2-of-3 quorum success
  >= 0.9 under Bernoulli loss and >= 0.5 with one dead channel, while
  1-of-1 on the dead carrier serves nothing.

Both engines run the latency grid and must agree exactly - as
everywhere else, the SoA engine is purely a performance choice.
Results land in ``BENCH_multichannel.json`` at the repo root.  Set
``REPRO_BENCH_SMOKE=1`` for a CI-friendly configuration (tiny
populations, correctness asserts only, no JSON record, no floors).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from benchmarks.conftest import print_table
from repro.api.scenario import ChannelSpec, FaultSpec
from repro.bdisk.file import FileSpec
from repro.bdisk.multichannel import design_multichannel_program
from repro.rtdb import TemporalItemSpec, TemporalSpec
from repro.sim.faults import AdversarialFaults
from repro.traffic import TrafficSpec, simulate_traffic

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CLIENTS = 200 if SMOKE else 2_000
TEMPORAL_CLIENTS = 60 if SMOKE else 300
SEED = 1997
RESULT_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_multichannel.json"
)

#: The dense catalogue: six 3-block files at a 20-slot latency budget -
#: aggregate density 6 * 3/20 = 0.9 on a single channel.
DENSE_FILES = [FileSpec(f"f{i}", 3, 20) for i in range(6)]
DENSE_SIZES = {spec.name: spec.blocks for spec in DENSE_FILES}
DENSE_DEADLINES = {spec.name: 10_000 for spec in DENSE_FILES}

#: Latency floor: striping the dense catalogue over two channels must
#: cut mean latency to at most this fraction of the single-channel
#: mean (measured: ~0.54).
LATENCY_WIN_FLOOR = 0.75

TEMPORAL_FILES = [
    FileSpec("tracks", 2, 300, fault_budget=4),
    FileSpec("map", 3, 600, fault_budget=6),
    FileSpec("terrain", 4, 3000, fault_budget=8),
]
TEMPORAL_SIZES = {spec.name: spec.blocks for spec in TEMPORAL_FILES}
TEMPORAL_DEADLINES = {spec.name: 10_000 for spec in TEMPORAL_FILES}
TEMPORAL = TemporalSpec(
    slot_ms=10,
    items=(
        TemporalItemSpec("tracks", blocks=2, max_age_ms=3000,
                         default_faults=4),
        TemporalItemSpec("map", blocks=3, max_age_ms=6000,
                         default_faults=6),
        TemporalItemSpec("terrain", blocks=4, max_age_ms=30000,
                         default_faults=8),
    ),
    update_periods={"tracks": 240, "map": 480, "terrain": 2400},
)


def _hot_spec():
    return TrafficSpec(
        clients=CLIENTS,
        duration=5_000,
        arrival="poisson",
        popularity="hotcold",
        hot_fraction=0.25,
        hot_weight=0.9,
        requests_per_client=2,
        think_time=10,
        seed=SEED,
    )


def _temporal_spec():
    return TrafficSpec(
        clients=TEMPORAL_CLIENTS,
        duration=6_000,
        arrival="poisson",
        popularity="zipf",
        requests_per_client=2,
        think_time=10,
        seed=SEED,
    )


def _striped(k):
    return design_multichannel_program(
        DENSE_FILES, ChannelSpec(count=k, tuning_cost=2)
    )


def _replicated(k, quorum):
    return design_multichannel_program(
        TEMPORAL_FILES,
        ChannelSpec(
            count=k, assignment="replicated", tuning_cost=2, quorum=quorum
        ),
    ).channel_set


def _update(section, payload):
    if SMOKE:
        return
    record = (
        json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    )
    record[section] = payload
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")


def _metrics_fingerprint(metrics):
    return (
        metrics.requests,
        metrics.completions,
        metrics.summary(),
        dict(metrics.requests_by_file),
        metrics.channel_switches,
        dict(metrics.quorum_reads),
    )


def test_latency_vs_channel_count_and_record():
    """Striping a dense hot-set catalogue over k channels cuts latency;
    object and SoA engines agree exactly at every k."""
    catalogue = tuple(DENSE_SIZES)
    rows, record, means = [], {}, {}
    for k in (1, 2, 4):
        design = _striped(k)
        channels = design.channel_set
        results = {}
        for engine in ("object", "soa"):
            results[engine] = simulate_traffic(
                None,
                catalogue,
                _hot_spec(),
                file_sizes=DENSE_SIZES,
                deadlines=DENSE_DEADLINES,
                channels=channels,
                engine=engine,
            )
        assert _metrics_fingerprint(
            results["soa"].metrics
        ) == _metrics_fingerprint(results["object"].metrics)
        result = results["soa"]
        summary = result.summary
        means[k] = summary.mean
        rows.append([
            k,
            f"{summary.mean:.1f}", f"{summary.p50:.0f}",
            f"{summary.p95:.0f}", f"{summary.p99:.0f}",
            result.metrics.channel_switches,
            f"{result.requests_per_sec:,.0f}",
        ])
        record[f"k={k}"] = {
            "mean": round(summary.mean, 2),
            "p50": summary.p50,
            "p95": summary.p95,
            "p99": summary.p99,
            "worst": summary.worst,
            "channel_switches": result.metrics.channel_switches,
            "densities": [str(d) for d in design.densities],
        }
    print_table(
        f"MULTICHANNEL latency: {CLIENTS:,} hot-set clients, dense "
        f"catalogue (density 0.9 at k=1), striped worst-fit",
        ["k", "mean", "p50", "p95", "p99", "switches", "req/s"],
        rows,
    )
    if not SMOKE:
        ratio = means[2] / means[1]
        assert ratio <= LATENCY_WIN_FLOOR, (
            f"striping over 2 channels only reached {ratio:.2f}x the "
            f"single-channel mean (floor {LATENCY_WIN_FLOOR})"
        )
        record["k2_over_k1_mean_ratio"] = round(ratio, 3)
    _update("latency_vs_k", record)


def test_quorum_consistency_and_record():
    """1-of-1 vs 2-of-3 across clean, lossy, and dead-channel carriers."""
    catalogue = tuple(TEMPORAL_SIZES)
    dead = lambda: AdversarialFaults(range(0, 200_000))  # noqa: E731
    bern = FaultSpec(kind="bernoulli", probability=0.05, seed=3)
    cases = [
        ("1-of-1 clean", 1, 1, None),
        ("1-of-1 bernoulli", 1, 1, bern),
        ("1-of-1 dead channel", 1, 1, [dead()]),
        ("2-of-3 clean", 3, 2, None),
        ("2-of-3 bernoulli", 3, 2, bern),
        ("2-of-3 one dead", 3, 2, [None, None, dead()]),
    ]
    rows, record = [], {}
    outcomes = {}
    for label, k, quorum, faults in cases:
        result = simulate_traffic(
            None,
            catalogue,
            _temporal_spec(),
            file_sizes=TEMPORAL_SIZES,
            deadlines=TEMPORAL_DEADLINES,
            temporal=TEMPORAL,
            channels=_replicated(k, quorum),
            faults=faults,
            engine="soa",
        )
        m = result.metrics
        outcomes[label] = m
        rows.append([
            label,
            f"{m.quorum_success_rate:.3f}",
            f"{m.consistency_rate:.3f}" if m.item_reads else "-",
            f"{result.miss_rate:.3f}",
            f"{m.mean_quorum_latency:.1f}" if m.quorum_ok else "-",
            m.channel_switches,
        ])
        record[label] = {
            "quorum_success_rate": round(m.quorum_success_rate, 4),
            "consistency_rate": (
                round(m.consistency_rate, 4) if m.item_reads else None
            ),
            "miss_rate": round(result.miss_rate, 4),
            "mean_quorum_latency": (
                round(m.mean_quorum_latency, 1) if m.quorum_ok else None
            ),
            "quorum_reads": dict(sorted(m.quorum_reads.items())),
        }
    print_table(
        f"MULTICHANNEL quorum: {TEMPORAL_CLIENTS} temporal clients, "
        f"replicated channels, versioned reads",
        ["case", "quorum ok", "consistency", "miss", "q-latency",
         "switches"],
        rows,
    )
    # The outage story holds at any scale: a dead single carrier
    # serves nothing, the 2-of-3 survivors keep assembling.
    assert outcomes["1-of-1 dead channel"].quorum_success_rate == 0.0
    assert outcomes["2-of-3 one dead"].quorum_success_rate > 0.0
    if not SMOKE:
        assert outcomes["2-of-3 bernoulli"].quorum_success_rate >= 0.9
        assert outcomes["2-of-3 one dead"].quorum_success_rate >= 0.5
    _update("quorum", record)
