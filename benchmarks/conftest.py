"""Shared benchmark fixtures: the paper's toy programs, seeded RNGs."""

from __future__ import annotations

import random

import pytest

from repro.bdisk.flat import build_aida_flat_program, build_flat_program


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0x1997)


@pytest.fixture(scope="session")
def figure5_program():
    """Figure 5: flat program for A (5 blocks), B (3 blocks)."""
    return build_flat_program([("A", 5), ("B", 3)])


@pytest.fixture(scope="session")
def figure6_program():
    """Figure 6: AIDA flat program, A 5-of-10, B 3-of-6."""
    return build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Uniform table rendering for all benches (visible with pytest -s)."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(header))
    ]
    line = " | ".join(str(h).rjust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(str(c).rjust(w) for c, w in zip(row, widths)))
