"""Experiment DIST: the coordinator/worker fan-out at 10^5-cell scale.

The distributed sweep service (:mod:`repro.sweep.distributed`) expands a
grid into content-addressed work units, leases them to worker processes
over length-prefixed JSON sockets, and folds rows back into the fsync'd
run store with streaming marginals.  This bench drives the full service
end to end - real subprocess workers, a real shared solve-cache
directory, rows streamed to disk - on a 100,000-cell fault grid, and
records three acceptance facts:

* **throughput** - wall clock for 1 worker vs. 4 workers over the same
  grid (``keep_rows=False``, so coordinator memory stays bounded);
* **exactly-once solving** - the grid has one distinct design, so the
  cluster-wide solve count must be exactly 1 in every arm, however many
  workers race the cold cache;
* **crash safety** - a SIGKILL'd worker mid-run loses zero cells and
  the surviving row set is identical to serial ``run_sweep`` modulo
  wall-clock fields.

The >= 3x speedup floor applies only on hosts with >= 4 CPUs (the
worker fan-out is process-level parallelism; on a single-core box all
four workers time-share one core and the honest measurement is recorded
instead of asserted).  Results land in ``BENCH_sweep_distributed.json``
at the repo root.  Set ``REPRO_BENCH_SMOKE=1`` for a tiny CI-friendly
grid (no JSON record, no floors; the kill still happens).
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

from benchmarks.conftest import print_table
from repro.api import Scenario
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.distributed import (
    SweepCoordinator,
    run_distributed_sweep,
    spawn_worker,
    strip_volatile,
    wait_for_workers,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
PROBABILITIES = (
    (0.0, 0.05) if SMOKE
    else tuple(round(0.005 * step, 3) for step in range(50))
)
SEEDS = tuple(range(1, 4)) if SMOKE else tuple(range(1, 2001))
WORKER_ARMS = (1, 2) if SMOKE else (1, 4)
KILL_SEEDS = tuple(range(1, 5)) if SMOKE else tuple(range(1, 41))
BATCH = 64
RESULT_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_sweep_distributed.json"
)


def _base(**overrides) -> Scenario:
    """A tiny two-file instance: cells are cheap, so the wire protocol,
    leasing, and store - not the simulator - dominate each cell."""
    payload = {
        "name": "dist-base",
        "files": [
            {"name": "pos", "blocks": 2, "latency": 2, "fault_budget": 1},
            {"name": "map", "blocks": 3, "latency": 6},
        ],
        "workload": {"requests": 6, "horizon": 50, "seed": 4},
    }
    payload.update(overrides)
    return Scenario.from_dict(payload)


def _grid() -> SweepSpec:
    """Fault knobs only => exactly one distinct design over the grid."""
    return SweepSpec.from_dict(
        {
            "name": "bench-dist-grid",
            "base": _base().to_dict(),
            "axes": [
                {"field": "faults.kind", "values": ["bernoulli"]},
                {"field": "faults.probability",
                 "values": list(PROBABILITIES)},
                {"field": "faults.seed", "values": list(SEEDS)},
            ],
        }
    )


def _kill_grid() -> SweepSpec:
    """A slower per-cell grid (traffic replay on top of the sim) so the
    SIGKILL reliably lands while cells are still in flight."""
    base = _base(
        name="dist-kill-base",
        traffic={
            "clients": 6, "duration": 120, "requests_per_client": 1,
            "seed": 5,
        },
    )
    return SweepSpec.from_dict(
        {
            "name": "bench-dist-kill",
            "base": base.to_dict(),
            "axes": [
                {"field": "faults.kind", "values": ["bernoulli"]},
                {"field": "faults.probability", "values": [0.0, 0.05, 0.1]},
                {"field": "faults.seed", "values": list(KILL_SEEDS)},
            ],
        }
    )


def _rows_by_key(rows):
    return {row["key"]: strip_volatile(row) for row in rows}


def test_distributed_throughput_and_record(tmp_path):
    """The acceptance measurement: 1 worker vs. 4 over one 10^5 grid."""
    spec = _grid()
    cells = spec.total_cells
    arms = {}
    for workers in WORKER_ARMS:
        begin = time.perf_counter()
        result = run_distributed_sweep(
            spec,
            workers=workers,
            store_path=tmp_path / f"w{workers}.runs.jsonl",
            cache_dir=tmp_path / f"w{workers}.cache",
            batch=BATCH,
            keep_rows=False,
        )
        elapsed = time.perf_counter() - begin
        assert result.executed == cells and not result.failures
        # Exactly-once solving: one distinct design, one solve
        # cluster-wide, even with every worker racing the cold cache.
        assert result.distinct_designs == 1
        assert result.solves == 1, (
            f"{workers} workers performed {result.solves} solves for "
            f"one distinct design"
        )
        arms[workers] = (result, elapsed)

    base_elapsed = arms[WORKER_ARMS[0]][1]
    wide_elapsed = arms[WORKER_ARMS[-1]][1]
    speedup = base_elapsed / wide_elapsed if wide_elapsed else float("inf")
    print_table(
        f"DIST: {cells}-cell fault grid, coordinator + N worker "
        f"processes ({os.cpu_count()} CPUs)",
        ["workers", "cells", "solves", "cross hits", "wall (s)",
         "cells/s", "speedup"],
        [
            [workers, cells, result.solves, result.cross_hits,
             f"{elapsed:.2f}", f"{cells / elapsed:.0f}",
             f"{base_elapsed / elapsed:.2f}x"]
            for workers, (result, elapsed) in arms.items()
        ],
    )

    if SMOKE:  # smoke asserts correctness only, never timing
        return
    cpus = os.cpu_count() or 1
    if cpus >= 4:  # the floor needs real cores to share across
        assert speedup >= 3.0, (
            f"expected >= 3x with {WORKER_ARMS[-1]} workers on "
            f"{cpus} CPUs, measured {speedup:.2f}x"
        )

    result, _ = arms[WORKER_ARMS[-1]]
    RESULT_PATH.write_text(
        json.dumps(
            {
                "bench": "sweep_distributed",
                "grid": {
                    "cells": cells,
                    "axes": ["faults.probability", "faults.seed"],
                    "distinct_designs": 1,
                },
                "python": platform.python_version(),
                "cpus": cpus,
                "arms": {
                    str(workers): {
                        "wall_seconds": round(elapsed, 3),
                        "cells_per_second": round(cells / elapsed, 1),
                        "solves": arm.solves,
                        "cross_hits": arm.cross_hits,
                    }
                    for workers, (arm, elapsed) in arms.items()
                },
                "speedup": round(speedup, 2),
                "speedup_floor_enforced": cpus >= 4,
                "marginal_probabilities": len(
                    result.marginals["faults.probability"]
                ),
            },
            indent=2,
        )
        + "\n"
    )


def test_sigkill_worker_loses_nothing(tmp_path):
    """Crash safety at bench scale: SIGKILL one of two workers mid-run;
    every cell completes and the rows match serial exactly."""
    spec = _kill_grid()
    serial = run_sweep(
        spec,
        store_path=tmp_path / "serial.runs.jsonl",
        cache_dir=tmp_path / "serial-cache",
    )
    coordinator = SweepCoordinator(
        spec,
        store_path=tmp_path / "dist.runs.jsonl",
        lease_seconds=1.0,
        batch=4,
    )
    cache = tmp_path / "dist-cache"
    children = [
        spawn_worker(coordinator.address, cache_dir=cache, name=f"w{i}")
        for i in range(2)
    ]
    state = {}

    def killer():
        while coordinator.completed_count < 3:
            time.sleep(0.005)
        children[0].kill()
        state["killed_at"] = coordinator.completed_count
        children.append(
            spawn_worker(coordinator.address, cache_dir=cache, name="spare")
        )

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    begin = time.perf_counter()
    result = coordinator.serve()
    elapsed = time.perf_counter() - begin
    thread.join(timeout=30.0)
    wait_for_workers(children)

    assert state["killed_at"] < spec.total_cells
    assert result.executed == spec.total_cells
    assert not result.failures
    assert result.solves == result.distinct_designs == 1
    serial_rows = _rows_by_key(serial.rows)
    dist_rows = _rows_by_key(result.rows)
    assert set(serial_rows) == set(dist_rows)
    for key, row in serial_rows.items():
        assert dist_rows[key] == row, f"row mismatch at {key}"

    print_table(
        f"DIST: SIGKILL one of 2 workers on a "
        f"{spec.total_cells}-cell grid",
        ["cells", "killed at", "requeued", "lease expiries",
         "lost rows", "identical to serial", "wall (s)"],
        [
            [spec.total_cells, state["killed_at"], result.requeued,
             result.lease_expiries, 0, "yes", f"{elapsed:.2f}"],
        ],
    )

    if SMOKE or not RESULT_PATH.exists():
        return
    record = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
    record["kill_run"] = {
        "cells": spec.total_cells,
        "killed_at": state["killed_at"],
        "requeued": result.requeued,
        "lease_expiries": result.lease_expiries,
        "lost_rows": 0,
        "identical_to_serial": True,
        "solves": result.solves,
        "wall_seconds": round(elapsed, 3),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
