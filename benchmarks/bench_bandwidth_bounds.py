"""Experiments EQ1 + EQ2: the bandwidth bounds of Section 3.2.

Equation 1: ``B = ceil(10/7 * sum m_i/T_i)`` suffices for real-time
broadcast disks; Equation 2 adds per-file fault budgets.  The paper's
claim is "at most 43% extra bandwidth".  The bench sweeps random file
sets and reports:

* the necessary bound ``sum (m_i + r_i)/T_i``,
* the Equation bound and its overhead over necessary,
* the *empirical* minimum bandwidth the portfolio scheduler actually
  needs (searching up from the necessary bound), showing how much of the
  43% is slack in practice.
"""

import random
from fractions import Fraction

from benchmarks.conftest import print_table
from repro.bdisk.bandwidth import minimal_feasible_bandwidth, plan_bandwidth
from repro.core.bounds import CHAN_CHIN_DENSITY
from repro.sim.workload import random_file_set


def _sweep(seed: int, count: int, max_fault_budget: int):
    rng = random.Random(seed)
    results = []
    for _ in range(count):
        files = random_file_set(
            rng,
            rng.randint(2, 10),
            max_blocks=8,
            max_latency=40,
            max_fault_budget=max_fault_budget,
        )
        plan = plan_bandwidth(files)
        minimal = minimal_feasible_bandwidth(files)
        results.append((files, plan, minimal))
    return results


def test_eq1_overhead_sweep(benchmark):
    results = benchmark(_sweep, 42, 12, 0)
    rows = []
    worst_overhead = Fraction(0)
    for index, (files, plan, minimal) in enumerate(results):
        overhead = plan.overhead
        worst_overhead = max(worst_overhead, overhead)
        rows.append(
            [
                index,
                len(files),
                f"{float(plan.necessary):.2f}",
                plan.eq_bound,
                minimal,
                f"{float(overhead) * 100:.1f}%",
                f"{float(plan.density):.3f}",
            ]
        )
    print_table(
        "EQ1: bandwidth bounds on random file sets (no faults)",
        ["set", "files", "necessary", "eq1 B", "empirical min B",
         "eq1 overhead", "density@eq1"],
        rows,
    )
    # Paper claim: at most 43% + (one block of ceiling slack).
    for files, plan, minimal in results:
        assert plan.overhead <= Fraction(3, 7) + 1 / plan.necessary
        assert minimal <= plan.eq_bound
        assert plan.density <= CHAN_CHIN_DENSITY


def test_eq2_fault_tolerant_sweep(benchmark):
    results = benchmark(_sweep, 43, 12, 3)
    rows = []
    for index, (files, plan, minimal) in enumerate(results):
        total_r = sum(f.fault_budget for f in files)
        rows.append(
            [
                index,
                len(files),
                total_r,
                f"{float(plan.necessary):.2f}",
                plan.eq_bound,
                minimal,
                f"{float(plan.overhead) * 100:.1f}%",
            ]
        )
    print_table(
        "EQ2: fault-tolerant bandwidth bounds (r_i in 0..3)",
        ["set", "files", "sum r_i", "necessary", "eq2 B",
         "empirical min B", "eq2 overhead"],
        rows,
    )
    for files, plan, minimal in results:
        assert plan.overhead <= Fraction(3, 7) + 1 / plan.necessary
        window_ok = all(
            plan.program.min_distinct_in_window(
                f.name, plan.bandwidth * f.latency
            )
            >= f.blocks + f.fault_budget
            for f in files
        )
        assert window_ok


def test_empirical_gap_to_necessary(benchmark):
    """How tight can the portfolio get?  Reports the distribution of
    (empirical minimum / necessary) across 20 file sets."""

    def gaps():
        rng = random.Random(44)
        ratios = []
        for _ in range(20):
            files = random_file_set(rng, rng.randint(2, 8))
            plan = plan_bandwidth(files)
            minimal = minimal_feasible_bandwidth(files)
            ratios.append(float(Fraction(minimal) / plan.necessary))
        return sorted(ratios)

    ratios = benchmark(gaps)
    print_table(
        "EQ1: empirical-min / necessary-bound ratio (20 sets)",
        ["min", "median", "p90", "max", "eq1 factor"],
        [
            [
                f"{ratios[0]:.3f}",
                f"{ratios[len(ratios) // 2]:.3f}",
                f"{ratios[int(len(ratios) * 0.9)]:.3f}",
                f"{ratios[-1]:.3f}",
                f"{10 / 7:.3f}",
            ]
        ],
    )
    assert ratios[-1] <= 10 / 7 + 1.0  # sanity: never far past eq1
