"""Experiment SIM-THROUGHPUT: occurrence-indexed core vs slot walking.

The simulation stack was restructured around :class:`repro.bdisk.ProgramIndex`:
clients jump occurrence-to-occurrence instead of scanning every slot,
fault decisions are batched, and ``simulate_requests`` amortizes
fault-free retrievals per phase of the periodic program.  This bench
quantifies the speedup on the multidisk baseline workload (the same
catalogue, demand profile, and Zipf stream as
``bench_multidisk_baseline.py``, scaled to heavy traffic) against the
seed slot-walking implementations preserved in
:mod:`repro.sim.reference` - after first asserting, request by request,
that both paths produce bit-identical retrievals.

Results are recorded in ``BENCH_sim_throughput.json`` at the repo root
so the speedup is tracked in the bench trajectory.  Set
``REPRO_BENCH_SMOKE=1`` for a tiny CI-friendly configuration (no JSON
record, no speedup floor - machines vary; correctness is still
asserted).
"""

from __future__ import annotations

import json
import os
import platform
import random
import time
from pathlib import Path

from benchmarks.conftest import print_table
from repro.bdisk.file import FileSpec
from repro.bdisk.multidisk import build_multidisk_program, config_from_demand
from repro.sim import reference
from repro.sim.client import retrieve
from repro.sim.faults import BernoulliFaults
from repro.sim.runner import simulate_requests
from repro.sim.workload import request_stream

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REQUESTS = 400 if SMOKE else 10_000
HORIZON = 600
SEED = 77
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_sim_throughput.json"

FILES = [
    FileSpec("hot", 2, 8),
    FileSpec("warm-1", 3, 16),
    FileSpec("warm-2", 3, 20),
    FileSpec("cold-1", 5, 40),
    FileSpec("cold-2", 6, 60),
]
DEMAND = {"hot": 20.0, "warm-1": 5.0, "warm-2": 4.0,
          "cold-1": 1.0, "cold-2": 0.5}
SIZES = {f.name: f.blocks for f in FILES}


def _world():
    program = build_multidisk_program(
        config_from_demand(
            [(f.name, f.blocks) for f in FILES], DEMAND, levels=(4, 2, 1)
        )
    )
    requests = request_stream(
        random.Random(SEED), FILES,
        count=REQUESTS, horizon=HORIZON, zipf_skew=1.2,
    )
    return program, requests


def _throughput(elapsed: float, retrievals) -> tuple[float, float]:
    """(requests/sec, simulated slots/sec) for one timed replay."""
    slots = sum(r.latency for r in retrievals if r.latency is not None)
    return len(retrievals) / elapsed, slots / elapsed


def _timed_naive(program, requests, faults_factory):
    faults = faults_factory()
    begin = time.perf_counter()
    out = [
        reference.retrieve(
            program, r.file, SIZES[r.file],
            start=r.time, need_distinct=False, faults=faults,
        )
        for r in requests
    ]
    return time.perf_counter() - begin, out


def test_retrieve_throughput():
    """Single-client path: occurrence walking vs slot walking."""
    program, requests = _world()
    program.index  # build outside the timed regions
    rows = []
    speedups = {}
    for label, faults_factory in [
        ("none", lambda: None),
        ("bernoulli p=0.05", lambda: BernoulliFaults(0.05, seed=3)),
    ]:
        naive_time, naive_out = _timed_naive(
            program, requests, faults_factory
        )
        faults = faults_factory()
        begin = time.perf_counter()
        indexed_out = [
            retrieve(
                program, r.file, SIZES[r.file],
                start=r.time, need_distinct=False, faults=faults,
            )
            for r in requests
        ]
        indexed_time = time.perf_counter() - begin
        assert indexed_out == naive_out  # bit-identical retrievals
        naive_rps, naive_sps = _throughput(naive_time, naive_out)
        indexed_rps, indexed_sps = _throughput(indexed_time, indexed_out)
        speedups[label] = naive_time / indexed_time
        rows.append([
            label,
            f"{naive_rps:,.0f}", f"{indexed_rps:,.0f}",
            f"{naive_sps:,.0f}", f"{indexed_sps:,.0f}",
            f"{naive_time / indexed_time:.1f}x",
        ])
    print_table(
        f"SIM-THROUGHPUT: retrieve(), {REQUESTS} requests "
        f"(multidisk baseline workload)",
        ["faults", "naive req/s", "indexed req/s",
         "naive slots/s", "indexed slots/s", "speedup"],
        rows,
    )
    if not SMOKE:  # smoke asserts correctness only, never timing
        assert all(s > 1.0 for s in speedups.values())


def test_runner_throughput_and_record():
    """Request-serving path: simulate_requests vs the seed loop.

    This is the acceptance measurement: >= 10x request throughput on
    the multidisk baseline workload (full configuration only - the
    smoke configuration asserts correctness, not speed).
    """
    program, requests = _world()
    program.index
    naive_time, naive_out = _timed_naive(program, requests, lambda: None)

    begin = time.perf_counter()
    result = simulate_requests(
        program, requests, file_sizes=SIZES, need_distinct=False
    )
    indexed_time = time.perf_counter() - begin
    assert list(result.retrievals) == naive_out  # bit-identical

    naive_rps, naive_sps = _throughput(naive_time, naive_out)
    indexed_rps, indexed_sps = _throughput(indexed_time, result.retrievals)
    speedup = naive_time / indexed_time
    print_table(
        f"SIM-THROUGHPUT: simulate_requests, {REQUESTS} requests "
        f"(multidisk baseline workload)",
        ["path", "req/s", "slots/s", "speedup"],
        [
            ["seed slot-walking loop", f"{naive_rps:,.0f}",
             f"{naive_sps:,.0f}", "1.0x"],
            ["occurrence-indexed runner", f"{indexed_rps:,.0f}",
             f"{indexed_sps:,.0f}", f"{speedup:.1f}x"],
        ],
    )
    if SMOKE:  # correctness was asserted above; no timing floor
        return
    assert speedup >= 10.0, (
        f"expected >= 10x request throughput, measured {speedup:.1f}x"
    )
    RESULT_PATH.write_text(
        json.dumps(
            {
                "bench": "sim_throughput",
                "workload": {
                    "program": "multidisk baseline (levels 4/2/1)",
                    "requests": REQUESTS,
                    "horizon": HORIZON,
                    "zipf_skew": 1.2,
                    "seed": SEED,
                    "faults": "none",
                },
                "python": platform.python_version(),
                "naive": {
                    "requests_per_sec": round(naive_rps),
                    "slots_per_sec": round(naive_sps),
                },
                "indexed": {
                    "requests_per_sec": round(indexed_rps),
                    "slots_per_sec": round(indexed_sps),
                },
                "speedup": round(speedup, 1),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
