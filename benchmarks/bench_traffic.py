"""Experiment TRAFFIC: sustained open-loop load on the multidisk baseline.

The traffic subsystem (:mod:`repro.traffic`) simulates populations of
client sessions - arrival processes, think times, streaming metrics -
advancing service-to-service over the occurrence index.  This bench
measures the *sustained simulated request rate* and tail latency on the
multidisk baseline catalogue (the same hierarchy as
``bench_multidisk_baseline.py``) under three channels:

* the failure-free channel (amortized: one real retrieval per
  ``(file, phase)`` of the periodic program),
* Bernoulli losses (every retrieval computed for real, batched fault
  queries),
* Gilbert burst losses (fault storms stretching the tail).

Both engines run every channel: the per-client object engine
(``engine="object"``) and the vectorized structure-of-arrays engine
(``engine="soa"``, :mod:`repro.traffic.engine_soa`).  Their metrics
must agree exactly - the engines differ only in speed.  Acceptance
floors (full configuration only; smoke asserts correctness, not speed):

* object engine, failure-free: >= 10k sustained simulated requests/sec
  (the historical floor);
* SoA engine, failure-free: >= 1,475,950 req/s - ten times the 147,595
  req/s the object engine recorded on this workload.

Results land in ``BENCH_traffic.json`` at the repo root: per-channel
throughput for both engines, and a load sweep over population sizes up
to one million clients with a peak-RSS column (the SoA engine's
block-bounded memory is the point of the million-client row).  Set
``REPRO_BENCH_SMOKE=1`` for a CI-friendly configuration: tiny
populations for the channel grid, plus a 100k-client SoA run under a
wall-clock budget (no JSON record, no throughput floors).
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.bdisk.multidisk import build_multidisk_program, config_from_demand
from repro.sim.metrics import LatencySummary
from repro.traffic import TrafficSpec, simulate_traffic

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CLIENTS = 200 if SMOKE else 10_000
REQUESTS_PER_CLIENT = 2 if SMOKE else 10
DURATION = 5_000 if SMOKE else 200_000
SEED = 1997
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_traffic.json"

#: The object engine's recorded failure-free rate on this workload; the
#: SoA floor is ten times it.
OBJECT_BASELINE_RPS = 147_595
SOA_FLOOR_RPS = 10 * OBJECT_BASELINE_RPS

#: Wall-clock budget for the smoke-mode 100k-client SoA run (seconds) -
#: generous for CI machines; the engine finishes it in low single digits.
SMOKE_BUDGET_SECONDS = 60.0

FILES = [
    ("hot", 2), ("warm-1", 3), ("warm-2", 3), ("cold-1", 5), ("cold-2", 6),
]
DEMAND = {"hot": 20.0, "warm-1": 5.0, "warm-2": 4.0,
          "cold-1": 1.0, "cold-2": 0.5}
SIZES = dict(FILES)
#: Latency budgets in slots: generous enough that the failure-free
#: channel always meets them, tight enough that fault storms miss.
DEADLINES = {"hot": 30, "warm-1": 45, "warm-2": 45,
             "cold-1": 75, "cold-2": 90}
LEVELS = (4, 2, 1)

CHANNELS = [
    ("none", {"kind": "none"}),
    ("bernoulli p=0.05", {"kind": "bernoulli", "probability": 0.05,
                          "seed": 3}),
    ("burst 0.02/0.25", {"kind": "burst", "p_enter": 0.02,
                         "p_exit": 0.25, "seed": 3}),
]

ENGINES = ("object", "soa")


def _world():
    config = config_from_demand(FILES, DEMAND, levels=LEVELS)
    program = build_multidisk_program(config)
    disk_of = {
        name: f"disk-{level}"
        for level, (_, disk_files) in enumerate(config.disks)
        for name, _ in disk_files
    }
    return program, disk_of


def _spec(clients=CLIENTS, requests=REQUESTS_PER_CLIENT):
    return TrafficSpec(
        clients=clients,
        duration=DURATION,
        arrival="poisson",
        popularity="zipf",
        zipf_skew=1.2,
        requests_per_client=requests,
        think_time=10,
        seed=SEED,
    )


def _faults(payload):
    from repro.api.scenario import FaultSpec

    return FaultSpec.from_dict(payload)


def _peak_rss_mb() -> float:
    """The process's high-water RSS in MiB (ru_maxrss is KiB on Linux,
    bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return round(peak / 1024, 1)


def _row(label, engine, result):
    summary = result.summary
    return [
        label, engine,
        f"{result.requests:,}",
        f"{result.requests_per_sec:,.0f}",
        f"{summary.p50:.0f}", f"{summary.p99:.0f}",
        f"{result.miss_rate:.4f}", f"{result.abort_rate:.4f}",
    ]


def test_sustained_traffic_and_record():
    """The acceptance measurement: both engines agree exactly on every
    channel, the object engine sustains >= 10k req/s failure-free, and
    the vectorized engine sustains >= 10x the recorded object rate."""
    program, disk_of = _world()
    program.index  # shared occurrence tables, built outside the timing
    rows = []
    records = {}
    throughput = {}
    for label, payload in CHANNELS:
        fingerprints = {}
        for engine in ENGINES:
            result = simulate_traffic(
                program,
                [name for name, _ in FILES],
                _spec(),
                file_sizes=SIZES,
                deadlines=DEADLINES,
                faults=_faults(payload),
                engine=engine,
            )
            assert result.requests == CLIENTS * REQUESTS_PER_CLIENT
            summary = result.summary
            # The streaming P2 estimates must track the exact histogram
            # quantiles the summary reports.
            shards = [result.metrics.summary()]
            assert LatencySummary.merge(shards) == summary
            fingerprints[engine] = (
                summary,
                result.metrics.counts,
                dict(result.metrics.requests_by_file),
            )
            rows.append(_row(label, engine, result))
            throughput[label, engine] = result.requests_per_sec
            records.setdefault(label, {
                "requests": result.requests,
                "p50": summary.p50,
                "p99": summary.p99,
                "mean": round(summary.mean, 2),
                "worst": summary.worst,
                "deadline_miss_rate": round(result.miss_rate, 4),
                "abort_rate": round(result.abort_rate, 4),
                "hits_by_disk": result.metrics.hits_by(disk_of),
            })
            records[label][f"requests_per_sec_{engine}"] = round(
                result.requests_per_sec
            )
        # The engines are interchangeable: same histogram, same tallies.
        assert fingerprints["soa"] == fingerprints["object"]
        records[label]["speedup"] = round(
            throughput[label, "soa"] / throughput[label, "object"], 1
        )
    print_table(
        f"TRAFFIC: {CLIENTS:,} clients x {REQUESTS_PER_CLIENT} requests "
        f"(multidisk baseline, poisson arrivals, zipf 1.2)",
        ["channel", "engine", "requests", "req/s", "p50", "p99",
         "miss rate", "abort rate"],
        rows,
    )
    if SMOKE:  # smoke asserts correctness only, never timing
        return
    floor = throughput["none", "object"]
    assert floor >= 10_000, (
        f"expected >= 10k sustained req/s on the failure-free baseline, "
        f"measured {floor:,.0f}"
    )
    soa_rate = throughput["none", "soa"]
    assert soa_rate >= SOA_FLOOR_RPS, (
        f"expected the SoA engine to sustain >= {SOA_FLOOR_RPS:,} req/s "
        f"failure-free (10x the recorded object-engine rate), measured "
        f"{soa_rate:,.0f}"
    )

    sweep = []
    sweep_channel = {"kind": "bernoulli", "probability": 0.05, "seed": 3}
    for clients, requests, engine, payload in [
        (1_000, 4, "object", sweep_channel),
        (1_000, 4, "soa", sweep_channel),
        (10_000, 4, "object", sweep_channel),
        (10_000, 4, "soa", sweep_channel),
        (50_000, 4, "soa", sweep_channel),
        (1_000_000, 1, "soa", {"kind": "none"}),
    ]:
        result = simulate_traffic(
            program,
            [name for name, _ in FILES],
            _spec(clients=clients, requests=requests),
            file_sizes=SIZES,
            deadlines=DEADLINES,
            faults=_faults(payload),
            engine=engine,
        )
        sweep.append(
            {
                "clients": clients,
                "engine": engine,
                "channel": payload["kind"],
                "requests": result.requests,
                "requests_per_sec": round(result.requests_per_sec),
                "p99": result.summary.p99,
                "deadline_miss_rate": round(result.miss_rate, 4),
                "peak_rss_mb": _peak_rss_mb(),
            }
        )
    print_table(
        "TRAFFIC: load sweep (bernoulli p=0.05 except the "
        "million-client failure-free row)",
        ["clients", "engine", "channel", "requests", "req/s", "p99",
         "miss rate", "peak RSS MiB"],
        [
            [f"{entry['clients']:,}", entry["engine"], entry["channel"],
             f"{entry['requests']:,}",
             f"{entry['requests_per_sec']:,}", f"{entry['p99']:.0f}",
             f"{entry['deadline_miss_rate']:.4f}",
             f"{entry['peak_rss_mb']:,.1f}"]
            for entry in sweep
        ],
    )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "bench": "traffic",
                "workload": {
                    "program": "multidisk baseline (levels 4/2/1)",
                    "clients": CLIENTS,
                    "requests_per_client": REQUESTS_PER_CLIENT,
                    "duration": DURATION,
                    "arrival": "poisson",
                    "popularity": "zipf(1.2)",
                    "think_time": 10,
                    "seed": SEED,
                },
                "python": platform.python_version(),
                "soa_floor_requests_per_sec": SOA_FLOOR_RPS,
                "channels": records,
                "load_sweep": sweep,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )


def test_popularity_cdf_setup_is_catalogue_sized():
    """Micro-assert for the memoized popularity CDFs: population setup
    computes each distinct (kind, catalogue-size, shape) CDF exactly
    once, however many clients draw from it - setup is O(catalogue),
    not O(clients)."""
    from repro.traffic.arrivals import _popularity_cdf

    program, _ = _world()
    catalogue = [name for name, _ in FILES]
    _popularity_cdf.cache_clear()
    for clients in (50, 500):
        simulate_traffic(
            program,
            catalogue,
            _spec(clients=clients, requests=1),
            file_sizes=SIZES,
            deadlines=DEADLINES,
            engine="soa",
        )
    info = _popularity_cdf.cache_info()
    assert info.misses == 1, (
        f"expected one CDF construction for one (kind, size, shape), "
        f"saw {info.misses}"
    )
    assert info.hits >= 1  # the second population reused the first's CDF


@pytest.mark.skipif(
    not SMOKE, reason="the full bench's load sweep covers this scale"
)
def test_soa_smoke_100k_clients_under_budget():
    """CI smoke: 100k clients through the SoA engine inside a hard
    wall-clock budget, with the metrics invariants intact."""
    program, _ = _world()
    spec = _spec(clients=100_000, requests=1)
    begin = time.perf_counter()
    result = simulate_traffic(
        program,
        [name for name, _ in FILES],
        spec,
        file_sizes=SIZES,
        deadlines=DEADLINES,
        engine="soa",
    )
    elapsed = time.perf_counter() - begin
    assert result.requests == 100_000
    assert result.completions + result.aborts == result.requests
    assert elapsed < SMOKE_BUDGET_SECONDS, (
        f"100k-client SoA smoke took {elapsed:.1f}s "
        f"(budget {SMOKE_BUDGET_SECONDS:.0f}s)"
    )
