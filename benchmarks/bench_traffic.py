"""Experiment TRAFFIC: sustained open-loop load on the multidisk baseline.

The traffic subsystem (:mod:`repro.traffic`) simulates populations of
client sessions - arrival processes, think times, streaming metrics -
advancing service-to-service over the occurrence index.  This bench
measures the *sustained simulated request rate* and tail latency on the
multidisk baseline catalogue (the same hierarchy as
``bench_multidisk_baseline.py``) under three channels:

* the failure-free channel (amortized: one real retrieval per
  ``(file, phase)`` of the periodic program),
* Bernoulli losses (every retrieval computed for real, batched fault
  queries),
* Gilbert burst losses (fault storms stretching the tail).

The acceptance floor is >= 10k sustained simulated requests/sec on the
failure-free baseline (full configuration only; the smoke configuration
asserts correctness, not speed).  Results - throughput, streaming
p50/p99, deadline-miss and abort rates, per-disk hit counts - are
recorded in ``BENCH_traffic.json`` at the repo root.  A load sweep over
population sizes shows the throughput holding as the population scales
(the point of open-loop evaluation: the server's program does not
degrade, only client latency tails do).  Set ``REPRO_BENCH_SMOKE=1``
for a tiny CI-friendly configuration (no JSON record, no floor).
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

from benchmarks.conftest import print_table
from repro.bdisk.multidisk import build_multidisk_program, config_from_demand
from repro.sim.metrics import LatencySummary
from repro.traffic import TrafficSpec, simulate_traffic

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CLIENTS = 200 if SMOKE else 10_000
REQUESTS_PER_CLIENT = 2 if SMOKE else 10
DURATION = 5_000 if SMOKE else 200_000
SEED = 1997
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_traffic.json"

FILES = [
    ("hot", 2), ("warm-1", 3), ("warm-2", 3), ("cold-1", 5), ("cold-2", 6),
]
DEMAND = {"hot": 20.0, "warm-1": 5.0, "warm-2": 4.0,
          "cold-1": 1.0, "cold-2": 0.5}
SIZES = dict(FILES)
#: Latency budgets in slots: generous enough that the failure-free
#: channel always meets them, tight enough that fault storms miss.
DEADLINES = {"hot": 30, "warm-1": 45, "warm-2": 45,
             "cold-1": 75, "cold-2": 90}
LEVELS = (4, 2, 1)

CHANNELS = [
    ("none", {"kind": "none"}),
    ("bernoulli p=0.05", {"kind": "bernoulli", "probability": 0.05,
                          "seed": 3}),
    ("burst 0.02/0.25", {"kind": "burst", "p_enter": 0.02,
                         "p_exit": 0.25, "seed": 3}),
]


def _world():
    config = config_from_demand(FILES, DEMAND, levels=LEVELS)
    program = build_multidisk_program(config)
    disk_of = {
        name: f"disk-{level}"
        for level, (_, disk_files) in enumerate(config.disks)
        for name, _ in disk_files
    }
    return program, disk_of


def _spec(clients=CLIENTS, requests=REQUESTS_PER_CLIENT):
    return TrafficSpec(
        clients=clients,
        duration=DURATION,
        arrival="poisson",
        popularity="zipf",
        zipf_skew=1.2,
        requests_per_client=requests,
        think_time=10,
        seed=SEED,
    )


def _faults(payload):
    from repro.api.scenario import FaultSpec

    return FaultSpec.from_dict(payload)


def _row(label, result):
    summary = result.summary
    return [
        label,
        f"{result.requests:,}",
        f"{result.requests_per_sec:,.0f}",
        f"{summary.p50:.0f}", f"{summary.p99:.0f}",
        f"{result.miss_rate:.4f}", f"{result.abort_rate:.4f}",
    ]


def test_sustained_traffic_and_record():
    """The acceptance measurement: >= 10k sustained simulated req/s on
    the failure-free multidisk baseline, with streaming p50/p99 and
    miss rates recorded per channel."""
    program, disk_of = _world()
    program.index  # shared occurrence tables, built outside the timing
    rows = []
    records = {}
    throughput = {}
    for label, payload in CHANNELS:
        result = simulate_traffic(
            program,
            [name for name, _ in FILES],
            _spec(),
            file_sizes=SIZES,
            deadlines=DEADLINES,
            faults=_faults(payload),
        )
        assert result.requests == CLIENTS * REQUESTS_PER_CLIENT
        summary = result.summary
        # The streaming P2 estimates must track the exact histogram
        # quantiles the summary reports.
        shards = [result.metrics.summary()]
        assert LatencySummary.merge(shards) == summary
        rows.append(_row(label, result))
        throughput[label] = result.requests_per_sec
        records[label] = {
            "requests": result.requests,
            "requests_per_sec": round(result.requests_per_sec),
            "p50": summary.p50,
            "p99": summary.p99,
            "mean": round(summary.mean, 2),
            "worst": summary.worst,
            "deadline_miss_rate": round(result.miss_rate, 4),
            "abort_rate": round(result.abort_rate, 4),
            "hits_by_disk": result.metrics.hits_by(disk_of),
        }
    print_table(
        f"TRAFFIC: {CLIENTS:,} clients x {REQUESTS_PER_CLIENT} requests "
        f"(multidisk baseline, poisson arrivals, zipf 1.2)",
        ["channel", "requests", "req/s", "p50", "p99",
         "miss rate", "abort rate"],
        rows,
    )
    if SMOKE:  # smoke asserts correctness only, never timing
        return
    floor = throughput["none"]
    assert floor >= 10_000, (
        f"expected >= 10k sustained req/s on the failure-free baseline, "
        f"measured {floor:,.0f}"
    )

    sweep = []
    for clients in (1_000, 10_000, 50_000):
        result = simulate_traffic(
            program,
            [name for name, _ in FILES],
            _spec(clients=clients, requests=4),
            file_sizes=SIZES,
            deadlines=DEADLINES,
            faults=_faults({"kind": "bernoulli", "probability": 0.05,
                            "seed": 3}),
        )
        sweep.append(
            {
                "clients": clients,
                "requests": result.requests,
                "requests_per_sec": round(result.requests_per_sec),
                "p99": result.summary.p99,
                "deadline_miss_rate": round(result.miss_rate, 4),
            }
        )
    print_table(
        "TRAFFIC: load sweep (bernoulli p=0.05, 4 requests/client)",
        ["clients", "requests", "req/s", "p99", "miss rate"],
        [
            [f"{entry['clients']:,}", f"{entry['requests']:,}",
             f"{entry['requests_per_sec']:,}", f"{entry['p99']:.0f}",
             f"{entry['deadline_miss_rate']:.4f}"]
            for entry in sweep
        ],
    )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "bench": "traffic",
                "workload": {
                    "program": "multidisk baseline (levels 4/2/1)",
                    "clients": CLIENTS,
                    "requests_per_client": REQUESTS_PER_CLIENT,
                    "duration": DURATION,
                    "arrival": "poisson",
                    "popularity": "zipf(1.2)",
                    "think_time": 10,
                    "seed": SEED,
                },
                "python": platform.python_version(),
                "channels": records,
                "load_sweep": sweep,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
