"""Experiments EX1 + EX2-EX6: the paper's worked examples.

EX1 (Section 3.1): the three pinwheel systems of Example 1 - two
schedulable (we time the solve) and the infeasible 5/6 + eps family
(we time the exact refutation).

EX2-EX6 (Section 4.2): density of the nice conjuncts produced by the
transformation strategies, against the paper's reported numbers:

    Example  lower bound  paper best   strategy
    2        0.0750       0.0769       TR1
    3        0.0636       0.0662       TR2
    4        0.5556       0.6000       TR2 + R1/R5 manipulation
    5        0.6667       0.6667       merge via R0/R1 (optimal)
    6        0.6667       0.6667       merge via R2

Our strategy reproduces every row - and *improves* Example 4 to 0.5556
(the lower bound) by noticing pc(5,9) rule-implies pc(4,8) via R2.
"""

from fractions import Fraction

from benchmarks.conftest import print_table
from repro.core.conditions import bc
from repro.core.exact import is_feasible_exact
from repro.core.solver import solve
from repro.core.task import PinwheelSystem
from repro.core.transforms import all_candidates, best_nice_conjunct

EXAMPLES = [
    ("Ex2", bc("i", 5, [100, 105, 110, 115, 120]), 0.0750, 0.0769),
    ("Ex3", bc("i", 6, [105, 110]), 0.0636, 0.0662),
    ("Ex4", bc("i", 4, [8, 9]), 0.5556, 0.6000),
    ("Ex5", bc("i", 2, [5, 6, 6]), 0.6667, 0.6667),
    ("Ex6", bc("i", 1, [2, 3]), 0.6667, 0.6667),
]


def test_example1_schedulable_systems(benchmark):
    def solve_both():
        return (
            solve(PinwheelSystem.from_pairs([(1, 2), (1, 3)])),
            solve(PinwheelSystem.from_pairs([(2, 5), (1, 3)])),
        )

    first, second = benchmark(solve_both)
    print_table(
        "EX1: Example 1 schedulable systems",
        ["system", "paper schedule", "our schedule", "method"],
        [
            ["{(1,1,2),(2,1,3)}", "1,2,1,2,...",
             str(first.schedule), first.method],
            ["{(1,2,5),(2,1,3)}", "1,2,1,*,2,...",
             str(second.schedule), second.method],
        ],
    )


def test_example1_infeasible_family(benchmark):
    def refute():
        results = {}
        for n in (6, 12, 24):
            system = PinwheelSystem.from_pairs([(1, 2), (1, 3), (1, n)])
            results[n] = is_feasible_exact(system)
        return results

    results = benchmark(refute)
    print_table(
        "EX1: Example 1 infeasible family {(1,2),(1,3),(1,n)}",
        ["n", "density", "feasible?"],
        [
            [n, f"{5 / 6 + 1 / n:.4f}", feasible]
            for n, feasible in results.items()
        ],
    )
    assert not any(results.values())


def test_examples_2_to_6_densities(benchmark):
    def run_all():
        return [
            (name, spec.density_lower_bound, best_nice_conjunct(spec))
            for name, spec, _, _ in EXAMPLES
        ]

    results = benchmark(run_all)
    rows = []
    for (name, lower, best), (_, _, paper_lb, paper_best) in zip(
        results, EXAMPLES
    ):
        rows.append(
            [
                name,
                f"{float(lower):.4f}",
                paper_lb,
                f"{float(best.density):.4f}",
                paper_best,
                best.strategy,
            ]
        )
    print_table(
        "EX2-EX6: nice-conjunct densities",
        ["example", "lower bound", "paper LB", "best density",
         "paper best", "strategy"],
        rows,
    )
    # Paper parity (or better) on every example; the paper reports
    # densities rounded to 4 decimals, hence the half-ulp tolerance.
    for (name, lower, best), (_, _, paper_lb, paper_best) in zip(
        results, EXAMPLES
    ):
        assert float(best.density) <= paper_best + 5e-4, name


def test_example4_candidate_breakdown(benchmark):
    """All four strategies on Example 4 - reproducing the paper's whole
    narrative (TR1 1.0, TR2 0.6111, manipulation 0.6) plus the improved
    merge at the 5/9 lower bound."""
    candidates = benchmark(all_candidates, bc("i", 4, [8, 9]))
    print_table(
        "EX4: strategy breakdown for bc(i, 4, [8, 9])",
        ["strategy", "density", "conjunct"],
        [
            [c.strategy, f"{float(c.density):.4f}", str(c.conjunct)]
            for c in candidates
        ],
    )
    by_strategy = {c.strategy: c.density for c in candidates}
    assert by_strategy["TR1"] == 1
    assert by_strategy["TR2"] == Fraction(4, 8) + Fraction(1, 9)
    assert by_strategy["TR2-reduced"] == Fraction(3, 5)
    assert by_strategy["merge"] == Fraction(5, 9)
