"""Experiment FIG7: worst-case delays versus transmission errors.

Regenerates the paper's Figure 7 table for the toy programs of Figures
5-6 via the exact adversarial game of :mod:`repro.sim.delay`, and prints
it next to the paper's reported column.

Reading the results (see EXPERIMENTS.md for the full discussion):

* the *without IDA* column matches the paper exactly (``8r`` - Lemma 1 is
  tight);
* the paper's *with IDA* column (0,3,4,6,7,8) is described in the text as
  "estimates"; the exact worst case for file A is (0,2,4,5,7,8) - same
  shape, within 1 everywhere;
* file B exceeds its AIDA fault capacity at r > 3 (it has only N - m = 3
  spare blocks), at which point the exact delay leaves the Lemma 2 line -
  the library's designers therefore always provision ``n = m + r``.
"""

from benchmarks.conftest import print_table
from repro.sim.delay import (
    lemma1_bound,
    lemma2_bound,
    worst_case_delay,
    worst_case_delay_table,
)

PAPER_WITH_IDA = [0, 3, 4, 6, 7, 8]
PAPER_WITHOUT_IDA = [0, 8, 16, 24, 32, 40]


def test_figure7_table(benchmark, figure5_program, figure6_program):
    rows = benchmark(
        worst_case_delay_table,
        figure6_program,
        figure5_program,
        {"A": 5, "B": 3},
        5,
    )
    table = []
    for row, paper_ida, paper_flat in zip(
        rows, PAPER_WITH_IDA, PAPER_WITHOUT_IDA
    ):
        table.append(
            [
                row.errors,
                row.with_ida,
                paper_ida,
                row.without_ida,
                paper_flat,
                row.lemma2_bound,
                row.lemma1_bound,
            ]
        )
    print_table(
        "FIG7: worst-case delay vs errors (worst over files A, B)",
        [
            "errors",
            "IDA (exact)",
            "IDA (paper)",
            "no-IDA (exact)",
            "no-IDA (paper)",
            "r*Delta",
            "r*Pi",
        ],
        table,
    )
    assert [r.without_ida for r in rows] == PAPER_WITHOUT_IDA
    for row in rows[1:]:
        assert row.with_ida < row.without_ida


def test_figure7_per_file_exact(benchmark, figure6_program):
    """Per-file exact delays - file A tracks the paper's estimates."""

    def per_file():
        return {
            file: [
                worst_case_delay(figure6_program, file, m, r)
                for r in range(6)
            ]
            for file, m in (("A", 5), ("B", 3))
        }

    delays = benchmark(per_file)
    print_table(
        "FIG7 (per file): exact adversarial delay, with IDA",
        ["errors"] + [str(r) for r in range(6)],
        [
            ["A (5-of-10)"] + delays["A"],
            ["A paper est."] + PAPER_WITH_IDA,
            ["B (3-of-6)"] + delays["B"],
            ["bound r*2 (A)"] + [lemma2_bound(2, r) for r in range(6)],
            ["bound r*3 (B)"] + [lemma2_bound(3, r) for r in range(6)],
        ],
    )
    assert delays["A"] == [0, 2, 4, 5, 7, 8]
    # Lemma 2 holds within each file's AIDA capacity (r <= N - m).
    for r in range(6):
        assert delays["A"][r] <= lemma2_bound(2, r)
    for r in range(4):
        assert delays["B"][r] <= lemma2_bound(3, r)


def test_figure7_speedup_headline(benchmark, figure5_program, figure6_program):
    """The paper's Pi/Delta claim: error-recovery speedup ~ period/gap."""

    def speedups():
        rows = worst_case_delay_table(
            figure6_program, figure5_program, {"A": 5, "B": 3}, 3
        )
        return [
            row.without_ida / row.with_ida for row in rows if row.errors
        ]

    ratios = benchmark(speedups)
    print_table(
        "FIG7: error-recovery speedup (no-IDA delay / IDA delay)",
        ["errors", "speedup", "Pi/Delta reference"],
        [
            [r + 1, f"{ratio:.2f}", f"{8 / 3:.2f} - {8 / 2:.2f}"]
            for r, ratio in enumerate(ratios)
        ],
    )
    assert all(ratio >= 8 / 3 for ratio in ratios)
