"""Ablation benches for the library's design choices.

Four ablations, each isolating one decision DESIGN.md calls out:

* **Uniform spreading** (Section 2.3: blocks "uniformly distributed
  throughout the broadcast period"): compare the Figure-6-style
  interleaved layout against a contiguous per-file layout with identical
  block content - the delay benefit of spreading is the whole point of
  the ``Delta`` analysis.
* **Base search in the reduction schedulers**: the textbook single-number
  reduction fixes ``x = min b_i``; ours searches all candidate bases.
  Measures how many instances the search rescues.
* **The merge strategy in the transformation toolbox**: the paper's
  Section 4.2 strategy chooses between TR1 and TR2(+manipulation); ours
  adds the single-condition merge.  Measures density improvements across
  random generalized files.
* **The registry's auto policy ordering**: the portfolio's
  cheap-heuristics-first routing versus ``exact-first`` and a
  greedy-only registry policy.  Measures how often the fallback chain
  is actually needed and what the exhaustive search would cost up
  front.
"""

import random
from fractions import Fraction

from benchmarks.conftest import print_table
from repro.bdisk.flat import build_aida_flat_program
from repro.bdisk.program import BroadcastProgram
from repro.core.conditions import bc
from repro.core.schedule import Schedule
from repro.core.single_reduction import (
    schedule_single_reduction,
    specialize_single,
)
from repro.core.solver import solve
from repro.core.transforms import all_candidates
from repro.errors import InfeasibleError, ReproError, SchedulingError
from repro.sim.delay import worst_case_delay
from repro.sim.workload import random_pinwheel_system


def _contiguous_aida_program(files) -> BroadcastProgram:
    """The ablated layout: each file's slots bunched together."""
    slots = []
    for name, m, _ in files:
        slots.extend([name] * m)
    return BroadcastProgram(
        Schedule(slots), {name: n for name, _, n in files}
    )


def test_ablation_uniform_spreading(benchmark):
    """Interleaved vs contiguous layout: worst-case delay at r = 1, 2."""
    files = [("A", 5, 10), ("B", 3, 6)]

    def compare():
        spread = build_aida_flat_program(files)
        bunched = _contiguous_aida_program(files)
        rows = []
        for name, m, _ in files:
            for errors in (1, 2):
                rows.append(
                    (
                        name,
                        errors,
                        worst_case_delay(spread, name, m, errors),
                        worst_case_delay(bunched, name, m, errors),
                    )
                )
        return rows

    rows = benchmark(compare)
    print_table(
        "ABL-SPREAD: worst-case delay, interleaved vs contiguous",
        ["file", "errors", "uniform spread", "contiguous"],
        [list(row) for row in rows],
    )
    # Spreading never loses and wins for the small file (B's blocks sit
    # behind A's in the contiguous layout).
    assert all(spread <= bunched for _, _, spread, bunched in rows)
    assert any(spread < bunched for _, _, spread, bunched in rows)


def test_ablation_base_search(benchmark):
    """Sa with searched base vs the textbook x = min b_i."""

    def sweep():
        rng = random.Random(31)
        searched_wins = fixed_wins = total = 0
        density_gain = Fraction(0)
        while total < 40:
            try:
                system = random_pinwheel_system(
                    rng, rng.randint(3, 7), 0.62, max_window=80
                )
            except ReproError:
                continue
            total += 1
            min_window = min(t.b for t in system.tasks)
            fixed_density = specialize_single(system, min_window).density
            try:
                schedule_single_reduction(system, base=min_window)
                fixed_wins += 1
            except SchedulingError:
                pass
            try:
                schedule_single_reduction(system)
                searched_wins += 1
            except SchedulingError:
                continue
            from repro.core.single_reduction import best_single_base

            _, best_density = best_single_base(system)
            density_gain += fixed_density - best_density
        return searched_wins, fixed_wins, total, density_gain / total

    searched, fixed, total, gain = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    print_table(
        "ABL-BASE: single-number reduction, base search vs x = min b "
        "(density 0.62 instances)",
        ["instances", "searched-base wins", "fixed-base wins",
         "mean specialized-density gain"],
        [[total, searched, fixed, f"{float(gain):.4f}"]],
    )
    assert searched >= fixed


def test_ablation_merge_strategy(benchmark):
    """Density of best-of-all-strategies vs best-of-paper-strategies."""

    def sweep():
        rng = random.Random(32)
        improved = 0
        total = 0
        gains = []
        while total < 60:
            m = rng.randint(1, 6)
            d0 = rng.randint(m, m * rng.randint(2, 6))
            vector = [d0]
            for _ in range(rng.randint(0, 3)):
                vector.append(
                    max(vector[-1], vector[-1] + rng.randint(0, 4))
                )
            if vector[-1] < m + len(vector) - 1:
                continue
            try:
                spec = bc("f", m, vector)
            except ReproError:
                continue
            total += 1
            candidates = {
                c.strategy: c.density for c in all_candidates(spec)
            }
            paper_best = min(
                density
                for strategy, density in candidates.items()
                if strategy != "merge"
            )
            full_best = min(candidates.values())
            if full_best < paper_best:
                improved += 1
                gains.append(float(paper_best - full_best))
        mean_gain = sum(gains) / len(gains) if gains else 0.0
        return total, improved, mean_gain

    total, improved, mean_gain = benchmark(sweep)
    print_table(
        "ABL-MERGE: adding the merge strategy to the paper's toolbox",
        ["random bc specs", "specs improved", "mean density gain"],
        [[total, improved, f"{mean_gain:.4f}"]],
    )
    assert improved > 0


def test_ablation_registry_policy(benchmark):
    """Auto routing vs exact-first vs a greedy-only registry policy."""

    def sweep():
        rng = random.Random(33)
        stats = {
            "auto": {"solved": 0, "methods": {}},
            "exact-first": {"solved": 0, "methods": {}},
            "greedy-only": {"solved": 0, "methods": {}},
        }
        total = 0
        while total < 25:
            try:
                system = random_pinwheel_system(
                    rng, rng.randint(4, 6), 0.72, max_window=24
                )
            except ReproError:
                continue
            total += 1
            for label, policy in (
                ("auto", "auto"),
                ("exact-first", "exact-first"),
                ("greedy-only", ("greedy",)),
            ):
                try:
                    report = solve(system, policy=policy)
                except (SchedulingError, InfeasibleError):
                    # Density 0.72 exceeds 7/10, so provably infeasible
                    # instances can occur; count them as unsolved.
                    continue
                entry = stats[label]
                entry["solved"] += 1
                entry["methods"][report.method] = (
                    entry["methods"].get(report.method, 0) + 1
                )
        return total, stats

    total, stats = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "ABL-POLICY: registry policies on density-0.72 instances",
        ["policy", "solved", "winning methods"],
        [
            [
                label,
                f"{entry['solved']}/{total}",
                ", ".join(
                    f"{m}x{c}" for m, c in sorted(entry["methods"].items())
                ),
            ]
            for label, entry in stats.items()
        ],
    )
    # auto and exact-first try the same scheduler set (in a different
    # order), so they must agree on solvability even if the density-0.72
    # sample contains infeasible or heuristic-resistant instances; the
    # single-scheduler policy shows why the portfolio keeps a fallback
    # chain.
    assert stats["auto"]["solved"] == stats["exact-first"]["solved"]
    assert stats["greedy-only"]["solved"] <= stats["auto"]["solved"]
