"""Experiment IDX: self-identifying blocks vs indexing on air.

Footnote 3 of the paper considers broadcasting a directory at the start
of each period instead of making blocks self-identifying, and rejects it
because it "does not lend itself to a clean fault-tolerant organization".
This bench makes the comparison quantitative on the Figure 6 catalogue:

* **tuning time** (receiver-on slots - the energy cost): the index lets
  clients doze, self-identifying blocks require continuous listening;
* **fault cost**: a lost block under the index forces a re-tune (a
  period-scale penalty), while AIDA pays one inter-block gap.

Both halves of the paper's judgement are visible: the index wins on
energy, self-identification wins on fault-tolerant latency.
"""

from benchmarks.conftest import print_table
from repro.bdisk.flat import build_aida_flat_program
from repro.bdisk.indexing import build_indexed_program, tuned_retrieve
from repro.sim.client import retrieve
from repro.sim.delay import worst_case_delay
from repro.sim.faults import AdversarialFaults


def _programs():
    """Figure 6's toy is too small for dozing to pay off (the index hunt
    costs more than it saves); a realistically sized catalogue shows the
    regime indexing was invented for."""
    base = build_aida_flat_program(
        [("A", 12, 24), ("B", 8, 16), ("C", 6, 12)]
    )
    return base, build_indexed_program(base, replication=4)


def _toy_programs():
    base = build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])
    return base, build_indexed_program(base, replication=2)


def test_tuning_time_comparison(benchmark):
    """Energy: mean receiver-on slots per retrieval, across phases."""

    def sweep():
        base, indexed = _programs()
        rows = []
        for file, m in (("A", 12), ("B", 8)):
            self_id_tuning = []
            indexed_tuning = []
            for phase in range(base.data_cycle_length):
                plain = retrieve(base, file, m, start=phase)
                self_id_tuning.append(plain.latency)
                tuned = tuned_retrieve(indexed, file, m, start=phase)
                indexed_tuning.append(tuned.tuning_time)
            rows.append(
                (
                    file,
                    sum(self_id_tuning) / len(self_id_tuning),
                    sum(indexed_tuning) / len(indexed_tuning),
                )
            )
        return rows

    rows = benchmark(sweep)
    print_table(
        "IDX: mean tuning time (receiver-on slots) per retrieval",
        ["file", "self-identifying", "indexed (doze)"],
        [
            [file, f"{self_id:.1f}", f"{indexed:.1f}"]
            for file, self_id, indexed in rows
        ],
    )
    # The index's promise: less listening.
    for _, self_id, indexed in rows:
        assert indexed < self_id


def test_fault_cost_comparison(benchmark):
    """Fault tolerance: added latency from one adversarial block loss."""

    def sweep():
        base, indexed = _toy_programs()
        ida_delay = worst_case_delay(base, "B", 3, 1)
        # Indexed client: worst added latency over phases and single
        # losses of B's slots.
        clean = {
            phase: tuned_retrieve(indexed, "B", 3, start=phase).latency
            for phase in range(indexed.period)
        }
        slots = [
            t
            for t in range(indexed.period)
            if (e := indexed.slot(t)) not in (None, "__index__")
            and e[0] == "B"
        ]
        worst = 0
        for phase in range(indexed.period):
            for lost in slots:
                result = tuned_retrieve(
                    indexed,
                    "B",
                    3,
                    start=phase,
                    faults=AdversarialFaults([lost]),
                )
                if result.completed:
                    worst = max(worst, result.latency - clean[phase])
        return ida_delay, worst

    ida_delay, indexed_delay = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    print_table(
        "IDX: worst added latency from ONE lost block of B",
        ["organization", "added latency (slots)"],
        [
            ["self-identifying AIDA (Lemma 2)", ida_delay],
            ["indexed + re-tune", indexed_delay],
        ],
    )
    # The paper's objection: the index's fault penalty is period-scale.
    assert indexed_delay > ida_delay
