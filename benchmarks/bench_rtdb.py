"""Experiment RTDB: versioned retrieval throughput and transaction load.

The rtdb layer's versioned retrieval (:mod:`repro.rtdb.updates`) was
rewritten from a slot-by-slot scan into an occurrence walker over the
program index with batched fault queries - the same treatment the plain
retrieval client received in the simulation-core rewrite.  This bench
measures that rewrite two ways on a multidisk hierarchy:

* **before/after retrieval throughput** - the slot-walking executable
  spec (:mod:`repro.rtdb.reference`) against the production walker over
  identical phases, on the failure-free channel and under Bernoulli
  losses.  The acceptance floor is a >= 5x fault-free speedup (full
  configuration only; the smoke configuration asserts bit-identical
  outcomes, not speed).
* **transaction-mix load sweep** - populations of transaction sessions
  (:func:`repro.traffic.simulate_traffic` with a
  :class:`repro.rtdb.TemporalSpec`) at increasing client counts, and a
  sweep over update periods showing the feasibility frontier: faster
  re-dissemination keeps values fresh until the period undercuts the
  retrieval window, where torn reads abort everything.

Results land in ``BENCH_rtdb.json`` at the repo root.  Set
``REPRO_BENCH_SMOKE=1`` for a tiny CI-friendly configuration (no JSON
record, no floors).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from benchmarks.conftest import print_table
from repro.bdisk.multidisk import build_multidisk_program, config_from_demand
from repro.rtdb import (
    TemporalItemSpec,
    TemporalSpec,
    TransactionSpec,
    UpdatingServer,
    retrieve_versioned,
)
from repro.rtdb import reference
from repro.sim.faults import BernoulliFaults
from repro.traffic import TrafficSpec, simulate_traffic

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SEED = 1997
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_rtdb.json"

#: A three-level hierarchy of ten files - wide enough that any one
#: file's services are a small fraction of the air time, which is the
#: regime broadcast disks live in (and the regime where slot-walking
#: pays for every other file's slots).
FILES = [
    ("hot-1", 2), ("hot-2", 2),
    ("warm-1", 3), ("warm-2", 3), ("warm-3", 4),
    ("cold-1", 4), ("cold-2", 5), ("cold-3", 5), ("cold-4", 6),
    ("cold-5", 6),
]
DEMAND = {
    "hot-1": 24.0, "hot-2": 18.0,
    "warm-1": 6.0, "warm-2": 5.0, "warm-3": 4.0,
    "cold-1": 1.5, "cold-2": 1.0, "cold-3": 0.8, "cold-4": 0.5,
    "cold-5": 0.4,
}
SIZES = dict(FILES)
LEVELS = (4, 2, 1)

#: Update periods in slots, sized comfortably above each file's
#: collection window so retrievals complete (the load sweep explores
#: what happens when they are not).
PERIODS = {
    "hot-1": 64, "hot-2": 64,
    "warm-1": 128, "warm-2": 128, "warm-3": 160,
    "cold-1": 320, "cold-2": 400, "cold-3": 400, "cold-4": 480,
    "cold-5": 480,
}

PHASE_STRIDE = 3
PHASE_SPAN = 600 if SMOKE else 6_000


def _fault_spec(payload):
    from repro.api.scenario import FaultSpec

    return FaultSpec.from_dict(payload)


def _program():
    config = config_from_demand(FILES, DEMAND, levels=LEVELS)
    program = build_multidisk_program(config)
    program.index  # shared occurrence tables, built outside the timing
    return program


def _throughput(fn, program, server, phases, faults=None) -> float:
    # One model instance per arm, as production consumers hold one:
    # decisions are deterministic and memoized per (seed, slot), so the
    # arms see the same channel and amortize it the same way.
    model = faults() if faults is not None else None
    begin = time.perf_counter()
    for name, m in FILES:
        for phase in phases:
            fn(program, server, name, m, start=phase, faults=model)
    return len(FILES) * len(phases) / (time.perf_counter() - begin)


def test_versioned_retrieval_speedup_and_record():
    """The acceptance measurement: the occurrence-walking versioned
    retrieval must beat the slot-walking baseline >= 5x fault-free on
    the multidisk hierarchy, bit-identically."""
    program = _program()
    server = UpdatingServer(PERIODS)
    phases = list(range(0, PHASE_SPAN, PHASE_STRIDE))

    # Bit-identical first: the speedup must not buy a single changed
    # field (version, latency, age, torn discards).
    model = BernoulliFaults(0.05, seed=3)
    for name, m in FILES:
        for phase in range(0, 3 * program.data_cycle_length, 11):
            fast = retrieve_versioned(
                program, server, name, m, start=phase, faults=model
            )
            slow = reference.retrieve_versioned(
                program, server, name, m, start=phase, faults=model
            )
            assert fast == slow, (name, phase)

    arms = {}
    rows = []
    for label, faults in (
        ("fault-free", None),
        ("bernoulli p=0.05",
         lambda: BernoulliFaults(0.05, seed=3)),
    ):
        after = _throughput(
            retrieve_versioned, program, server, phases, faults
        )
        before = _throughput(
            reference.retrieve_versioned, program, server, phases, faults
        )
        arms[label] = {
            "slot_walker_per_sec": round(before),
            "occurrence_walker_per_sec": round(after),
            "speedup": round(after / before, 2),
        }
        rows.append(
            [label, f"{before:,.0f}", f"{after:,.0f}",
             f"{after / before:.1f}x"]
        )
    print_table(
        f"RTDB: versioned retrieval, {len(FILES)} files x "
        f"{len(phases)} phases (multidisk {LEVELS})",
        ["channel", "slot walker/s", "occ walker/s", "speedup"],
        rows,
    )
    if not SMOKE:
        speedup = arms["fault-free"]["speedup"]
        assert speedup >= 5.0, (
            f"expected >= 5x fault-free versioned-retrieval speedup, "
            f"measured {speedup:.2f}x"
        )

    # ------------------------------------------------------------------
    # Transaction-mix load sweep
    # ------------------------------------------------------------------
    temporal = TemporalSpec(
        # One slot = 1 ms, budgets = deadline slots directly.
        slot_ms=1,
        items=tuple(
            TemporalItemSpec(
                name, blocks=m, max_age_ms=12 * PERIODS[name]
            )
            for name, m in FILES
        ),
        update_periods=PERIODS,
        transactions=(
            TransactionSpec("track", ["hot-1"], 60, weight=6),
            TransactionSpec(
                "fuse", ["hot-1", "hot-2", "warm-1"], 240, weight=3
            ),
            TransactionSpec(
                "survey", ["warm-2", "cold-1", "cold-4"], 900, weight=1
            ),
        ),
    )
    deadlines = {
        name: temporal.max_age_slots()[name] for name, _ in FILES
    }
    load_points = (100,) if SMOKE else (1_000, 5_000, 20_000)
    load_sweep = []
    for clients in load_points:
        result = simulate_traffic(
            program,
            [name for name, _ in FILES],
            TrafficSpec(
                clients=clients,
                duration=max(2_000, clients * 10),
                requests_per_client=4,
                think_time=20,
                seed=SEED,
            ),
            file_sizes=SIZES,
            deadlines=deadlines,
            temporal=temporal,
            faults=_fault_spec(
                {"kind": "bernoulli", "probability": 0.02, "seed": 3}
            ),
        )
        m = result.metrics
        load_sweep.append(
            {
                "clients": clients,
                "requests": m.requests,
                "requests_per_sec": round(result.requests_per_sec),
                "consistency_rate": round(m.consistency_rate, 4),
                "deadline_miss_rate": round(m.deadline_miss_rate, 4),
                "abort_rate": round(m.abort_rate, 4),
                "mean_age": round(m.mean_age, 1),
                "torn_discards": m.torn_discards,
            }
        )
    print_table(
        "RTDB: transaction-mix load sweep (bernoulli p=0.02)",
        ["clients", "requests", "req/s", "consistency", "deadline miss",
         "abort", "mean age"],
        [
            [f"{e['clients']:,}", f"{e['requests']:,}",
             f"{e['requests_per_sec']:,}",
             f"{e['consistency_rate']:.4f}",
             f"{e['deadline_miss_rate']:.4f}",
             f"{e['abort_rate']:.4f}", f"{e['mean_age']:.0f}"]
            for e in load_sweep
        ],
    )
    for entry in load_sweep:
        assert entry["abort_rate"] < 0.05, entry

    # The feasibility frontier, both cliffs: periods far above the
    # freshness budget leave only stale values on the air (consistency
    # collapses), while periods below the collection window kill every
    # version before it can be read (torn reads abort everything).
    frontier = []
    scales = (1.0, 0.05) if SMOKE else (32.0, 16.0, 1.0, 0.25, 0.05)
    for scale in scales:
        periods = {
            name: max(1, int(period * scale))
            for name, period in PERIODS.items()
        }
        scaled = TemporalSpec(
            slot_ms=1,
            items=temporal.items,
            update_periods=periods,
            transactions=temporal.transactions,
        )
        result = simulate_traffic(
            program,
            [name for name, _ in FILES],
            TrafficSpec(
                clients=200 if SMOKE else 2_000,
                duration=20_000,
                requests_per_client=2,
                seed=SEED,
            ),
            file_sizes=SIZES,
            deadlines=deadlines,
            temporal=scaled,
        )
        m = result.metrics
        frontier.append(
            {
                "period_scale": scale,
                "consistency_rate": round(m.consistency_rate, 4),
                "abort_rate": round(m.abort_rate, 4),
                "mean_age": round(m.mean_age, 1),
                "torn_per_request": round(
                    m.torn_discards / m.requests, 2
                ),
            }
        )
    print_table(
        "RTDB: update-period feasibility frontier (fault-free)",
        ["period scale", "consistency", "abort rate", "mean age",
         "torn/request"],
        [
            [f"{e['period_scale']:.3f}", f"{e['consistency_rate']:.4f}",
             f"{e['abort_rate']:.4f}", f"{e['mean_age']:.0f}",
             f"{e['torn_per_request']:.2f}"]
            for e in frontier
        ],
    )

    if SMOKE:  # smoke asserts correctness only, never timing
        return
    RESULT_PATH.write_text(
        json.dumps(
            {
                "bench": "rtdb",
                "workload": {
                    "program": (
                        f"multidisk {len(FILES)} files, levels "
                        f"{'/'.join(map(str, LEVELS))}"
                    ),
                    "data_cycle": program.data_cycle_length,
                    "phases": len(phases),
                    "update_periods": PERIODS,
                    "seed": SEED,
                },
                "python": platform.python_version(),
                "versioned_retrieval": arms,
                "transaction_load_sweep": load_sweep,
                "update_period_frontier": frontier,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
