"""Experiments LEM1 + LEM2: the delay lemmas beyond the toy example.

Lemma 1: flat programs lose ``r * Pi`` slots to ``r`` errors.
Lemma 2: AIDA programs lose at most ``r * Delta``.

The bench sweeps randomized file sets (varying sizes and counts), builds
both program styles for each, computes exact adversarial delays, and
verifies the bounds - Lemma 1 as an equality (it is tight for flat
programs), Lemma 2 as an upper bound within each file's dispersal
capacity ``r <= n_i - m_i``.
"""

import random

from benchmarks.conftest import print_table
from repro.bdisk.flat import build_aida_flat_program, build_flat_program
from repro.sim.delay import lemma1_bound, lemma2_bound, worst_case_delay


def _random_catalogue(rng: random.Random):
    count = rng.randint(2, 4)
    files = []
    for index in range(count):
        m = rng.randint(2, 5)
        spare = rng.randint(2, 4)
        files.append((f"f{index}", m, m + spare))
    return files


def test_lemma1_exact_equality(benchmark, rng):
    """Flat programs: delay is exactly r * Pi for every file."""

    def sweep():
        observations = []
        for _ in range(6):
            files = _random_catalogue(rng)
            flat = build_flat_program([(n, m) for n, m, _ in files])
            period = flat.broadcast_period
            for name, m, _ in files:
                for errors in range(3):
                    delay = worst_case_delay(
                        flat, name, m, errors, need_distinct=False
                    )
                    observations.append((period, errors, delay))
        return observations

    observations = benchmark(sweep)
    violations = [
        (period, errors, delay)
        for period, errors, delay in observations
        if delay != lemma1_bound(period, errors)
    ]
    print_table(
        "LEM1: exact delay vs r*Pi over random flat programs",
        ["observations", "bound violations", "tight (delay == r*Pi)"],
        [[len(observations), len(violations),
          len(observations) - len(violations)]],
    )
    assert not violations


def test_lemma2_upper_bound(benchmark, rng):
    """AIDA programs: delay <= r * Delta within dispersal capacity."""

    def sweep():
        observations = []
        for _ in range(6):
            files = _random_catalogue(rng)
            program = build_aida_flat_program(files)
            for name, m, n_total in files:
                delta = program.max_gap(name)
                capacity = n_total - m
                for errors in range(min(capacity, 3) + 1):
                    delay = worst_case_delay(program, name, m, errors)
                    observations.append((delta, errors, delay))
        return observations

    observations = benchmark(sweep)
    violations = [
        (delta, errors, delay)
        for delta, errors, delay in observations
        if delay > lemma2_bound(delta, errors)
    ]
    slack = [
        lemma2_bound(delta, errors) - delay
        for delta, errors, delay in observations
        if errors
    ]
    print_table(
        "LEM2: exact delay vs r*Delta over random AIDA programs",
        ["observations", "violations", "mean bound slack (slots)"],
        [
            [
                len(observations),
                len(violations),
                f"{sum(slack) / len(slack):.2f}" if slack else "-",
            ]
        ],
    )
    assert not violations


def test_lemma_comparison_ratio(benchmark, rng):
    """The Pi/Delta speedup across random catalogues (the paper's
    'much more accentuated in a typical Bdisk' remark)."""

    def sweep():
        ratios = []
        for _ in range(6):
            files = _random_catalogue(rng)
            flat = build_flat_program([(n, m) for n, m, _ in files])
            program = build_aida_flat_program(files)
            for name, m, _ in files:
                flat_delay = worst_case_delay(
                    flat, name, m, 2, need_distinct=False
                )
                aida_delay = worst_case_delay(program, name, m, 2)
                if aida_delay:
                    ratios.append(flat_delay / aida_delay)
        return sorted(ratios)

    ratios = benchmark(sweep)
    print_table(
        "LEM1 vs LEM2: recovery speedup at r = 2",
        ["samples", "min", "median", "max"],
        [
            [
                len(ratios),
                f"{ratios[0]:.2f}",
                f"{ratios[len(ratios) // 2]:.2f}",
                f"{ratios[-1]:.2f}",
            ]
        ],
    )
    assert ratios[0] >= 1.0
