"""Experiments FIG5 + FIG6: regenerate the paper's toy broadcast programs.

Figure 5: the flat program ``A'1 B'1 A'2 A'3 B'2 A'4 B'3 A'5`` (period 8,
no dispersal).  Figure 6: the AIDA program over A dispersed 5-of-10 and B
dispersed 3-of-6 (period 8, data cycle 16, Delta_A = 2, Delta_B = 3).

The benchmark times program construction; the printed tables show the
regenerated layouts and their structural properties next to the paper's.
"""

from benchmarks.conftest import print_table
from repro.bdisk.flat import build_aida_flat_program, build_flat_program

PAPER_FIG5 = "A'1 B'1 A'2 A'3 B'2 A'4 B'3 A'5"
PAPER_FIG6 = (
    "A'1 B'1 A'2 A'3 B'2 A'4 B'3 A'5 A'6 B'4 A'7 A'8 B'5 A'9 B'6 A'10"
)


def test_figure5_program(benchmark):
    program = benchmark(build_flat_program, [("A", 5), ("B", 3)])
    rendered = program.render()
    print_table(
        "FIG5: flat broadcast program",
        ["source", "layout", "period", "data cycle"],
        [
            ["paper", PAPER_FIG5, 8, 8],
            ["ours", rendered, program.broadcast_period,
             program.data_cycle_length],
        ],
    )
    assert rendered == PAPER_FIG5
    assert program.broadcast_period == 8


def test_figure6_program(benchmark):
    program = benchmark(
        build_aida_flat_program, [("A", 5, 10), ("B", 3, 6)]
    )
    rendered = program.render()
    print_table(
        "FIG6: AIDA flat broadcast program",
        ["source", "period", "data cycle", "Delta_A", "Delta_B"],
        [
            ["paper", 8, 16, 2, 3],
            [
                "ours",
                program.broadcast_period,
                program.data_cycle_length,
                program.max_gap("A"),
                program.max_gap("B"),
            ],
        ],
    )
    print(f"\nlayout: {rendered}")
    assert rendered == PAPER_FIG6
    assert program.data_cycle_length == 16


def test_figure6_distinct_block_windows(benchmark, figure6_program):
    """Every broadcast period carries a full reconstruction set - the
    property that makes the Figure 6 program work."""

    def distinct_minima():
        return (
            figure6_program.min_distinct_in_window("A", 8),
            figure6_program.min_distinct_in_window("B", 8),
        )

    a_min, b_min = benchmark(distinct_minima)
    print_table(
        "FIG6: distinct blocks per 8-slot window",
        ["file", "m needed", "min distinct (any window)"],
        [["A", 5, a_min], ["B", 3, b_min]],
    )
    assert a_min >= 5 and b_min >= 3
