"""The block-size trade-off (Section 5, the paper's open issue).

Smaller communication blocks disperse files into more pieces: bandwidth
is used more efficiently (less quantization, cheaper fault slots) but
IDA arithmetic costs grow.  This example sweeps system-wide block sizes
for a sensor-network catalogue, answers the paper's question (the
largest schedulable block size), and then lets each file pick its own
multiple of the base block - the ``b_i = k_i * b`` generalization.

Run with::

    python examples/block_size_tradeoff.py
"""

from fractions import Fraction

from repro.bdisk.blocksize import (
    SizedFile,
    largest_schedulable_block_size,
    per_file_multiples,
)

BANDWIDTH = 128_000  # bytes per second on the downlink

CATALOGUE = [
    SizedFile("alerts", 2_048, Fraction(1, 4), fault_budget=2),
    SizedFile("sensor-grid", 49_152, 4, fault_budget=1),
    SizedFile("base-map", 196_608, 30),
    SizedFile("archive", 524_288, 120),
]


def main() -> None:
    candidates = [128, 256, 512, 1024, 2048, 4096, 8192]
    best, reports = largest_schedulable_block_size(
        CATALOGUE, BANDWIDTH, candidates
    )

    print("== block-size sweep ==")
    print(f"{'block':>7} {'density':>9} {'ok':>4} "
          f"{'max m':>6} {'codec':>7}")
    for report in reports:
        density = min(report.density, Fraction(99))
        print(
            f"{report.block_size:>7} {float(density):>9.4f} "
            f"{'yes' if report.schedulable else 'no':>4} "
            f"{max(report.dispersal_levels.values()):>6} "
            f"{report.codec_cost:>7.1f}"
        )
    if best is None:
        print("no candidate block size is schedulable!")
        return
    print(f"\nlargest schedulable block size: {best.block_size} bytes")
    print("dispersal levels at that size:")
    for name, level in best.dispersal_levels.items():
        print(f"  {name:<12} m = {level}")

    print("\n== per-file multiples of a 256-byte base block ==")
    multiples = per_file_multiples(
        CATALOGUE, BANDWIDTH, base_block=256, max_multiple=32
    )
    for spec in CATALOGUE:
        k = multiples[spec.name]
        block = 256 * k
        print(
            f"  {spec.name:<12} k = {k:>2} -> {block:>5}-byte blocks, "
            f"m = {spec.dispersal_level(block)}"
        )
    print(
        "\nBig lazy files take big blocks (cheap codecs); small urgent "
        "files stay fine-grained (tight windows) - the behaviour the "
        "paper anticipated."
    )


if __name__ == "__main__":
    main()
