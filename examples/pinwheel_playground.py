"""A guided tour of the pinwheel machinery itself.

While the other examples stay in broadcast-disk land, this one exercises
the paper's *theory* layer directly: Example 1's three task systems, the
scheduler family side by side, and the pinwheel algebra run on Example 4
step by step - ending at the transformation this library finds beyond
the paper.

Run with::

    python examples/pinwheel_playground.py
"""

from repro.core.algebra import pc_implies, rule_r5, strengthen_r3
from repro.core.conditions import bc, pc
from repro.core.exact import is_feasible_exact
from repro.core.greedy import schedule_greedy
from repro.core.single_reduction import schedule_single_reduction
from repro.core.double_reduction import schedule_double_reduction
from repro.core.solver import solve
from repro.core.task import PinwheelSystem
from repro.core.transforms import all_candidates
from repro.errors import ReproError


def example_one() -> None:
    print("== Example 1: three pinwheel task systems ==")
    first = PinwheelSystem.from_pairs([(1, 2), (1, 3)])
    print(f"{{(1,1,2),(2,1,3)}}: density {float(first.density):.4f}")
    print(f"  schedule: {solve(first).schedule}")

    second = PinwheelSystem.from_pairs([(2, 5), (1, 3)])
    print(f"{{(1,2,5),(2,1,3)}}: density {float(second.density):.4f}")
    print(f"  schedule: {solve(second).schedule}")

    print("{(1,1,2),(2,1,3),(3,1,n)}: infeasible for every n -")
    for n in (10, 100):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3), (1, n)])
        print(
            f"  n={n}: density {float(system.density):.4f}, "
            f"feasible: {is_feasible_exact(system)}"
        )


def scheduler_family() -> None:
    print("\n== the scheduler family on one instance ==")
    system = PinwheelSystem.from_pairs([(1, 4), (1, 7), (2, 15), (1, 30)])
    print(f"instance: {system!r}")
    for name, scheduler in (
        ("single-number reduction (Sa)", schedule_single_reduction),
        ("double-integer reduction (Sx)", schedule_double_reduction),
        ("greedy EDF", schedule_greedy),
    ):
        try:
            schedule = scheduler(system)
            print(f"  {name:<30} cycle length {schedule.cycle_length}")
        except ReproError as error:
            print(f"  {name:<30} failed: {error}")


def algebra_walkthrough() -> None:
    print("\n== Example 4, rule by rule ==")
    spec = bc("i", 4, [8, 9])
    print(f"spec: {spec}  "
          f"(lower bound {float(spec.density_lower_bound):.4f})")
    print("Eq. 3 expansion:", " ^ ".join(str(c) for c in spec.expand()))

    base = strengthen_r3(pc("i", 4, 8))
    print(f"R3 strengthens pc(i,4,8) to {base} (paper's manipulation)")
    helper, _ = rule_r5(base, pc("i", 5, 9))
    print(f"R5 covers pc(i,5,9) with helper {helper} -> "
          f"density 1/2 + 1/10 = 0.60")

    print("but R2 says pc(i,5,9) already implies pc(i,4,8):",
          pc_implies(pc("i", 5, 9), pc("i", 4, 8)))
    print("so a single pc(i,5,9) suffices - density 5/9 = 0.5556, "
          "the lower bound itself.\n")
    print("all candidates the strategy weighs:")
    for candidate in all_candidates(spec):
        print(f"  {candidate}")


def main() -> None:
    example_one()
    scheduler_family()
    algebra_walkthrough()


if __name__ == "__main__":
    main()
