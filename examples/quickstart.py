"""Quickstart: design a fault-tolerant real-time broadcast disk.

Walks the library's core loop end to end:

1. specify broadcast files (size, latency, fault budget);
2. plan bandwidth with Equation 2 and schedule the induced pinwheel
   system;
3. inspect the resulting broadcast program;
4. disperse a real payload with AIDA and retrieve it through a lossy
   channel.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AidaEncoder,
    BernoulliFaults,
    FileSpec,
    design_program,
    reconstruct,
    retrieve,
)


def main() -> None:
    # 1. Three database objects with real-time delivery requirements.
    #    "pos" updates must arrive within 2 s even if 2 blocks are lost.
    files = [
        FileSpec("pos", blocks=4, latency=2, fault_budget=2),
        FileSpec("map", blocks=6, latency=5, fault_budget=1),
        FileSpec("weather", blocks=2, latency=10),
    ]

    # 2. Plan bandwidth and build the program (Equation 2 + portfolio
    #    scheduler + AIDA block rotation; everything verified).
    design = design_program(files)
    plan = design.bandwidth_plan
    print("== bandwidth plan ==")
    print(f"necessary  >= {float(plan.necessary):.2f} blocks/s")
    print(f"equation 2  = {plan.eq_bound} blocks/s (chosen)")
    print(f"density     = {float(plan.density):.4f} "
          f"(schedulable below 0.70)")
    print(f"scheduler   = {plan.report.method}")

    # 3. The broadcast program: slot -> (file, dispersed block).
    program = design.program
    print("\n== broadcast program ==")
    print(f"broadcast period   = {program.broadcast_period} slots")
    print(f"program data cycle = {program.data_cycle_length} slots")
    print("first period:", program.render(periods=1))
    for spec in files:
        window = plan.bandwidth * spec.latency
        distinct = program.min_distinct_in_window(spec.name, window)
        print(
            f"  {spec.name}: every {window}-slot window carries "
            f">= {distinct} distinct blocks "
            f"(needs {spec.blocks} + {spec.fault_budget} spare)"
        )

    # 4. Put real bytes on the air and fetch them through a lossy channel.
    payload = b"vehicle 42 at (42.3601 N, 71.0589 W), heading 095\n" * 5
    encoder = AidaEncoder(
        "pos", payload, m=4, n_max=program.block_count("pos")
    )
    result = retrieve(
        program, "pos", 4, faults=BernoulliFaults(0.1, seed=7)
    )
    blocks = [encoder.blocks[i] for i in result.received[:4]]
    restored = reconstruct(blocks)
    print("\n== retrieval over a 10%-loss channel ==")
    print(f"completed in {result.latency} slots "
          f"({len(result.lost_slots)} blocks lost on air)")
    print(f"payload intact: {restored == payload}")


if __name__ == "__main__":
    main()
