"""Quickstart: design a fault-tolerant real-time broadcast disk.

Walks the library's core loop end to end through the declarative
Scenario API:

1. specify broadcast files (size, latency, fault budget) and a workload
   in one :class:`repro.Scenario`;
2. run it: bandwidth planning (Equation 2), pinwheel scheduling, AIDA
   block rotation, and a lossy-channel simulation in one call;
3. inspect the structured result (plan, program, latencies);
4. disperse a real payload with AIDA and retrieve it through the same
   channel.

Run with::

    python examples/quickstart.py

The identical experiment is available from a shell: save the scenario
with ``scenario.save("quickstart.json")`` and run
``repro run quickstart.json``.
"""

from repro import (
    AidaEncoder,
    BernoulliFaults,
    BroadcastEngine,
    FaultSpec,
    FileSpec,
    Scenario,
    WorkloadSpec,
    reconstruct,
    retrieve,
)


def main() -> None:
    # 1. Three database objects with real-time delivery requirements and
    #    a fleet of clients tuning in over a 10%-loss channel.
    #    "pos" updates must arrive within 2 s even if 2 blocks are lost.
    scenario = Scenario(
        name="quickstart",
        files=[
            FileSpec("pos", blocks=4, latency=2, fault_budget=2),
            FileSpec("map", blocks=6, latency=5, fault_budget=1),
            FileSpec("weather", blocks=2, latency=10),
        ],
        faults=FaultSpec(kind="bernoulli", probability=0.1, seed=7),
        workload=WorkloadSpec(requests=60, horizon=300, seed=11),
    )

    # 2. One call: Equation 2 + portfolio scheduler + AIDA block rotation
    #    + fault-channel simulation; everything verified.
    result = BroadcastEngine(scenario).run()
    plan = result.design.bandwidth_plan
    print("== bandwidth plan ==")
    print(f"necessary  >= {float(plan.necessary):.2f} blocks/s")
    print(f"equation 2  = {plan.eq_bound} blocks/s (chosen)")
    print(f"density     = {float(plan.density):.4f} "
          f"(schedulable below 0.70)")
    print(f"scheduler   = {result.stats.method}")

    # 3. The broadcast program: slot -> (file, dispersed block).
    program = result.program
    print("\n== broadcast program ==")
    print(f"broadcast period   = {program.broadcast_period} slots")
    print(f"program data cycle = {program.data_cycle_length} slots")
    print("first period:", program.render(periods=1))
    for spec in scenario.files:
        window = plan.bandwidth * spec.latency
        distinct = program.min_distinct_in_window(spec.name, window)
        print(
            f"  {spec.name}: every {window}-slot window carries "
            f">= {distinct} distinct blocks "
            f"(needs {spec.blocks} + {spec.fault_budget} spare)"
        )

    sim = result.simulation
    print("\n== fleet simulation over the 10%-loss channel ==")
    print(f"latency: {sim.summary}")
    print(f"deadline miss rate: {sim.deadline_miss_rate:.3f}")

    # 4. Put real bytes on the air and fetch them through a lossy channel.
    payload = b"vehicle 42 at (42.3601 N, 71.0589 W), heading 095\n" * 5
    encoder = AidaEncoder(
        "pos", payload, m=4, n_max=program.block_count("pos")
    )
    retrieval = retrieve(
        program, "pos", 4, faults=BernoulliFaults(0.1, seed=7)
    )
    blocks = [encoder.blocks[i] for i in retrieval.received[:4]]
    restored = reconstruct(blocks)
    print("\n== retrieval over a 10%-loss channel ==")
    print(f"completed in {retrieval.latency} slots "
          f"({len(retrieval.lost_slots)} blocks lost on air)")
    print(f"payload intact: {restored == payload}")


if __name__ == "__main__":
    main()
