"""AWACS: temporal consistency, operation modes, and transactions.

The paper's running military example:

* an aircraft track at 900 km/h with 100 m accuracy tolerates 400 ms of
  staleness; a 60 km/h tank tolerates 6000 ms (Section 1);
* the *combat* mode boosts AIDA redundancy on critical items, *landing*
  relaxes it (Section 2.2);
* client transactions ("warn soldiers to take shelter") read several
  items under a deadline.

Run with::

    python examples/awacs_modes.py
"""

from repro import (
    BernoulliFaults,
    DataItem,
    ModeManager,
    OperationMode,
    ReadTransaction,
    constraint_from_kinematics,
    execute_transaction,
)

SLOT_MS = 40.0  # one block every 40 ms on the base-rate downlink


def main() -> None:
    aircraft = constraint_from_kinematics(900, 100)
    tank = constraint_from_kinematics(60, 100)
    print("== temporal consistency (Section 1) ==")
    print(f"aircraft @900 km/h, 100 m: {aircraft}")
    print(f"tank     @ 60 km/h, 100 m: {tank}")

    items = [
        DataItem(
            "air-tracks",
            b"track" * 64,
            aircraft,
            blocks=4,
            criticality={"combat": 3, "landing": 1},
        ),
        DataItem(
            "ground-tracks",
            b"armor" * 64,
            tank,
            blocks=6,
            criticality={"combat": 2},
        ),
        DataItem(
            "terrain",
            b"dem" * 128,
            constraint_from_kinematics(10, 500),
            blocks=8,
        ),
    ]
    # At 40 ms/block the aircraft budget is 10 slots; combat's 4 + 3
    # block slots push density past 0.70, so combat needs a channel
    # twice the base rate while landing fits at the base rate - the
    # "criticality costs bandwidth" trade of Section 2.2.
    manager = ModeManager(
        items,
        [
            OperationMode("combat", "weapons free"),
            OperationMode("landing", "approach phase"),
        ],
        slot_ms=SLOT_MS,
    )

    print("\n== per-mode designs (Section 2.2) ==")
    for mode, bandwidth in manager.bandwidth_by_mode().items():
        design = manager.design_for(mode)
        print(
            f"{mode:>8}: bandwidth {bandwidth} blocks/s, "
            f"density {float(design.bandwidth_plan.density):.3f}, "
            f"period {design.program.broadcast_period} slots"
        )
    policy = manager.redundancy_policy()
    for mode in ("combat", "landing"):
        budgets = {
            item.name: policy.fault_budget(mode, item.name)
            for item in items
        }
        print(f"{mode:>8}: fault budgets {budgets}")

    print("\n== transactions under fire (combat mode, 3% loss) ==")
    design = manager.switch_to("combat")
    # Reading both track files sequentially: air-tracks arrives within
    # its 20-slot window, ground-tracks within 300 - so 400 program
    # slots comfortably bound the response time even with losses.
    shelter_warning = ReadTransaction(
        "shelter-warning", ["air-tracks", "ground-tracks"],
        deadline_slots=400,
    )
    catalogue = {item.name: item for item in items}
    # Combat runs the channel at twice the base rate, so one program
    # slot lasts SLOT_MS / bandwidth milliseconds - staleness checks
    # must use the mode's actual slot duration.
    combat_slot_ms = SLOT_MS / design.bandwidth_plan.bandwidth
    for start in (0, 37, 114):
        result = execute_transaction(
            design.program,
            shelter_warning,
            catalogue,
            start=start,
            slot_ms=combat_slot_ms,
            faults=BernoulliFaults(0.03, seed=start),
        )
        print(f"start slot {start:>4}: {result}")

    print("\n== the same transaction in landing mode ==")
    landing = manager.switch_to("landing")
    result = execute_transaction(
        landing.program,
        shelter_warning,
        catalogue,
        slot_ms=SLOT_MS / landing.bandwidth_plan.bandwidth,
    )
    print(result)


if __name__ == "__main__":
    main()
