"""IVHS: an Intelligent Vehicle Highway System broadcast disk.

The paper's opening scenario: vehicles with on-board navigation receive
traffic data by satellite broadcast and must react to incidents in real
time.  This example builds the IVHS server's broadcast disk through the
declarative Scenario API:

* *incident alerts* - small, urgent, and critical (drivers reroute);
* *congestion maps* - medium, refreshed every few seconds;
* *construction schedules* and *points of interest* - large and lazy.

Two scenarios share the catalogue and workload seed - a clear channel
and a 5% lossy one - and run as a batch (:func:`repro.run_scenarios`).
The same request stream then replays against the demand-driven multidisk
layout for the paper's positioning contrast.

Run with::

    python examples/ivhs_traffic.py
"""

from dataclasses import replace

from repro import (
    FaultSpec,
    FileSpec,
    Scenario,
    WorkloadSpec,
    run_scenarios,
    simulate_requests,
)
from repro.bdisk.multidisk import build_multidisk_program, config_from_demand


def main() -> None:
    files = [
        FileSpec("incidents", blocks=2, latency=2, fault_budget=2),
        FileSpec("congestion", blocks=6, latency=6, fault_budget=1),
        FileSpec("construction", blocks=8, latency=20),
        FileSpec("poi", blocks=10, latency=40),
    ]
    # A fleet of vehicles: Zipf-skewed interest (incidents are hot).
    clear = Scenario(
        name="ivhs-clear",
        files=files,
        workload=WorkloadSpec(
            requests=200, horizon=2_000, zipf_skew=1.5, seed=1995
        ),
    )
    noisy = replace(
        clear,
        name="ivhs-noisy",
        faults=FaultSpec(kind="bernoulli", probability=0.05, seed=3),
    )

    clear_result, noisy_result = run_scenarios([clear, noisy])
    plan = clear_result.design.bandwidth_plan
    print("== IVHS broadcast disk ==")
    print(f"bandwidth: {plan.bandwidth} blocks/s "
          f"(necessary >= {float(plan.necessary):.2f}, "
          f"density {float(plan.density):.3f})")
    print(f"period {clear_result.stats.broadcast_period} slots, "
          f"data cycle {clear_result.stats.data_cycle_length} slots")

    for result in (clear_result, noisy_result):
        label = (
            "clear channel"
            if result.scenario.faults.kind == "none"
            else "5% block loss"
        )
        print(f"\n== fleet simulation: {label} ==")
        print(f"latency: {result.simulation.summary}")
        print(
            f"deadline miss rate: "
            f"{result.simulation.deadline_miss_rate:.3f}"
        )

    # Baseline: the demand-driven multidisk layout on the very same
    # request stream (the engine's result carries it).
    demand = {"incidents": 20.0, "congestion": 6.0,
              "construction": 2.0, "poi": 1.0}
    multidisk = build_multidisk_program(
        config_from_demand(
            [(f.name, f.blocks) for f in files], demand, levels=(4, 2, 1)
        )
    )
    baseline = simulate_requests(
        multidisk,
        clear_result.simulation.requests,
        file_sizes={f.name: f.blocks for f in files},
        need_distinct=False,
    )
    print("\n== demand-driven multidisk baseline (clear channel) ==")
    print(f"latency: {baseline.summary}")
    print(f"deadline miss rate: {baseline.deadline_miss_rate:.3f}")
    print(
        "\nThe multidisk layout optimizes hot-item averages; the pinwheel "
        "program pays a slightly higher mean to guarantee EVERY deadline - "
        "the paper's central trade."
    )


if __name__ == "__main__":
    main()
