"""IVHS: an Intelligent Vehicle Highway System broadcast disk.

The paper's opening scenario: vehicles with on-board navigation receive
traffic data by satellite broadcast and must react to incidents in real
time.  This example builds the IVHS server's broadcast disk:

* *incident alerts* - small, urgent, and critical (drivers reroute);
* *congestion maps* - medium, refreshed every few seconds;
* *construction schedules* and *points of interest* - large and lazy.

It then simulates a fleet of vehicles tuning in at random times over a
noisy channel and reports deadline compliance, contrasting the pinwheel
program with the demand-driven multidisk layout.

Run with::

    python examples/ivhs_traffic.py
"""

import random

from repro import FileSpec, design_program, BernoulliFaults, simulate_requests
from repro.bdisk.multidisk import build_multidisk_program, config_from_demand
from repro.sim.workload import request_stream


def main() -> None:
    files = [
        FileSpec("incidents", blocks=2, latency=2, fault_budget=2),
        FileSpec("congestion", blocks=6, latency=6, fault_budget=1),
        FileSpec("construction", blocks=8, latency=20),
        FileSpec("poi", blocks=10, latency=40),
    ]
    design = design_program(files)
    plan = design.bandwidth_plan
    print("== IVHS broadcast disk ==")
    print(f"bandwidth: {plan.bandwidth} blocks/s "
          f"(necessary >= {float(plan.necessary):.2f}, "
          f"density {float(plan.density):.3f})")
    print(f"period {design.program.broadcast_period} slots, "
          f"data cycle {design.program.data_cycle_length} slots")

    # A fleet of vehicles: Zipf-skewed interest (incidents are hot).
    rng = random.Random(1995)
    requests = request_stream(
        rng,
        files,
        count=200,
        horizon=2_000,
        bandwidth=plan.bandwidth,
        zipf_skew=1.5,
    )
    sizes = {f.name: f.blocks for f in files}

    print("\n== fleet simulation: clear channel ==")
    clear = simulate_requests(design.program, requests, file_sizes=sizes)
    print(f"latency: {clear.summary}")
    print(f"deadline miss rate: {clear.deadline_miss_rate:.3f}")

    print("\n== fleet simulation: 5% block loss ==")
    noisy = simulate_requests(
        design.program,
        requests,
        file_sizes=sizes,
        faults=BernoulliFaults(0.05, seed=3),
    )
    print(f"latency: {noisy.summary}")
    print(f"deadline miss rate: {noisy.deadline_miss_rate:.3f}")

    # Baseline: the demand-driven multidisk layout on the same stream.
    demand = {"incidents": 20.0, "congestion": 6.0,
              "construction": 2.0, "poi": 1.0}
    multidisk = build_multidisk_program(
        config_from_demand(
            [(f.name, f.blocks) for f in files], demand, levels=(4, 2, 1)
        )
    )
    baseline = simulate_requests(
        multidisk, requests, file_sizes=sizes, need_distinct=False
    )
    print("\n== demand-driven multidisk baseline (clear channel) ==")
    print(f"latency: {baseline.summary}")
    print(f"deadline miss rate: {baseline.deadline_miss_rate:.3f}")
    print(
        "\nThe multidisk layout optimizes hot-item averages; the pinwheel "
        "program pays a slightly higher mean to guarantee EVERY deadline - "
        "the paper's central trade."
    )


if __name__ == "__main__":
    main()
