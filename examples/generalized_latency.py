"""Generalized fault-tolerant broadcast disks (Section 4).

Files here carry latency *vectors*: ``d(j)`` is the tolerable latency
when ``j`` faults occur - small latency normally, graceful degradation
under faults.  The example walks the paper's machinery explicitly:

1. each ``bc(i, m, d)`` expands into pinwheel conditions (Equation 3);
2. the transformation strategies (TR1, TR2, the R-rule manipulations,
   and the single-condition merge) compete per file;
3. the combined nice conjunct is scheduled and the virtual helper tasks
   are folded back onto their files (``map(i', i)``);
4. the final program is verified level by level: with ``j`` losses the
   client still finishes within ``d(j)`` from every phase.

Run with::

    python examples/generalized_latency.py
"""

import itertools

from repro import GeneralizedFileSpec, design_generalized_program, retrieve
from repro.core.transforms import density_report
from repro.sim.faults import AdversarialFaults


def main() -> None:
    specs = [
        # Example-5-shaped file: degradation 5 -> 6 -> 6 slots.
        GeneralizedFileSpec("tracks", 2, (5, 6, 6)),
        # A slow bulky file that tolerates one fault with 33% slack.
        GeneralizedFileSpec("imagery", 3, (18, 24)),
    ]

    print("== transformation candidates per file (Section 4.2) ==")
    for spec in specs:
        print(f"\n{spec.as_condition()}  "
              f"(lower bound "
              f"{float(spec.as_condition().density_lower_bound):.4f})")
        for strategy, density in density_report(spec.as_condition()):
            print(f"  {strategy:<12} density {float(density):.4f}")

    design = design_generalized_program(specs)
    print("\n== chosen design ==")
    print(design)
    program = design.program
    print(f"\nprogram ({program.broadcast_period}-slot period):")
    print(program.render(periods=2))

    print("\n== adversarial verification, level by level ==")
    for spec in specs:
        slots = [
            t
            for t in range(program.data_cycle_length)
            if (c := program.slot_content(t)) and c.file == spec.name
        ]
        for j, budget in enumerate(spec.latency_vector):
            worst = 0
            for lost in itertools.combinations(slots, j):
                result = retrieve(
                    program,
                    spec.name,
                    spec.blocks,
                    faults=AdversarialFaults(lost),
                )
                worst = max(worst, result.latency)
            print(
                f"{spec.name}: {j} fault(s) -> worst latency {worst} "
                f"<= d({j}) = {budget}"
            )
            assert worst <= budget


if __name__ == "__main__":
    main()
