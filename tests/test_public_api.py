"""Sanity checks on the public API surface.

Guards the promises the README makes: everything in ``__all__`` is
importable, documented, and the subpackage exports stay in sync with
the top-level re-exports.
"""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.ida",
    "repro.bdisk",
    "repro.sim",
    "repro.rtdb",
    "repro.api",
]

#: The unified Scenario/BroadcastEngine surface and the scheduler
#: registry, pinned so refactors cannot silently drop them.
SCENARIO_API_EXPORTS = {
    "Scenario",
    "FaultSpec",
    "WorkloadSpec",
    "BroadcastEngine",
    "ScenarioResult",
    "run_scenario",
    "run_scenarios",
}
REGISTRY_EXPORTS = {
    "SolveReport",
    "SchedulerEntry",
    "register_scheduler",
    "registered_schedulers",
    "get_scheduler",
    "scheduler_names",
}


class TestTopLevel:
    def test_version_present(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_public_objects_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if obj is None:  # the IDLE sentinel
                continue
            assert getattr(obj, "__doc__", None), (
                f"{name} has no docstring"
            )

    def test_no_private_leaks(self):
        assert not any(name.startswith("_") for name in repro.__all__)

    def test_scenario_api_exports_pinned(self):
        assert SCENARIO_API_EXPORTS <= set(repro.__all__)

    def test_registry_exports_pinned(self):
        assert REGISTRY_EXPORTS <= set(repro.__all__)

    def test_builtin_schedulers_registered_on_import(self):
        assert {
            "harmonic",
            "two-task",
            "three-task",
            "single-reduction",
            "double-reduction",
            "greedy",
            "exact",
        } <= set(repro.scheduler_names())


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 80

    def test_exports_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            obj = getattr(module, name)
            if obj is None:
                continue
            assert getattr(obj, "__doc__", None), (
                f"{module_name}.{name} has no docstring"
            )


class TestErrorHierarchy:
    def test_every_error_subclasses_base(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj.__module__ == "repro.errors"
                and obj is not errors.ReproError
            ):
                assert issubclass(obj, errors.ReproError), name

    def test_catching_base_covers_library_failures(self):
        from repro import FileSpec, ReproError, design_program

        with pytest.raises(ReproError):
            design_program([FileSpec("a", 4, 2)], bandwidth=1)
