"""Tests for the pinwheel algebra rules R0-R5.

Soundness is checked *semantically*: for concrete schedules satisfying a
rule's RHS, the LHS must hold too.  Derivable implication (pc_implies) is
cross-checked against witness schedules.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algebra import (
    pc_implies,
    remove_dominated,
    rule_r0,
    rule_r1,
    rule_r2,
    rule_r4,
    rule_r5,
    strengthen_r3,
)
from repro.core.conditions import pc
from repro.core.schedule import Schedule
from repro.core.verify import satisfies_pc
from repro.core.two_task import mechanical_word
from repro.errors import SpecificationError


def balanced_schedule(ticks: int, length: int) -> Schedule:
    """A schedule giving task 'i' exactly `ticks` evenly-spread slots."""
    word = mechanical_word(ticks, length)
    return Schedule("i" if tick else None for tick in word)


class TestDerivations:
    def test_r0_weakens(self):
        derived = rule_r0(pc("i", 3, 5), x=1, y=2)
        assert derived == pc("i", 2, 7)

    def test_r0_rejects_negative(self):
        with pytest.raises(SpecificationError):
            rule_r0(pc("i", 3, 5), x=-1)

    def test_r1_scales(self):
        assert rule_r1(pc("i", 1, 2), 4) == pc("i", 4, 8)

    def test_r1_rejects_nonpositive(self):
        with pytest.raises(SpecificationError):
            rule_r1(pc("i", 1, 2), 0)

    def test_r2_shrinks(self):
        assert rule_r2(pc("i", 4, 8), 1) == pc("i", 3, 7)

    def test_strengthen_r3(self):
        assert strengthen_r3(pc("i", 4, 9)) == pc("i", 1, 2)

    def test_r4_splits_surplus(self):
        helper, mapping = rule_r4(pc("i", 4, 8), pc("i", 5, 9))
        assert helper.a == 1 and helper.b == 9
        assert mapping[helper.task] == "i"

    def test_r4_rejects_mismatched_tasks(self):
        with pytest.raises(SpecificationError):
            rule_r4(pc("i", 4, 8), pc("j", 5, 9))

    def test_r5_example4(self):
        """Example 4: pc(1,2) covers pc(5,9) with helper pc(1,10)."""
        helper, mapping = rule_r5(pc("i", 1, 2), pc("i", 5, 9))
        assert helper == pc(helper.task, 1, 10)
        assert mapping[helper.task] == "i"

    def test_r5_no_helper_when_covered(self):
        # Target (4, 8) from base (1, 2): n=4, x = 8 - 8 = 0.
        helper, mapping = rule_r5(pc("i", 1, 2), pc("i", 4, 8))
        assert helper is None
        assert mapping == {}


class TestRuleSoundness:
    """Schedules satisfying the RHS satisfy the derived LHS."""

    @given(
        ticks=st.integers(1, 10),
        length=st.integers(10, 30),
        x=st.integers(0, 3),
        y=st.integers(0, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_r0_semantic(self, ticks, length, x, y):
        ticks = min(ticks, length)
        schedule = balanced_schedule(ticks, length)
        # The strongest window condition the schedule provably meets:
        base = pc("i", max(1, ticks * 10 // length or 1), 10)
        if not satisfies_pc(schedule, base):
            return  # density too low for this base; skip
        derived_a = base.a - x
        if derived_a < 1:
            return
        derived = rule_r0(base, x=x, y=y)
        assert satisfies_pc(schedule, derived)

    @given(ticks=st.integers(1, 8), n=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_r1_semantic(self, ticks, n):
        length = 16
        ticks = min(ticks, length)
        schedule = balanced_schedule(ticks, length)
        # A window of ceil(L / k) slots always catches a balanced tick.
        base = pc("i", 1, -(-length // ticks))
        assert satisfies_pc(schedule, base)
        assert satisfies_pc(schedule, rule_r1(base, n))

    @given(ticks=st.integers(2, 10), x=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_r2_semantic(self, ticks, x):
        length = 20
        schedule = balanced_schedule(ticks, length)
        window = length // ticks * 2
        base = pc("i", schedule.min_in_any_window("i", window), window)
        if base.a - x < 1 or base.b - x < base.a - x:
            return
        assert satisfies_pc(schedule, base)
        assert satisfies_pc(schedule, rule_r2(base, x))

    def test_r5_semantic_via_projection(self):
        """Example 4 end to end: schedule pc(1,2) + pc(1,10), project,
        check pc(5,9) holds on the merged sequence."""
        helper, _ = rule_r5(pc("i", 1, 2), pc("i", 5, 9))
        # Schedule: i on even slots, helper on slot 1 mod 10.
        cycle = []
        for t in range(10):
            if t % 2 == 0:
                cycle.append("i")
            elif t % 10 == 1:
                cycle.append(helper.task)
            else:
                cycle.append(None)
        merged = Schedule(cycle).relabel(lambda o: "i")
        assert satisfies_pc(merged, pc("i", 5, 9))
        assert satisfies_pc(merged, pc("i", 1, 2))


class TestImplication:
    def test_reflexive(self):
        assert pc_implies(pc("i", 2, 5), pc("i", 2, 5))

    def test_different_tasks_never_imply(self):
        assert not pc_implies(pc("i", 2, 5), pc("j", 2, 5))

    def test_r2_implication_example6(self):
        """Example 6: pc(2,3) => pc(1,2)."""
        assert pc_implies(pc("i", 2, 3), pc("i", 1, 2))

    def test_example5_merged_condition(self):
        """Example 5: pc(2,3) implies pc(2,5), pc(3,6), pc(4,6)."""
        strong = pc("i", 2, 3)
        for weak in (pc("i", 2, 5), pc("i", 3, 6), pc("i", 4, 6)):
            assert pc_implies(strong, weak)

    def test_not_implied(self):
        assert not pc_implies(pc("i", 1, 2), pc("i", 2, 3))
        assert not pc_implies(pc("i", 1, 3), pc("i", 1, 2))

    def test_r2_shrink_chain(self):
        """pc(5,9) => pc(4,8) (the Example 4 improvement this library
        finds beyond the paper's manipulation)."""
        assert pc_implies(pc("i", 5, 9), pc("i", 4, 8))

    @given(
        a=st.integers(1, 6),
        b=st.integers(1, 30),
        a2=st.integers(1, 6),
        b2=st.integers(1, 30),
    )
    @settings(max_examples=120, deadline=None)
    def test_implication_semantic_soundness(self, a, b, a2, b2):
        """If pc_implies says strong => weak, then every balanced witness
        of strong satisfies weak."""
        if b < a or b2 < a2:
            return
        strong, weak = pc("i", a, b), pc("i", a2, b2)
        if not pc_implies(strong, weak):
            return
        # Balanced witness with exactly density a/b:
        length = b * 4
        schedule = balanced_schedule(a * 4, length)
        assert satisfies_pc(schedule, strong)
        assert satisfies_pc(schedule, weak)


class TestRemoveDominated:
    def test_drops_r0_redundancy_example5(self):
        kept = remove_dominated(
            [pc("i", 2, 5), pc("i", 3, 6), pc("i", 4, 6)]
        )
        assert pc("i", 3, 6) not in kept
        assert pc("i", 4, 6) in kept

    def test_keeps_incomparable(self):
        conditions = [pc("i", 1, 2), pc("i", 2, 3)]
        kept = remove_dominated(conditions)
        assert kept == [pc("i", 2, 3)]  # (2,3) => (1,2) by R2

    def test_deduplicates_equal_conditions(self):
        kept = remove_dominated([pc("i", 1, 2), pc("i", 1, 2)])
        assert kept == [pc("i", 1, 2)]
