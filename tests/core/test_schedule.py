"""Unit tests for cyclic schedules and their window arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core.schedule import IDLE, Schedule
from repro.core.verify import brute_force_min_in_window
from repro.errors import SpecificationError


class TestBasics:
    def test_rejects_empty_cycle(self):
        with pytest.raises(SpecificationError):
            Schedule([])

    def test_cycle_accessors(self):
        schedule = Schedule([1, 2, IDLE, 1])
        assert schedule.cycle_length == 4
        assert schedule.owner_at(0) == 1
        assert schedule.owner_at(2) is IDLE
        assert schedule.owner_at(6) is IDLE  # periodic extension
        assert schedule.owners() == (1, 2)

    def test_owner_at_rejects_negative(self):
        with pytest.raises(SpecificationError):
            Schedule([1]).owner_at(-1)

    def test_idle_count_and_utilization(self):
        schedule = Schedule([1, IDLE, IDLE, 2])
        assert schedule.idle_count() == 2
        assert schedule.utilization() == pytest.approx(0.5)

    def test_example1_schedule_rendering(self):
        """The paper renders {(1,2,5),(2,1,3)} as 1,2,1,*,2,..."""
        schedule = Schedule([1, 2, 1, IDLE, 2])
        assert str(schedule) == "[1, 2, 1, *, 2]"


class TestWindows:
    def test_count_in_window_within_cycle(self):
        schedule = Schedule([1, 2, 1, 2, 1, 2])
        assert schedule.count_in_window(1, 0, 6) == 3
        assert schedule.count_in_window(2, 0, 6) == 3
        assert schedule.count_in_window(1, 1, 2) == 1

    def test_count_in_window_wraps(self):
        schedule = Schedule([1, 2, 2])
        assert schedule.count_in_window(1, 2, 2) == 1  # slots 2,3 -> [2][1]
        assert schedule.count_in_window(2, 2, 4) == 3

    def test_count_in_window_spanning_multiple_cycles(self):
        schedule = Schedule([1, 2])
        assert schedule.count_in_window(1, 0, 10) == 5
        assert schedule.count_in_window(1, 1, 10) == 5

    def test_min_in_any_window(self):
        schedule = Schedule([1, 2, 1, IDLE, 2])
        assert schedule.min_in_any_window(1, 5) == 2
        assert schedule.min_in_any_window(2, 3) == 1
        assert schedule.min_in_any_window(2, 2) == 0

    def test_rejects_bad_window_arguments(self):
        schedule = Schedule([1])
        with pytest.raises(SpecificationError):
            schedule.count_in_window(1, 0, -1)
        with pytest.raises(SpecificationError):
            schedule.count_in_window(1, -1, 1)

    @given(
        cycle=st.lists(st.sampled_from([1, 2, 3, None]), min_size=1, max_size=12),
        owner=st.sampled_from([1, 2, 3]),
        length=st.integers(0, 20),
    )
    def test_min_window_matches_brute_force(self, cycle, owner, length):
        schedule = Schedule(cycle)
        fast = schedule.min_in_any_window(owner, length)
        slow = brute_force_min_in_window(cycle, owner, length)
        assert fast == slow


class TestGaps:
    def test_gaps_sum_to_cycle(self):
        schedule = Schedule([1, 2, 1, 2, 2, 1])
        assert sum(schedule.gaps(1)) == 6
        assert sum(schedule.gaps(2)) == 6

    def test_single_service_gap_is_cycle_length(self):
        schedule = Schedule([1, IDLE, IDLE])
        assert schedule.gaps(1) == (3,)
        assert schedule.max_gap(1) == 3

    def test_absent_owner_has_no_gap(self):
        schedule = Schedule([1])
        assert schedule.gaps(99) == ()
        assert schedule.max_gap(99) is None

    def test_figure6_gaps(self, figure6_program):
        """Delta_A = 2, Delta_B = 3 in the paper's Figure 6 program."""
        schedule = figure6_program.schedule
        assert schedule.max_gap("A") == 2
        assert schedule.max_gap("B") == 3


class TestResidueClasses:
    def test_simple_allocation(self):
        schedule = Schedule.from_residue_classes(
            4, {"x": [(0, 2)], "y": [(1, 4)]}
        )
        assert schedule.cycle == ("x", "y", "x", IDLE)

    def test_collision_rejected(self):
        with pytest.raises(SpecificationError):
            Schedule.from_residue_classes(
                4, {"x": [(0, 2)], "y": [(0, 4)]}
            )

    def test_bad_modulus_rejected(self):
        with pytest.raises(SpecificationError):
            Schedule.from_residue_classes(4, {"x": [(0, 3)]})

    def test_bad_offset_rejected(self):
        with pytest.raises(SpecificationError):
            Schedule.from_residue_classes(4, {"x": [(2, 2)]})


class TestTransforms:
    def test_rotation_preserves_window_minima(self):
        schedule = Schedule([1, 2, 1, IDLE, 2])
        rotated = schedule.rotated(2)
        for owner in (1, 2):
            for window in (2, 3, 5):
                assert rotated.min_in_any_window(owner, window) == (
                    schedule.min_in_any_window(owner, window)
                )

    def test_repeat_preserves_window_minima(self):
        schedule = Schedule([1, 2, IDLE])
        tripled = schedule.repeated(3)
        assert tripled.cycle_length == 9
        assert tripled.min_in_any_window(1, 3) == (
            schedule.min_in_any_window(1, 3)
        )

    def test_repeat_rejects_nonpositive(self):
        with pytest.raises(SpecificationError):
            Schedule([1]).repeated(0)

    def test_relabel_merges_owners(self):
        schedule = Schedule([1, "1-helper", 2])
        merged = schedule.relabel(lambda o: 1 if o == "1-helper" else o)
        assert merged.cycle == (1, 1, 2)

    def test_slots_iterates_infinite_extension(self):
        schedule = Schedule([1, 2])
        assert list(schedule.slots(5)) == [
            (0, 1), (1, 2), (2, 1), (3, 2), (4, 1),
        ]
