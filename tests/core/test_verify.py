"""Unit tests for schedule verification."""

import pytest

from repro.core.conditions import NiceConjunct, bc, pc, virtual_key
from repro.core.schedule import IDLE, Schedule
from repro.core.verify import (
    check_schedule,
    project_to_files,
    satisfies_bc,
    satisfies_pc,
    verify_schedule,
)
from repro.errors import VerificationError


class TestSatisfiesPc:
    def test_alternating_schedule_example1(self):
        """1,2,1,2,... satisfies {(1,1,2), (2,1,3)}."""
        schedule = Schedule([1, 2])
        assert satisfies_pc(schedule, pc(1, 1, 2))
        assert satisfies_pc(schedule, pc(2, 1, 3))

    def test_example1_second_schedule(self):
        """1,2,1,*,2 satisfies {(1,2,5), (2,1,3)}."""
        schedule = Schedule([1, 2, 1, IDLE, 2])
        assert satisfies_pc(schedule, pc(1, 2, 5))
        assert satisfies_pc(schedule, pc(2, 1, 3))

    def test_detects_violation(self):
        schedule = Schedule([1, 1, 2])
        assert not satisfies_pc(schedule, pc(2, 1, 2))

    def test_window_longer_than_cycle(self):
        schedule = Schedule([1, 2, IDLE])
        assert satisfies_pc(schedule, pc(1, 3, 9))
        assert not satisfies_pc(schedule, pc(1, 4, 9))


class TestSatisfiesBc:
    def test_bc_via_expansion(self):
        # pc(2,5) ^ pc(3,6) ^ pc(4,6): schedule 1 two of every 3 slots.
        schedule = Schedule([1, 1, 2])
        assert satisfies_bc(schedule, bc(1, 2, [5, 6, 6]))

    def test_bc_violation_at_higher_fault_level(self):
        # 1 appears 1-in-3: fine for pc(1,3) but not for pc(2,5).
        schedule = Schedule([1, 2, 2])
        assert satisfies_pc(schedule, pc(1, 1, 3))
        assert not satisfies_bc(schedule, bc(1, 1, [3, 5]))


class TestCheckAndVerify:
    def test_report_ok(self):
        schedule = Schedule([1, 2])
        report = check_schedule(schedule, [pc(1, 1, 2), pc(2, 1, 2)])
        assert report.ok
        assert bool(report)
        assert "OK" in str(report)

    def test_report_contains_witness(self):
        schedule = Schedule([1, 1, 2])
        report = check_schedule(schedule, [pc(2, 2, 3)])
        assert not report.ok
        violation = report.violations[0]
        assert violation.required == 2
        assert violation.observed < 2
        assert "violated" in str(violation)

    def test_max_violations_cap(self):
        schedule = Schedule([1])
        report = check_schedule(
            schedule,
            [pc(2, 1, 3), pc(3, 1, 3), pc(4, 1, 3)],
            max_violations=2,
        )
        assert len(report.violations) == 2

    def test_verify_raises_with_message(self):
        schedule = Schedule([1, 1, 2])
        with pytest.raises(VerificationError, match="pc"):
            verify_schedule(schedule, [pc(2, 2, 3)])

    def test_verify_passes_silently(self):
        verify_schedule(Schedule([1, 2]), [pc(1, 1, 2)])

    def test_rejects_unknown_condition_type(self):
        with pytest.raises(TypeError):
            check_schedule(Schedule([1]), ["not a condition"])


class TestProjection:
    def test_project_merges_virtual_tasks(self):
        helper = virtual_key("F", 1)
        conjunct = NiceConjunct(
            (pc("F", 1, 2), pc(helper, 1, 4)), {helper: "F"}
        )
        schedule = Schedule(["F", helper, "F", IDLE])
        projected = project_to_files(schedule, conjunct)
        assert projected.cycle == ("F", "F", "F", IDLE)

    def test_projection_satisfies_merged_condition(self):
        """R4 rationale: base + helper jointly satisfy the target."""
        helper = virtual_key("F", 1)
        conjunct = NiceConjunct(
            (pc("F", 1, 2), pc(helper, 1, 4)), {helper: "F"}
        )
        schedule = Schedule(["F", helper, "F", IDLE])
        projected = project_to_files(schedule, conjunct)
        # base pc(1,2) + helper pc(1,4) => pc(2,4) on the file.
        assert satisfies_pc(projected, pc("F", 2, 4))
