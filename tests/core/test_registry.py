"""Tests for the scheduler registry and the policies over it."""

import pytest

from repro.core.registry import (
    SchedulerEntry,
    get_scheduler,
    plan_for,
    register_scheduler,
    registered_schedulers,
    scheduler_names,
    unregister_scheduler,
)
from repro.core.solver import solve
from repro.core.task import PinwheelSystem
from repro.errors import SpecificationError

BUILTINS = {
    "harmonic",
    "two-task",
    "three-task",
    "single-reduction",
    "double-reduction",
    "greedy",
    "exact",
}


def system_of(*windows):
    return PinwheelSystem.from_pairs([(1, w) for w in windows])


class TestRegistration:
    def test_all_builtins_registered(self):
        assert BUILTINS <= set(scheduler_names())

    def test_entries_sorted_by_cost(self):
        costs = [entry.cost for entry in registered_schedulers()]
        assert costs == sorted(costs)

    def test_lookup_by_name(self):
        entry = get_scheduler("greedy")
        assert isinstance(entry, SchedulerEntry)
        assert entry.name == "greedy"
        assert entry.description

    def test_unknown_name_lists_registered(self):
        with pytest.raises(SpecificationError, match="greedy"):
            get_scheduler("simulated-annealing")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SpecificationError, match="already registered"):
            register_scheduler(
                "greedy", applicable=lambda s: True, cost=1
            )(lambda system, *, verify=True: None)

    def test_register_and_unregister_plugin(self):
        marker = object()

        def scheduler(system, *, verify=True):  # pragma: no cover
            return marker

        register_scheduler(
            "plugin-test",
            applicable=lambda s: False,
            cost=999,
            description="test-only",
        )(scheduler)
        try:
            assert get_scheduler("plugin-test").scheduler is scheduler
        finally:
            unregister_scheduler("plugin-test")
        with pytest.raises(SpecificationError):
            unregister_scheduler("plugin-test")

    def test_str_mentions_kind(self):
        assert "complete" in str(get_scheduler("two-task"))
        assert "heuristic" in str(get_scheduler("greedy"))


class TestAutoPlan:
    """The auto policy reproduces the classic portfolio routing."""

    def test_two_tasks_exclusive(self):
        assert [e.name for e in plan_for(system_of(2, 4))] == ["two-task"]

    def test_three_tasks_exclusive(self):
        assert [e.name for e in plan_for(system_of(3, 4, 5))] == [
            "three-task"
        ]

    def test_big_system_with_exact(self):
        # 41 breaks the divisibility chain, so harmonic stays out.
        names = [e.name for e in plan_for(system_of(5, 10, 20, 41))]
        assert names == [
            "double-reduction", "single-reduction", "greedy", "exact",
        ]

    def test_unit_chain_keeps_harmonic_after_exact(self):
        # exact is not complete (its budget can run out below its
        # applicability bound), so the chain-complete harmonic stays.
        names = [e.name for e in plan_for(system_of(5, 10, 20, 40))]
        assert names == [
            "double-reduction", "single-reduction", "greedy", "exact",
            "harmonic",
        ]

    def test_huge_windows_drop_exact(self):
        system = system_of(1000, 2000, 3000, 4000)
        names = [e.name for e in plan_for(system)]
        assert "exact" not in names
        assert names[:3] == [
            "double-reduction", "single-reduction", "greedy",
        ]

    def test_non_unit_demand_drops_exact(self):
        system = PinwheelSystem.from_pairs([(2, 8), (1, 9), (1, 11), (1, 13)])
        assert "exact" not in {e.name for e in plan_for(system)}

    def test_non_unit_chain_ends_with_harmonic(self):
        system = PinwheelSystem.from_pairs([(2, 8), (1, 16), (1, 32), (1, 64)])
        names = [e.name for e in plan_for(system)]
        assert names[-1] == "harmonic"


class TestPolicies:
    def test_exact_first_front_loads_exact(self):
        names = [
            e.name for e in plan_for(system_of(5, 10, 20, 40), "exact-first")
        ]
        assert names[0] == "exact"
        assert names.count("exact") == 1

    def test_exact_first_without_exact_capability(self):
        system = system_of(1000, 2000, 3000, 4000)
        names = [e.name for e in plan_for(system, "exact-first")]
        assert "exact" not in names

    def test_explicit_list_kept_verbatim(self):
        names = [
            e.name
            for e in plan_for(system_of(5, 10, 20, 40), ("greedy", "exact"))
        ]
        assert names == ["greedy", "exact"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(SpecificationError, match="policy"):
            plan_for(system_of(5, 10, 20, 40), "fastest")

    def test_empty_list_rejected(self):
        with pytest.raises(SpecificationError, match="empty"):
            plan_for(system_of(5, 10, 20, 40), ())


class TestSolveWithPolicies:
    def test_default_policy_matches_seed_routing(self):
        report = solve(system_of(5, 10, 20, 40))
        assert report.method == "double-reduction"
        assert report.attempts == (("double-reduction", "ok"),)

    def test_explicit_policy_drives_method(self):
        report = solve(system_of(5, 10, 20, 40), policy=("greedy",))
        assert report.method == "greedy"
        assert report.attempts == (("greedy", "ok"),)

    def test_exact_first_uses_exact(self):
        report = solve(system_of(4, 8, 8, 8), policy="exact-first")
        assert report.method == "exact"

    def test_inapplicable_entries_skipped_and_recorded(self):
        report = solve(
            system_of(5, 10, 20, 40), policy=("two-task", "greedy")
        )
        assert report.method == "greedy"
        assert report.attempts[0] == ("two-task", "skipped: not applicable")

    def test_harmonic_via_explicit_policy(self):
        report = solve(system_of(2, 4, 8, 8), policy=("harmonic",))
        assert report.method == "harmonic"

    def test_policy_flows_through_nice_conjunct(self):
        from repro.core.conditions import NiceConjunct, pc

        conjunct = NiceConjunct([pc("a", 1, 4), pc("b", 1, 4)])
        from repro.core.solver import solve_nice_conjunct

        report = solve_nice_conjunct(conjunct, policy=("greedy",))
        assert report.method == "greedy"

    def test_registered_plugin_participates(self):
        from repro.core.schedule import Schedule

        def round_robin(system, *, verify=True):
            schedule = Schedule([t.ident for t in system.tasks])
            return schedule

        register_scheduler(
            "round-robin",
            applicable=lambda s: len(s) >= 1,
            cost=5,
            description="test-only round robin",
        )(round_robin)
        try:
            report = solve(
                system_of(4, 4, 4, 4), policy=("round-robin",)
            )
            assert report.method == "round-robin"
        finally:
            unregister_scheduler("round-robin")

    def test_lying_plugin_caught_by_solve_verification(self):
        """solve(verify=True) re-verifies the winner, so a third-party
        scheduler returning an invalid schedule cannot slip through."""
        from repro.core.schedule import Schedule
        from repro.errors import VerificationError

        def starver(system, *, verify=True):
            # Serves only the first task - invalid for everyone else.
            return Schedule([system.tasks[0].ident])

        register_scheduler(
            "starver",
            applicable=lambda s: len(s) >= 1,
            cost=5,
            description="test-only invalid scheduler",
        )(starver)
        try:
            with pytest.raises(VerificationError):
                solve(system_of(4, 4, 4, 4), policy=("starver",))
        finally:
            unregister_scheduler("starver")
