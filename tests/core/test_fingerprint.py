"""Tests for canonical content hashing of pinwheel instances."""

from fractions import Fraction

from repro.core import PinwheelSystem, fingerprint, system_fingerprint
from repro.core.fingerprint import canonical_json


class TestCanonicalForm:
    def test_dict_order_does_not_matter(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint(
            {"b": 2, "a": 1}
        )

    def test_sequence_order_matters(self):
        assert fingerprint([1, 2]) != fingerprint([2, 1])

    def test_tuples_and_lists_coincide(self):
        assert fingerprint((1, 2)) == fingerprint([1, 2])

    def test_fractions_are_tagged(self):
        assert fingerprint(Fraction(1, 2)) != fingerprint(0.5)
        assert fingerprint(Fraction(1, 2)) != fingerprint("1/2")
        assert fingerprint(Fraction(2, 4)) == fingerprint(Fraction(1, 2))

    def test_scalar_types_do_not_collide(self):
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint(None) != fingerprint("null")

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": [1, 2], "a": None}) == (
            '{"a":null,"b":[1,2]}'
        )


class TestSystemFingerprint:
    def test_equal_systems_agree(self):
        one = PinwheelSystem.from_pairs([(1, 2), (1, 3)])
        two = PinwheelSystem.from_pairs([(1, 2), (1, 3)])
        assert system_fingerprint(one) == system_fingerprint(two)

    def test_task_order_is_part_of_identity(self):
        # Scheduler tie-breaking is declaration-order sensitive, so the
        # fingerprint deliberately preserves sequence order.
        forward = PinwheelSystem.from_pairs([(1, 2), (1, 3)])
        backward = PinwheelSystem.from_pairs([(1, 3), (1, 2)])
        assert system_fingerprint(forward) != system_fingerprint(backward)

    def test_parameters_matter(self):
        base = PinwheelSystem.from_pairs([(1, 2), (1, 3)])
        wider = PinwheelSystem.from_pairs([(1, 2), (1, 4)])
        assert system_fingerprint(base) != system_fingerprint(wider)
