"""Tests for the channel partitioner registry (multiprocessor pinwheel)."""

from fractions import Fraction

import pytest

from repro.errors import SpecificationError
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.core.partition import (
    file_density,
    get_partitioner,
    partition_files,
    partitioner_names,
    register_partitioner,
    unregister_partitioner,
)


def specs(*latencies):
    return [
        FileSpec(f"f{i}", 2, latency) for i, latency in enumerate(latencies)
    ]


class TestFileDensity:
    def test_regular_density_is_demand_over_period(self):
        spec = FileSpec("a", 3, 12, fault_budget=1)
        assert file_density(spec) == Fraction(4, 12)

    def test_generalized_density_is_tightest_condition(self):
        spec = GeneralizedFileSpec("g", 2, (8, 20))
        # max((2+0)/8, (2+1)/20) = 1/4
        assert file_density(spec) == Fraction(1, 4)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = partitioner_names()
        for name in ("worst-fit", "first-fit", "round-robin"):
            assert name in names

    def test_unknown_name_lists_registered(self):
        with pytest.raises(SpecificationError, match="worst-fit"):
            get_partitioner("no-such-partitioner")

    def test_register_and_unregister_round_trip(self):
        @register_partitioner("test-trivial", description="everything on 0")
        def trivial(files, k):
            bins = [[] for _ in range(k)]
            for i in range(len(files)):
                bins[0].append(i)
            return tuple(tuple(b) for b in bins)

        try:
            assert "test-trivial" in partitioner_names()
            with pytest.raises(SpecificationError, match="already"):
                register_partitioner("test-trivial")(trivial)
        finally:
            unregister_partitioner("test-trivial")
        assert "test-trivial" not in partitioner_names()


class TestBuiltins:
    def test_round_robin_stripes_catalogue_order(self):
        bins = partition_files(
            specs(10, 10, 10, 10, 10), 2, partitioner="round-robin"
        )
        assert bins == ((0, 2, 4), (1, 3))

    def test_worst_fit_balances_peak_density(self):
        # One heavy file plus light ones: the heavy file must sit alone
        # on its channel, every light file on the other.
        files = specs(4, 40, 40, 40, 40)
        bins = partition_files(files, 2, partitioner="worst-fit")
        assert (0,) in bins
        other = bins[0] if bins[0] != (0,) else bins[1]
        assert other == (1, 2, 3, 4)

    def test_every_index_exactly_once_no_channel_empty(self):
        files = specs(8, 12, 16, 20, 24, 28, 32)
        for name in partitioner_names():
            bins = partition_files(files, 3, partitioner=name)
            flat = sorted(i for b in bins for i in b)
            assert flat == list(range(len(files))), name
            assert all(b for b in bins), name

    def test_deterministic_across_calls(self):
        files = specs(8, 12, 16, 20, 24)
        for name in partitioner_names():
            first = partition_files(files, 2, partitioner=name)
            assert first == partition_files(files, 2, partitioner=name)

    def test_more_channels_than_files_rejected(self):
        with pytest.raises(SpecificationError, match="replicated"):
            partition_files(specs(10, 10), 3)

    def test_invalid_channel_count_rejected(self):
        with pytest.raises(SpecificationError, match=">= 1"):
            partition_files(specs(10, 10), 0)


class TestProposalValidation:
    """partition_files re-validates whatever the partitioner proposed."""

    def _register(self, name, fn):
        register_partitioner(name)(fn)
        return name

    def test_wrong_bin_count_rejected(self):
        name = self._register(
            "test-wrong-k", lambda files, k: ((0,),) * (k + 1)
        )
        try:
            with pytest.raises(SpecificationError, match="channel"):
                partition_files(specs(10, 10), 2, partitioner=name)
        finally:
            unregister_partitioner(name)

    def test_duplicated_index_rejected(self):
        name = self._register(
            "test-dup", lambda files, k: ((0, 1), (0,))
        )
        try:
            with pytest.raises(SpecificationError, match="exactly one"):
                partition_files(specs(10, 10), 2, partitioner=name)
        finally:
            unregister_partitioner(name)

    def test_empty_channel_rejected(self):
        name = self._register(
            "test-empty", lambda files, k: ((0, 1), ())
        )
        try:
            with pytest.raises(SpecificationError, match="empty"):
                partition_files(specs(10, 10), 2, partitioner=name)
        finally:
            unregister_partitioner(name)
