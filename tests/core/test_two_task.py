"""Tests for the complete two-task scheduler (density <= 1)."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conditions import PinwheelCondition
from repro.core.task import PinwheelSystem
from repro.core.two_task import mechanical_word, schedule_two_tasks
from repro.core.verify import verify_schedule
from repro.errors import InfeasibleError, SpecificationError


class TestMechanicalWord:
    def test_tick_count_exact(self):
        word = mechanical_word(3, 8)
        assert sum(word) == 3

    def test_balanced_property(self):
        """Every window of w slots holds floor(w*3/8) or ceil(w*3/8)."""
        length, ticks = 8, 3
        word = mechanical_word(ticks, length)
        doubled = word * 3
        for width in range(1, 2 * length):
            counts = {
                sum(doubled[s : s + width]) for s in range(length)
            }
            low = width * ticks // length
            assert counts <= {low, low + 1}

    def test_rejects_out_of_range(self):
        with pytest.raises(SpecificationError):
            mechanical_word(9, 8)
        with pytest.raises(SpecificationError):
            mechanical_word(-1, 8)

    def test_all_or_nothing(self):
        assert mechanical_word(0, 4) == [False] * 4
        assert mechanical_word(4, 4) == [True] * 4


class TestTwoTaskScheduler:
    def test_example1_first_system(self):
        """{(1,1,2), (2,1,3)} - the paper's alternating example."""
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3)])
        schedule = schedule_two_tasks(system)
        verify_schedule(
            schedule, [PinwheelCondition(1, 1, 2), PinwheelCondition(2, 1, 3)]
        )

    def test_density_exactly_one(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 2)])
        schedule = schedule_two_tasks(system)
        assert schedule.idle_count() == 0

    def test_general_demands(self):
        system = PinwheelSystem.from_pairs([(2, 5), (3, 7)])
        schedule = schedule_two_tasks(system)
        verify_schedule(
            schedule, [PinwheelCondition(1, 2, 5), PinwheelCondition(2, 3, 7)]
        )

    def test_rejects_density_above_one(self):
        system = PinwheelSystem.from_pairs([(2, 3), (1, 2)])
        with pytest.raises(InfeasibleError) as excinfo:
            schedule_two_tasks(system)
        assert excinfo.value.density is not None

    def test_rejects_wrong_task_count(self):
        with pytest.raises(SpecificationError):
            schedule_two_tasks(PinwheelSystem.from_pairs([(1, 2)]))

    @given(
        b1=st.integers(2, 30),
        b2=st.integers(2, 30),
        a1=st.integers(1, 6),
        a2=st.integers(1, 6),
    )
    @settings(max_examples=150, deadline=None)
    def test_completeness_at_density_one(self, b1, b2, a1, a2):
        """Every two-task system with density <= 1 is scheduled -
        the Holte et al. completeness result."""
        if a1 > b1 or a2 > b2:
            return
        if Fraction(a1, b1) + Fraction(a2, b2) > 1:
            return
        system = PinwheelSystem.from_pairs([(a1, b1), (a2, b2)])
        schedule = schedule_two_tasks(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(1, a1, b1), PinwheelCondition(2, a2, b2)],
        )

    def test_randomized_against_lcm_blowup(self):
        rng = random.Random(5)
        for _ in range(20):
            b1, b2 = rng.randint(2, 50), rng.randint(2, 50)
            a1 = rng.randint(1, b1)
            # pick a2 to keep density <= 1
            budget = 1 - Fraction(a1, b1)
            a2 = int(budget * b2)
            if a2 < 1:
                continue
            system = PinwheelSystem.from_pairs([(a1, b1), (a2, b2)])
            schedule = schedule_two_tasks(system)
            assert schedule.cycle_length <= b1 * b2
