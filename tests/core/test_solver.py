"""Tests for the portfolio solver."""

import pytest

from repro.core.conditions import NiceConjunct, pc, virtual_key
from repro.core.solver import solve, solve_nice_conjunct
from repro.core.task import PinwheelSystem
from repro.core.verify import project_to_files, satisfies_pc
from repro.errors import InfeasibleError, SchedulingError


class TestRouting:
    def test_single_task_trivial(self):
        report = solve(PinwheelSystem.from_pairs([(2, 7)]))
        assert report.method == "trivial"
        assert report.schedule.cycle_length == 1

    def test_two_tasks_use_complete_scheduler(self):
        report = solve(PinwheelSystem.from_pairs([(1, 2), (1, 2)]))
        assert report.method == "two-task"

    def test_three_tasks_route(self):
        report = solve(PinwheelSystem.from_pairs([(1, 3), (1, 4), (1, 5)]))
        assert report.method == "three-task"

    def test_many_tasks_route(self):
        report = solve(
            PinwheelSystem.from_pairs([(1, 5), (1, 10), (1, 20), (1, 40)])
        )
        assert report.method in {
            "double-reduction",
            "single-reduction",
            "greedy",
            "exact",
        }

    def test_empty_system_rejected(self):
        with pytest.raises(SchedulingError):
            solve(PinwheelSystem([]))

    def test_density_above_one_rejected_immediately(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 2), (1, 2)])
        with pytest.raises(InfeasibleError):
            solve(system)

    def test_attempts_recorded(self):
        report = solve(
            PinwheelSystem.from_pairs([(1, 4), (1, 8), (1, 9), (1, 18)])
        )
        assert report.attempts[-1][1] == "ok"
        assert report.attempts[-1][0] == report.method

    def test_report_str(self):
        report = solve(PinwheelSystem.from_pairs([(1, 2), (1, 3)]))
        assert "solved by" in str(report)


class TestNiceConjuncts:
    def test_solve_conjunct_with_virtual_tasks(self):
        helper = virtual_key("F", 1)
        conjunct = NiceConjunct(
            (pc("F", 1, 2), pc(helper, 1, 10)), {helper: "F"}
        )
        report = solve_nice_conjunct(conjunct)
        projected = project_to_files(report.schedule, conjunct)
        # Combined sequence satisfies the R5 target pc(5, 9):
        assert satisfies_pc(projected, pc("F", 5, 9))

    def test_example4_end_to_end(self):
        """Schedule the paper's Example 4 conjunct and check bc(4,[8,9])
        semantics on the projected program."""
        helper = virtual_key("i", 1)
        conjunct = NiceConjunct(
            (pc("i", 1, 2), pc(helper, 1, 10)), {helper: "i"}
        )
        report = solve_nice_conjunct(conjunct)
        projected = project_to_files(report.schedule, conjunct)
        assert satisfies_pc(projected, pc("i", 4, 8))
        assert satisfies_pc(projected, pc("i", 5, 9))
