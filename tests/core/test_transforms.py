"""Tests for TR1/TR2 and the Section 4.2 strategy (Examples 2-6)."""

from fractions import Fraction

import pytest

from repro.core.conditions import bc, pc
from repro.core.schedule import Schedule
from repro.core.solver import solve_nice_conjunct
from repro.core.transforms import (
    all_candidates,
    best_nice_conjunct,
    density_report,
    design_nice_system,
    merge_single,
    normalized_vector,
    tr1,
    tr2,
    tr2_reduced,
)
from repro.core.verify import project_to_files, satisfies_bc
from repro.errors import SpecificationError


class TestTr1:
    def test_example2(self):
        """TR1 on bc(5, [100..120]) gives pc(1, 13), density 0.0769."""
        candidate = tr1(bc("i", 5, [100, 105, 110, 115, 120]))
        (condition,) = candidate.conjunct.conditions
        assert condition == pc("i", 1, 13)
        assert candidate.density == Fraction(1, 13)

    def test_example3_tr1_branch(self):
        candidate = tr1(bc("i", 6, [105, 110]))
        (condition,) = candidate.conjunct.conditions
        assert condition == pc("i", 1, 15)

    def test_single_level(self):
        candidate = tr1(bc("i", 2, [10]))
        assert candidate.conjunct.conditions[0] == pc("i", 1, 5)


class TestTr2:
    def test_example3_tr2_branch(self):
        """TR2 on bc(6, [105, 110]): pc(6,105) ^ pc(1,110), 0.0662."""
        candidate = tr2(bc("i", 6, [105, 110]))
        densities = candidate.density
        assert densities == Fraction(6, 105) + Fraction(1, 110)
        assert len(candidate.conjunct) == 2

    def test_mapping_points_to_file(self):
        candidate = tr2(bc("i", 2, [5, 8, 9]))
        helpers = [
            c for c in candidate.conjunct.conditions if c.task != "i"
        ]
        assert len(helpers) == 2
        for helper in helpers:
            assert candidate.conjunct.file_of(helper.task) == "i"

    def test_example6_tr2_density(self):
        """The paper notes TR2 on bc(1, [2,3]) yields density 0.8333."""
        candidate = tr2(bc("i", 1, [2, 3]))
        assert candidate.density == Fraction(1, 2) + Fraction(1, 3)


class TestTr2Reduced:
    def test_example4_manipulation(self):
        """Example 4: base pc(1,2), helper pc(1,10), density 0.6."""
        candidate = tr2_reduced(bc("i", 4, [8, 9]))
        conditions = candidate.conjunct.conditions
        assert conditions[0] == pc("i", 1, 2)
        assert conditions[1].a == 1 and conditions[1].b == 10
        assert candidate.density == Fraction(3, 5)

    def test_helper_skipped_when_base_covers(self):
        # bc(2, [4, 8]): base (1,2); level 1 target (3,8): n=3, x=-2.
        candidate = tr2_reduced(bc("i", 2, [4, 8]))
        assert len(candidate.conjunct) == 1


class TestMergeSingle:
    def test_example5(self):
        """bc(2, [5,6,6]) merges to pc(2,3) - optimal."""
        candidate = merge_single(bc("i", 2, [5, 6, 6]))
        assert candidate is not None
        (condition,) = candidate.conjunct.conditions
        assert condition == pc("i", 2, 3)
        assert candidate.density == bc("i", 2, [5, 6, 6]).density_lower_bound

    def test_example6(self):
        """bc(1, [2,3]) merges to pc(2,3)."""
        candidate = merge_single(bc("i", 1, [2, 3]))
        assert candidate is not None
        (condition,) = candidate.conjunct.conditions
        assert condition == pc("i", 2, 3)

    def test_no_single_condition_for_example3(self):
        assert merge_single(bc("i", 6, [105, 110])) is None


class TestBestAndReport:
    @pytest.mark.parametrize(
        "spec, expected_density",
        [
            # Paper's reported best densities for Examples 2, 3, 5, 6.
            (bc("i", 5, [100, 105, 110, 115, 120]), Fraction(1, 13)),
            (bc("i", 6, [105, 110]), Fraction(6, 105) + Fraction(1, 110)),
            (bc("i", 2, [5, 6, 6]), Fraction(2, 3)),
            (bc("i", 1, [2, 3]), Fraction(2, 3)),
        ],
    )
    def test_paper_examples_reproduced(self, spec, expected_density):
        assert best_nice_conjunct(spec).density == expected_density

    def test_example4_beats_paper(self):
        """Our merge finds pc(5,9) (density 5/9 = the lower bound),
        strictly better than the paper's 0.6 manipulation."""
        spec = bc("i", 4, [8, 9])
        best = best_nice_conjunct(spec)
        assert best.density == Fraction(5, 9)
        assert best.density == spec.density_lower_bound
        assert best.density < Fraction(3, 5)

    def test_density_report_starts_with_lower_bound(self):
        rows = density_report(bc("i", 4, [8, 9]))
        assert rows[0] == ("lower-bound", Fraction(5, 9))
        strategies = [name for name, _ in rows[1:]]
        assert "TR1" in strategies and "TR2" in strategies

    def test_all_candidates_sound(self):
        """Every candidate's scheduled conjunct satisfies the bc."""
        spec = bc("F", 2, [6, 8, 10])
        for candidate in all_candidates(spec):
            report = solve_nice_conjunct(candidate.conjunct)
            program = project_to_files(report.schedule, candidate.conjunct)
            assert satisfies_bc(program, spec), candidate.strategy


class TestNormalizedVector:
    def test_already_monotone_unchanged(self):
        spec = bc("i", 2, [5, 6, 7])
        assert normalized_vector(spec) is spec

    def test_tightens_decreasing_entries(self):
        spec = bc("i", 2, [8, 10, 9])
        tight = normalized_vector(spec)
        assert tight.d == (8, 9, 9)

    def test_tightening_is_sound(self):
        """A schedule for the tightened vector satisfies the original."""
        spec = bc("i", 1, [6, 8, 7])
        tight = normalized_vector(spec)
        best = best_nice_conjunct(tight)
        report = solve_nice_conjunct(best.conjunct)
        program = project_to_files(report.schedule, best.conjunct)
        assert satisfies_bc(program, spec)


class TestDesignNiceSystem:
    def test_combines_files(self):
        conjunct, chosen = design_nice_system(
            [bc("F", 2, [5, 6, 6]), bc("G", 1, [9, 12])]
        )
        assert len(chosen) == 2
        files = {conjunct.file_of(c.task) for c in conjunct.conditions}
        assert files == {"F", "G"}

    def test_rejects_duplicate_files(self):
        with pytest.raises(SpecificationError):
            design_nice_system([bc("F", 1, [4]), bc("F", 1, [5])])

    def test_rejects_empty(self):
        with pytest.raises(SpecificationError):
            design_nice_system([])
