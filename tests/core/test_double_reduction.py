"""Tests for the Sx double-integer reduction scheduler."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conditions import PinwheelCondition
from repro.core.double_reduction import (
    CHAN_CHIN_BOUND,
    allocate_double,
    candidate_bases,
    double_specialize_window,
    schedule_double_reduction,
    specialize_double,
)
from repro.core.task import PinwheelSystem
from repro.core.verify import verify_schedule
from repro.errors import SchedulingError, SpecificationError


class TestSpecializeWindow:
    def test_exact_members_unchanged(self):
        for window in (4, 8, 12, 16, 24):
            assert double_specialize_window(window, 4) == window

    def test_rounds_down_to_base_set(self):
        assert double_specialize_window(11, 4) == 8
        assert double_specialize_window(13, 4) == 12
        assert double_specialize_window(23, 4) == 16

    def test_three_chain_member(self):
        assert double_specialize_window(12, 4) == 12  # 3*4
        assert double_specialize_window(6, 2) == 6    # 3*2

    def test_rejects_window_below_base(self):
        with pytest.raises(SpecificationError):
            double_specialize_window(3, 4)

    def test_loss_bounded_by_three_halves_above_2x(self):
        """From 2x upward, consecutive base-set elements are within 1.5x."""
        base = 5
        for window in range(2 * base, 40 * base):
            specialized = double_specialize_window(window, base)
            assert window / specialized <= 1.5


class TestAllocator:
    def test_pure_chain_only(self):
        system = PinwheelSystem.from_pairs([(1, 4), (1, 8), (2, 8)])
        classes = allocate_double(system, 4)
        assert sum(len(v) for v in classes.values()) == 4

    def test_tri_chain_via_conversion(self):
        system = PinwheelSystem.from_pairs([(1, 4), (1, 12), (1, 12)])
        classes = allocate_double(system, 4)
        moduli = {mod for v in classes.values() for _, mod in v}
        assert 12 in moduli

    def test_exhaustion_raises(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 2), (1, 2)])
        with pytest.raises(SchedulingError):
            allocate_double(system, 2)


class TestScheduler:
    def test_simple_mixed_instance(self):
        system = PinwheelSystem.from_pairs([(1, 4), (1, 6), (1, 11)])
        schedule = schedule_double_reduction(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    def test_beats_single_reduction_regime(self):
        """An instance above density 1/2 that Sx handles."""
        system = PinwheelSystem.from_pairs(
            [(1, 3), (1, 6), (1, 8), (1, 30)]
        )
        assert system.density > CHAN_CHIN_BOUND * 0 + 0.5
        schedule = schedule_double_reduction(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    def test_general_demands(self):
        system = PinwheelSystem.from_pairs([(2, 8), (3, 13), (1, 25)])
        schedule = schedule_double_reduction(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    def test_full_density_pure_chain_schedules(self):
        """{(1,2),(1,2)} has density 1 on a pure chain - schedulable."""
        system = PinwheelSystem.from_pairs([(1, 2), (1, 2)])
        schedule = schedule_double_reduction(system)
        assert schedule.idle_count() == 0

    def test_infeasible_instance_raises(self):
        """{(1,2),(1,3),(1,6)} has density exactly 1 but is infeasible
        (task 1 pins a parity; no odd-slot pattern serves (1,3))."""
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3), (1, 6)])
        with pytest.raises(SchedulingError):
            schedule_double_reduction(system)

    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=80, deadline=None)
    def test_chan_chin_operating_point(self, seed):
        """Random unit-demand instances with density <= 7/10 schedule.

        This validates the substitution documented in DESIGN.md: our Sx
        variant covers the operating point the paper relies on.
        """
        rng = random.Random(seed)
        count = rng.randint(2, 8)
        windows = sorted(rng.randint(4, 100) for _ in range(count))
        system = PinwheelSystem.from_pairs([(1, w) for w in windows])
        if system.density > CHAN_CHIN_BOUND:
            return
        schedule = schedule_double_reduction(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    def test_candidate_bases_include_tri_seeds(self):
        bases = candidate_bases([12, 30])
        assert 4 in bases   # 12 / 3
        assert 10 in bases  # 30 / 3
        assert 12 in bases

    def test_specialize_double_system(self):
        system = PinwheelSystem.from_pairs([(1, 11), (1, 13)])
        specialized = specialize_double(system, 4)
        assert [t.b for t in specialized.tasks] == [8, 12]
