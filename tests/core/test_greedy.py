"""Tests for the greedy EDF scheduler."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conditions import PinwheelCondition
from repro.core.greedy import schedule_greedy
from repro.core.single_reduction import schedule_single_reduction
from repro.core.task import PinwheelSystem
from repro.core.verify import verify_schedule
from repro.errors import SchedulingError


class TestGreedy:
    def test_simple_instance(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 4), (1, 8)])
        schedule = schedule_greedy(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    def test_general_demands_normalized(self):
        system = PinwheelSystem.from_pairs([(2, 6), (1, 4)])
        schedule = schedule_greedy(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(1, 2, 6), PinwheelCondition(2, 1, 4)],
        )

    def test_empty_system_rejected(self):
        with pytest.raises(SchedulingError):
            schedule_greedy(PinwheelSystem([]))

    def test_overloaded_misses_deadline(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 2), (1, 2)])
        with pytest.raises(SchedulingError, match="missed"):
            schedule_greedy(system)

    def test_cycle_length_bounded_by_state_space(self):
        system = PinwheelSystem.from_pairs([(1, 3), (1, 5)])
        schedule = schedule_greedy(system)
        assert schedule.cycle_length <= 3 * 5

    def test_deterministic(self):
        system = PinwheelSystem.from_pairs([(1, 3), (1, 4), (1, 6)])
        assert schedule_greedy(system) == schedule_greedy(system)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_random_low_density_instances(self, seed):
        """EDF handles most density <= 1/2 instances; when its variants
        all fail (EDF is a heuristic, not optimal) the guaranteed
        reduction scheduler must cover the instance instead."""
        rng = random.Random(seed)
        count = rng.randint(2, 6)
        windows = [rng.randint(3, 60) for _ in range(count)]
        system = PinwheelSystem.from_pairs([(1, w) for w in windows])
        if system.density > 0.5:
            return
        try:
            schedule = schedule_greedy(system)
        except SchedulingError:
            schedule = schedule_single_reduction(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    def test_example1_second_system(self):
        """Greedy schedules {(1,2,5), (2,1,3)} (possibly without idling)."""
        system = PinwheelSystem.from_pairs([(2, 5), (1, 3)])
        schedule = schedule_greedy(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(1, 2, 5), PinwheelCondition(2, 1, 3)],
        )
