"""Unit tests for the pinwheel task model."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.task import PinwheelSystem, PinwheelTask
from repro.errors import SpecificationError


class TestPinwheelTask:
    def test_valid_task(self):
        task = PinwheelTask("x", 2, 5)
        assert task.a == 2
        assert task.b == 5
        assert task.density == Fraction(2, 5)

    def test_rejects_zero_requirement(self):
        with pytest.raises(SpecificationError):
            PinwheelTask("x", 0, 5)

    def test_rejects_negative_requirement(self):
        with pytest.raises(SpecificationError):
            PinwheelTask("x", -1, 5)

    def test_rejects_window_smaller_than_requirement(self):
        with pytest.raises(SpecificationError):
            PinwheelTask("x", 6, 5)

    def test_rejects_non_integer_parameters(self):
        with pytest.raises(SpecificationError):
            PinwheelTask("x", 1.5, 5)
        with pytest.raises(SpecificationError):
            PinwheelTask("x", 1, "5")

    def test_allows_full_density_task(self):
        task = PinwheelTask("x", 5, 5)
        assert task.density == 1

    def test_normalized_applies_r3(self):
        assert PinwheelTask("x", 2, 5).normalized() == PinwheelTask("x", 1, 2)
        assert PinwheelTask("x", 3, 9).normalized() == PinwheelTask("x", 1, 3)

    def test_normalized_is_idempotent_on_unit_tasks(self):
        task = PinwheelTask("x", 1, 7)
        assert task.normalized() == task

    def test_with_window_shrinks(self):
        assert PinwheelTask("x", 2, 8).with_window(6).b == 6

    def test_with_window_rejects_growth(self):
        with pytest.raises(SpecificationError):
            PinwheelTask("x", 2, 8).with_window(9)

    @given(a=st.integers(1, 20), extra=st.integers(0, 100))
    def test_density_in_unit_interval(self, a, extra):
        task = PinwheelTask(1, a, a + extra)
        assert 0 < task.density <= 1

    @given(a=st.integers(1, 20), extra=st.integers(0, 100))
    def test_normalization_never_weakens(self, a, extra):
        """R3: the normalized task's density is at least the original's."""
        task = PinwheelTask(1, a, a + extra)
        assert task.normalized().density >= task.density


class TestPinwheelSystem:
    def test_from_pairs_numbers_from_one(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3)])
        assert system.idents() == (1, 2)

    def test_density_sums(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3)])
        assert system.density == Fraction(5, 6)

    def test_rejects_duplicate_idents(self):
        with pytest.raises(SpecificationError):
            PinwheelSystem(
                [PinwheelTask("x", 1, 2), PinwheelTask("x", 1, 3)]
            )

    def test_rejects_non_task_items(self):
        with pytest.raises(SpecificationError):
            PinwheelSystem([(1, 2)])

    def test_task_lookup(self):
        system = PinwheelSystem.from_pairs([(1, 2), (2, 5)])
        assert system.task(2) == PinwheelTask(2, 2, 5)
        with pytest.raises(KeyError):
            system.task(99)

    def test_contains_and_len(self):
        system = PinwheelSystem.from_pairs([(1, 2)])
        assert 1 in system
        assert 2 not in system
        assert len(system) == 1

    def test_density_feasibility_check(self):
        assert PinwheelSystem.from_pairs([(1, 2), (1, 2)]).is_density_feasible()
        assert not PinwheelSystem.from_pairs(
            [(1, 2), (1, 2), (1, 2)]
        ).is_density_feasible()

    def test_normalized_system(self):
        system = PinwheelSystem.from_pairs([(2, 5), (3, 7)])
        normalized = system.normalized()
        assert [t.b for t in normalized.tasks] == [2, 2]

    def test_equality_and_hash(self):
        a = PinwheelSystem.from_pairs([(1, 2), (1, 3)])
        b = PinwheelSystem.from_pairs([(1, 2), (1, 3)])
        assert a == b
        assert hash(a) == hash(b)

    def test_example1_infeasible_family_density(self):
        """Example 1's third system has density 5/6 + 1/n."""
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3), (1, 12)])
        assert system.density == Fraction(5, 6) + Fraction(1, 12)
