"""Cross-scheduler property tests (hypothesis).

The load-bearing invariants of the whole library:

1. every schedule any scheduler returns satisfies every input condition
   (already enforced internally - these tests re-check externally);
2. schedulers agree with the exact decision procedure on feasibility
   (no false "infeasible" claims below their guarantees);
3. specialization/normalization steps only ever strengthen conditions.
"""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.core.conditions import PinwheelCondition
from repro.core.double_reduction import schedule_double_reduction
from repro.core.exact import is_feasible_exact
from repro.core.greedy import schedule_greedy
from repro.core.single_reduction import schedule_single_reduction
from repro.core.solver import solve
from repro.core.task import PinwheelSystem
from repro.core.verify import check_schedule
from repro.errors import InfeasibleError, SchedulingError


def conditions_of(system: PinwheelSystem) -> list[PinwheelCondition]:
    return [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks]


@st.composite
def small_systems(draw) -> PinwheelSystem:
    count = draw(st.integers(2, 5))
    pairs = []
    for _ in range(count):
        b = draw(st.integers(2, 40))
        a = draw(st.integers(1, min(3, b)))
        pairs.append((a, b))
    return PinwheelSystem.from_pairs(pairs)


class TestSchedulerSoundness:
    @given(system=small_systems())
    @settings(max_examples=120, deadline=None)
    def test_portfolio_output_always_verifies(self, system):
        if system.density > 1:
            return
        try:
            report = solve(system)
        except InfeasibleError:
            return  # proven infeasible (e.g. the {2,3,n} family)
        except SchedulingError:
            return  # portfolio gave up; soundness not at issue
        report_check = check_schedule(report.schedule, conditions_of(system))
        assert report_check.ok, str(report_check)

    @given(system=small_systems())
    @settings(max_examples=60, deadline=None)
    def test_individual_schedulers_verify(self, system):
        for scheduler in (
            schedule_double_reduction,
            schedule_single_reduction,
            schedule_greedy,
        ):
            try:
                schedule = scheduler(system, verify=False)
            except SchedulingError:
                continue
            assert check_schedule(schedule, conditions_of(system)).ok


class TestAgreementWithExact:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=80, deadline=None)
    def test_portfolio_never_misses_small_feasible_instances(self, seed):
        """On small unit-demand instances where exact search settles
        feasibility, the portfolio must schedule every feasible one
        whose density is within the Chan & Chin guarantee."""
        rng = random.Random(seed)
        count = rng.randint(2, 4)
        windows = [rng.randint(2, 12) for _ in range(count)]
        system = PinwheelSystem.from_pairs([(1, w) for w in windows])
        if system.density > Fraction(7, 10):
            return
        assert is_feasible_exact(system), (
            "density <= 7/10 must be feasible (Chan & Chin)"
        )
        report = solve(system)
        assert check_schedule(report.schedule, conditions_of(system)).ok


class TestCycleLengths:
    @given(system=small_systems())
    @settings(max_examples=60, deadline=None)
    def test_cycle_divides_window_structure(self, system):
        """Reduction schedules have cycles dividing lcm of specialized
        windows - in particular cycles never dwarf the state space."""
        if system.density > Fraction(1, 2):
            return
        try:
            schedule = schedule_single_reduction(system)
        except SchedulingError:
            return
        product = 1
        for task in system.tasks:
            product *= task.b
        assert schedule.cycle_length <= max(t.b for t in system.tasks) * 2
