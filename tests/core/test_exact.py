"""Tests for the exact lasso-search scheduler (feasibility ground truth)."""

import pytest

from repro.core.conditions import PinwheelCondition
from repro.core.exact import is_feasible_exact, schedule_exact
from repro.core.task import PinwheelSystem
from repro.core.verify import verify_schedule
from repro.errors import SchedulingError


class TestFeasibility:
    def test_example1_first_system_feasible(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3)])
        assert is_feasible_exact(system)

    def test_example1_second_system_feasible(self):
        system = PinwheelSystem.from_pairs([(2, 5), (1, 3)])
        assert is_feasible_exact(system)

    @pytest.mark.parametrize("n", [4, 6, 10, 20, 50])
    def test_example1_third_family_infeasible(self, n):
        """{(1,2), (1,3), (1,n)} is infeasible for every finite n."""
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3), (1, n)])
        assert not is_feasible_exact(system)

    def test_density_above_one_infeasible_shortcut(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 2), (1, 2)])
        assert not is_feasible_exact(system)

    def test_lin_lin_tightness_witness(self):
        """Density 5/6 itself IS feasible for {2,3}-style systems ...

        {(1,2),(1,3)} has density 5/6 and schedules; adding any third
        task breaks it (previous test).  This pins the 5/6 frontier.
        """
        assert is_feasible_exact(PinwheelSystem.from_pairs([(1, 2), (1, 3)]))

    def test_budget_exhaustion_is_inconclusive_error(self):
        system = PinwheelSystem.from_pairs([(1, 50), (1, 60), (1, 70)])
        with pytest.raises(SchedulingError, match="inconclusive"):
            is_feasible_exact(system, state_budget=10)


class TestScheduleConstruction:
    def test_schedule_is_verified(self):
        system = PinwheelSystem.from_pairs([(1, 3), (1, 4), (1, 5)])
        schedule = schedule_exact(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    def test_infeasible_raises_definitive(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3), (1, 8)])
        with pytest.raises(SchedulingError, match="infeasible"):
            schedule_exact(system)

    def test_general_demands_masked_search(self):
        """a > 1 instances go through the bitmask search."""
        system = PinwheelSystem.from_pairs([(2, 4), (1, 4)])
        schedule = schedule_exact(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(1, 2, 4), PinwheelCondition(2, 1, 4)],
        )

    def test_masked_search_detects_infeasibility(self):
        # (3,4) and (1,3): density 3/4 + 1/3 > 1.
        system = PinwheelSystem.from_pairs([(3, 4), (1, 3)])
        with pytest.raises(SchedulingError):
            schedule_exact(system)

    def test_full_density_two_tasks(self):
        system = PinwheelSystem.from_pairs([(1, 2), (2, 4)])
        schedule = schedule_exact(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(1, 1, 2), PinwheelCondition(2, 2, 4)],
        )

    def test_tight_three_task_instance(self):
        """Density 11/12 three-task instance (above 5/6!) that happens
        to be feasible: {(1,2), (1,4), (1,6)} -> 1/2+1/4+1/6 = 11/12."""
        system = PinwheelSystem.from_pairs([(1, 2), (1, 4), (1, 6)])
        schedule = schedule_exact(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )
