"""Tests for the three-task scheduler (Lin & Lin contract)."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conditions import PinwheelCondition
from repro.core.task import PinwheelSystem
from repro.core.three_task import LIN_LIN_BOUND, schedule_three_tasks
from repro.core.verify import verify_schedule
from repro.errors import InfeasibleError, SpecificationError


class TestContract:
    def test_bound_constant(self):
        assert LIN_LIN_BOUND == Fraction(5, 6)

    def test_rejects_wrong_count(self):
        with pytest.raises(SpecificationError):
            schedule_three_tasks(PinwheelSystem.from_pairs([(1, 2), (1, 3)]))

    def test_rejects_density_above_one(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3), (1, 4)])
        with pytest.raises(InfeasibleError):
            schedule_three_tasks(system)

    @pytest.mark.parametrize("n", [8, 12, 30])
    def test_witness_family_proven_infeasible(self, n):
        """{(1,2),(1,3),(1,n)}: density 5/6 + eps, provably infeasible."""
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3), (1, n)])
        with pytest.raises(InfeasibleError):
            schedule_three_tasks(system)

    def test_feasible_above_lin_lin_bound(self):
        """Completeness beyond 5/6 where exact search is tractable:
        {(1,2),(1,4),(1,6)} has density 11/12 and schedules."""
        system = PinwheelSystem.from_pairs([(1, 2), (1, 4), (1, 6)])
        schedule = schedule_three_tasks(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=60, deadline=None)
    def test_lin_lin_guarantee_randomized(self, seed):
        """All density <= 5/6 three-task instances get scheduled."""
        rng = random.Random(seed)
        windows = sorted(rng.randint(3, 60) for _ in range(3))
        system = PinwheelSystem.from_pairs([(1, w) for w in windows])
        if system.density > LIN_LIN_BOUND:
            return
        schedule = schedule_three_tasks(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    def test_general_demands(self):
        system = PinwheelSystem.from_pairs([(2, 8), (1, 6), (1, 12)])
        schedule = schedule_three_tasks(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    def test_large_windows_fall_back_to_reductions(self):
        """Windows too large for exact search still schedule."""
        system = PinwheelSystem.from_pairs(
            [(1, 400), (1, 900), (1, 2000)]
        )
        schedule = schedule_three_tasks(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )
