"""Tests for residue-class allocation on divisibility chains."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conditions import PinwheelCondition
from repro.core.harmonic import (
    allocate_residue_classes,
    chain_specializations,
    is_divisibility_chain,
    schedule_harmonic,
    specialize_to_chain,
)
from repro.core.task import PinwheelSystem, PinwheelTask
from repro.core.verify import verify_schedule
from repro.errors import SchedulingError, SpecificationError


class TestChainPredicate:
    def test_powers_of_two(self):
        assert is_divisibility_chain([2, 4, 8, 8, 16])

    def test_mixed_chain(self):
        assert is_divisibility_chain([3, 6, 12])

    def test_not_a_chain(self):
        assert not is_divisibility_chain([2, 3])
        assert not is_divisibility_chain([4, 6])

    def test_single_window_is_chain(self):
        assert is_divisibility_chain([7])


class TestAllocation:
    def test_simple_allocation(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 4), (1, 4)])
        classes = allocate_residue_classes(system)
        assert len(classes[1]) == 1
        assert classes[1][0][1] == 2  # modulus

    def test_general_demand_gets_multiple_classes(self):
        system = PinwheelSystem.from_pairs([(2, 4), (1, 8)])
        classes = allocate_residue_classes(system)
        assert len(classes[1]) == 2

    def test_rejects_non_chain(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3)])
        with pytest.raises(SpecificationError):
            allocate_residue_classes(system)

    def test_exhaustion_raises(self):
        system = PinwheelSystem.from_pairs([(1, 2), (1, 2), (1, 2)])
        with pytest.raises(SchedulingError, match="exhausted"):
            allocate_residue_classes(system)


class TestScheduleHarmonic:
    def test_full_density_chain(self):
        """Density exactly 1 on a chain is schedulable."""
        system = PinwheelSystem.from_pairs([(1, 2), (1, 4), (1, 4)])
        schedule = schedule_harmonic(system)
        assert schedule.cycle_length == 4
        assert schedule.idle_count() == 0

    def test_rejects_density_above_one(self):
        system = PinwheelSystem.from_pairs([(2, 2), (1, 4)])
        with pytest.raises(SchedulingError):
            schedule_harmonic(system)

    def test_verified_output(self):
        system = PinwheelSystem.from_pairs([(3, 6), (1, 12), (2, 12)])
        schedule = schedule_harmonic(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    @given(
        seed=st.integers(0, 10_000),
        levels=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_chains_schedule_when_density_allows(self, seed, levels):
        rng = random.Random(seed)
        base = rng.choice([2, 3, 4, 5])
        windows = [base * (2 ** rng.randint(0, levels)) for _ in range(5)]
        tasks, used = [], 0.0
        for index, window in enumerate(sorted(windows)):
            if used + 1 / window > 1:
                continue
            tasks.append(PinwheelTask(index, 1, window))
            used += 1 / window
        if not tasks:
            return
        system = PinwheelSystem(tasks)
        schedule = schedule_harmonic(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )


class TestSpecialization:
    def test_chain_specializations(self):
        assert chain_specializations([5, 9, 20], 5) == [5, 5, 20]
        assert chain_specializations([4, 6, 17], 2) == [4, 4, 16]

    def test_rejects_window_below_base(self):
        with pytest.raises(SpecificationError):
            chain_specializations([3], 5)

    def test_specialize_preserves_requirements(self):
        system = PinwheelSystem.from_pairs([(2, 9), (1, 5)])
        specialized = specialize_to_chain(system, 5)
        assert [t.a for t in specialized.tasks] == [2, 1]
        assert [t.b for t in specialized.tasks] == [5, 5]

    def test_specialized_schedule_satisfies_original(self):
        system = PinwheelSystem.from_pairs([(1, 5), (1, 11), (1, 23)])
        specialized = specialize_to_chain(system, 5)
        schedule = schedule_harmonic(specialized)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )
