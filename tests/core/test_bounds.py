"""Tests for Equations 1-2 and the density thresholds."""

import random
from fractions import Fraction

import pytest

from repro.core.bounds import (
    CHAN_CHIN_DENSITY,
    SINGLE_REDUCTION_DENSITY,
    THREE_TASK_DENSITY,
    TWO_TASK_DENSITY,
    bandwidth_overhead,
    density_lower_bound,
    induced_pinwheel_density,
    necessary_bandwidth,
    sufficient_bandwidth_eq1,
    sufficient_bandwidth_eq2,
)
from repro.core.conditions import bc
from repro.errors import SpecificationError


class TestConstants:
    def test_paper_quoted_thresholds(self):
        assert CHAN_CHIN_DENSITY == Fraction(7, 10)
        assert SINGLE_REDUCTION_DENSITY == Fraction(1, 2)
        assert THREE_TASK_DENSITY == Fraction(5, 6)
        assert TWO_TASK_DENSITY == 1


class TestNecessaryBandwidth:
    def test_simple_sum(self):
        # m/T: 5/2 + 3/1 = 5.5
        assert necessary_bandwidth([(5, 2), (3, 1)]) == Fraction(11, 2)

    def test_rejects_empty(self):
        with pytest.raises(SpecificationError):
            necessary_bandwidth([])

    def test_rejects_bad_entries(self):
        with pytest.raises(SpecificationError):
            necessary_bandwidth([(0, 2)])
        with pytest.raises(SpecificationError):
            necessary_bandwidth([(1, 0)])


class TestEquation1:
    def test_ceiling_of_ten_sevenths(self):
        # 10/7 * 5.5 = 55/7 = 7.857... -> 8
        assert sufficient_bandwidth_eq1([(5, 2), (3, 1)]) == 8

    def test_exact_multiple_no_rounding(self):
        # sum m/T = 7/10 -> B = 1.
        assert sufficient_bandwidth_eq1([(7, 10)]) == 1

    def test_overhead_at_most_43_percent_plus_ceiling(self):
        """Eq. 1 overhead is 3/7 plus at most one block of ceiling."""
        rng = random.Random(1)
        for _ in range(50):
            files = [
                (rng.randint(1, 9), rng.randint(1, 20))
                for _ in range(rng.randint(1, 10))
            ]
            overhead = bandwidth_overhead(files)
            necessary = necessary_bandwidth(files)
            assert overhead <= Fraction(3, 7) + 1 / necessary

    def test_density_at_eq1_bandwidth_schedulable(self):
        """At the Eq. 1 bandwidth the induced density is <= 7/10."""
        rng = random.Random(2)
        for _ in range(50):
            files = [
                (rng.randint(1, 9), rng.randint(1, 20))
                for _ in range(rng.randint(1, 10))
            ]
            bandwidth = sufficient_bandwidth_eq1(files)
            assert induced_pinwheel_density(files, bandwidth) <= (
                CHAN_CHIN_DENSITY
            )


class TestEquation2:
    def test_fault_budgets_add(self):
        # (5+2)/2 + (3+1)/1 = 7.5; *10/7 = 75/7 -> 11
        assert sufficient_bandwidth_eq2([(5, 2, 2), (3, 1, 1)]) == 11

    def test_zero_faults_matches_eq1(self):
        files = [(4, 3), (2, 5)]
        with_r = [(m, 0, t) for m, t in files]
        assert sufficient_bandwidth_eq2(with_r) == (
            sufficient_bandwidth_eq1(files)
        )

    def test_rejects_negative_budget(self):
        with pytest.raises(SpecificationError):
            sufficient_bandwidth_eq2([(1, -1, 5)])

    def test_rejects_empty(self):
        with pytest.raises(SpecificationError):
            sufficient_bandwidth_eq2([])


class TestInducedDensity:
    def test_density_scales_inversely(self):
        files = [(5, 2), (3, 1)]
        d1 = induced_pinwheel_density(files, 8)
        d2 = induced_pinwheel_density(files, 16)
        assert d2 == d1 / 2

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(SpecificationError):
            induced_pinwheel_density([(1, 1)], 0)


class TestDensityLowerBound:
    def test_example2(self):
        spec = bc("i", 5, [100, 105, 110, 115, 120])
        assert density_lower_bound(spec) == Fraction(9, 120)

    def test_example3(self):
        spec = bc("i", 6, [105, 110])
        assert density_lower_bound(spec) == Fraction(7, 110)

    def test_dominated_by_last_level_when_tight(self):
        spec = bc("i", 1, [10, 3])
        assert density_lower_bound(spec) == Fraction(2, 3)
