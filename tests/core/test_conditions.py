"""Unit tests for pc / bc conditions and nice conjuncts."""

from fractions import Fraction

import pytest

from repro.core.conditions import (
    BroadcastCondition,
    NiceConjunct,
    PinwheelCondition,
    bc,
    pc,
    virtual_key,
)
from repro.errors import SpecificationError


class TestPinwheelCondition:
    def test_density(self):
        assert pc("f", 2, 5).density == Fraction(2, 5)

    def test_rejects_unsatisfiable(self):
        with pytest.raises(SpecificationError):
            pc("f", 6, 5)

    def test_rejects_zero_requirement(self):
        with pytest.raises(SpecificationError):
            pc("f", 0, 5)

    def test_as_task_round_trip(self):
        task = pc("f", 2, 7).as_task()
        assert (task.ident, task.a, task.b) == ("f", 2, 7)

    def test_str_matches_paper_notation(self):
        assert str(pc("i", 1, 13)) == "pc(i, 1, 13)"


class TestBroadcastCondition:
    def test_expansion_is_equation_3(self):
        """bc(i, m, d) == AND_j pc(i, m+j, d(j))."""
        condition = bc("F", 2, [5, 6, 6])
        assert condition.expand() == (
            pc("F", 2, 5),
            pc("F", 3, 6),
            pc("F", 4, 6),
        )

    def test_r_counts_fault_levels(self):
        assert bc("F", 1, [4]).r == 0
        assert bc("F", 1, [4, 5, 6]).r == 2

    def test_density_lower_bound_example2(self):
        """Example 2: max{...} = 0.075."""
        condition = bc("F", 5, [100, 105, 110, 115, 120])
        assert condition.density_lower_bound == Fraction(9, 120)

    def test_density_lower_bound_example4(self):
        condition = bc("F", 4, [8, 9])
        assert condition.density_lower_bound == Fraction(5, 9)

    def test_rejects_empty_vector(self):
        with pytest.raises(SpecificationError):
            bc("F", 1, [])

    def test_rejects_window_too_small_for_blocks(self):
        # d(1) = 3 cannot carry m + 1 = 4 block slots.
        with pytest.raises(SpecificationError):
            bc("F", 3, [5, 3])

    def test_rejects_bad_size(self):
        with pytest.raises(SpecificationError):
            bc("F", 0, [5])

    def test_str_rendering(self):
        assert str(bc("F", 2, [5, 6])) == "bc(F, 2, [5, 6])"


class TestNiceConjunct:
    def test_density_sums_conditions(self):
        conjunct = NiceConjunct((pc("a", 1, 2), pc("b", 1, 3)))
        assert conjunct.density == Fraction(5, 6)

    def test_rejects_duplicate_tasks(self):
        with pytest.raises(SpecificationError):
            NiceConjunct((pc("a", 1, 2), pc("a", 1, 3)))

    def test_identity_mapping_by_default(self):
        conjunct = NiceConjunct((pc("a", 1, 2),))
        assert conjunct.file_of("a") == "a"

    def test_virtual_mapping(self):
        helper = virtual_key("a", 1)
        conjunct = NiceConjunct(
            (pc("a", 1, 2), pc(helper, 1, 9)), {helper: "a"}
        )
        assert conjunct.file_of(helper) == "a"
        assert conjunct.file_of("a") == "a"

    def test_as_system(self):
        conjunct = NiceConjunct((pc("a", 1, 2), pc("b", 2, 5)))
        system = conjunct.as_system()
        assert len(system) == 2
        assert system.task("b").a == 2

    def test_merge_disjoint(self):
        left = NiceConjunct((pc("a", 1, 2),))
        right = NiceConjunct((pc("b", 1, 3),))
        merged = left.merge(right)
        assert len(merged) == 2
        assert merged.density == Fraction(5, 6)

    def test_merge_rejects_overlap(self):
        left = NiceConjunct((pc("a", 1, 2),))
        right = NiceConjunct((pc("a", 1, 3),))
        with pytest.raises(SpecificationError):
            left.merge(right)

    def test_str_shows_map(self):
        helper = virtual_key("i", 1)
        conjunct = NiceConjunct(
            (pc("i", 4, 8), pc(helper, 1, 9)), {helper: "i"}
        )
        rendered = str(conjunct)
        assert "pc(i, 4, 8)" in rendered
        assert "map(" in rendered


class TestVirtualKey:
    def test_distinct_per_index(self):
        assert virtual_key("f", 1) != virtual_key("f", 2)

    def test_distinct_per_file(self):
        assert virtual_key("f", 1) != virtual_key("g", 1)

    def test_structured_not_stringly(self):
        key = virtual_key("f", 3)
        assert key == ("virtual", "f", 3)
