"""Tests for the Sa single-number reduction scheduler."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conditions import PinwheelCondition
from repro.core.single_reduction import (
    GUARANTEED_DENSITY,
    best_single_base,
    candidate_bases,
    schedule_single_reduction,
    specialize_single,
)
from repro.core.task import PinwheelSystem
from repro.core.verify import verify_schedule
from repro.errors import SchedulingError


class TestCandidates:
    def test_candidates_bounded_by_smallest_window(self):
        bases = candidate_bases([6, 10, 17])
        assert all(base <= 6 for base in bases)
        assert 6 in bases
        assert 5 in bases  # 10 >> 1

    def test_candidates_descending(self):
        bases = candidate_bases([8, 12])
        assert bases == sorted(bases, reverse=True)


class TestSpecialization:
    def test_halving_bound(self):
        """Specialized windows stay within a factor 2 of the original."""
        system = PinwheelSystem.from_pairs([(1, 7), (1, 13), (1, 30)])
        specialized = specialize_single(system, 7)
        for before, after in zip(system.tasks, specialized.tasks):
            assert after.b <= before.b < 2 * after.b

    def test_density_at_most_doubles(self):
        system = PinwheelSystem.from_pairs([(1, 7), (1, 13), (1, 30)])
        base = min(t.b for t in system.tasks)
        specialized = specialize_single(system, base)
        assert specialized.density < 2 * system.density


class TestGuarantee:
    def test_guaranteed_density_constant(self):
        assert GUARANTEED_DENSITY == Fraction(1, 2)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_density_half_always_schedules(self, seed):
        """The classical Sa guarantee, on random instances."""
        rng = random.Random(seed)
        count = rng.randint(2, 7)
        windows = sorted(rng.randint(4, 80) for _ in range(count))
        system = PinwheelSystem.from_pairs([(1, w) for w in windows])
        if system.density > GUARANTEED_DENSITY:
            return
        schedule = schedule_single_reduction(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    def test_general_demands_supported(self):
        system = PinwheelSystem.from_pairs([(2, 12), (3, 24), (1, 9)])
        schedule = schedule_single_reduction(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    def test_base_search_beats_min_window_choice(self):
        """Searching bases can schedule what x = min b cannot."""
        # Windows {6, 7}: base 6 specializes 7 -> 6 (density 1/3);
        # density with base 6: 1/6 + 1/6 = 1/3 fine either way; craft a
        # case where min-window base fails but another works:
        system = PinwheelSystem.from_pairs([(1, 5), (1, 9), (1, 9), (1, 9)])
        # base 5: windows -> 5,5,5,5: density 4/5 <= 1 (OK); base 4
        # would give 4,8,8,8 -> 1/4 + 3/8 = 5/8 (better).
        base, density = best_single_base(system)
        assert density <= Fraction(5, 8)
        schedule = schedule_single_reduction(system)
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )

    def test_failure_raises_scheduling_error(self):
        # Density 0.99 with awkward windows defeats the reduction.
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3), (1, 7), (1, 43)])
        with pytest.raises(SchedulingError):
            schedule_single_reduction(system)

    def test_forced_base_respected(self):
        system = PinwheelSystem.from_pairs([(1, 4), (1, 9)])
        schedule = schedule_single_reduction(system, base=4)
        assert schedule.cycle_length == 8
