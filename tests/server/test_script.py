"""Tests for scripted mutation timelines and the AWACS acceptance run."""

import json

import pytest

from repro.api.scenario import Scenario
from repro.bdisk.file import FileSpec
from repro.errors import SpecificationError
from repro.ida.aida import RedundancyPolicy
from repro.server.asrun import read_asrun
from repro.server.mutations import FaultBudgetBump, ModeChange
from repro.server.script import MutationScript, ScriptEntry, run_script
from repro.sweep.cache import SolveCache
from repro.traffic.spec import TrafficSpec


TIMELINE = [
    {"at_slot": 50, "mutation": {"kind": "mode_change", "mode": "combat"}},
    {
        "at_slot": 300,
        "mutation": {"kind": "mode_change", "mode": "surveillance"},
    },
]


def awacs_scenario() -> Scenario:
    policy = RedundancyPolicy({
        "surveillance": {"pos": 0, "map": 0},
        "combat": {"pos": 1, "map": 0},
    })
    return Scenario(
        name="awacs-live",
        files=(FileSpec("pos", 2, 5), FileSpec("map", 2, 8)),
        redundancy=policy,
        mode="surveillance",
        traffic=TrafficSpec(
            clients=12, requests_per_client=20, duration=600,
            think_time=2, seed=7,
        ),
    )


class TestMutationScript:
    def test_parses_a_timeline_list(self):
        script = MutationScript.from_payload(TIMELINE)
        assert len(script) == 2
        assert script.entries[0].at_slot == 50
        assert script.entries[0].mutation == ModeChange("combat")

    def test_accepts_a_mutations_envelope(self):
        script = MutationScript.from_payload({"mutations": TIMELINE})
        assert len(script) == 2

    def test_round_trips_to_payload(self):
        script = MutationScript.from_payload(TIMELINE)
        assert script.to_payload() == TIMELINE
        again = MutationScript.from_payload(script.to_payload())
        assert again == script

    def test_from_file(self, tmp_path):
        path = tmp_path / "mutations.json"
        path.write_text(json.dumps(TIMELINE))
        assert MutationScript.from_file(path) == MutationScript.from_payload(
            TIMELINE
        )

    def test_missing_file_and_bad_json_rejected(self, tmp_path):
        with pytest.raises(SpecificationError, match="cannot read"):
            MutationScript.from_file(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[{,")
        with pytest.raises(SpecificationError, match="not valid JSON"):
            MutationScript.from_file(bad)

    def test_rejects_out_of_order_slots(self):
        entries = [
            ScriptEntry(300, ModeChange("surveillance")),
            ScriptEntry(50, ModeChange("combat")),
        ]
        with pytest.raises(SpecificationError, match="slot order"):
            MutationScript(tuple(entries))

    @pytest.mark.parametrize(
        "payload, message",
        [
            ("not a list", "must be a list"),
            ([42], "must be an object"),
            ([{"at_slot": -1, "mutation": {"kind": "mode_change"}}],
             "slot >= 0"),
            ([{"at_slot": True, "mutation": {"kind": "mode_change"}}],
             "slot >= 0"),
            ([{"at_slot": 5}], "missing 'mutation'"),
            ([{"at_slot": 5, "mutation": {}, "extra": 1}], "unknown keys"),
            ({"mutations": [], "extra": 1}, "unknown keys"),
        ],
    )
    def test_rejects_malformed_payloads(self, payload, message):
        with pytest.raises(SpecificationError, match=message):
            MutationScript.from_payload(payload)


class TestRunScript:
    def test_awacs_mode_cycle_acceptance(self, tmp_path):
        # The headline acceptance run: surveillance -> combat ->
        # surveillance with live traffic, written to an as-run log.
        log_path = tmp_path / "asrun.jsonl"
        cache = SolveCache()
        result = run_script(
            awacs_scenario(),
            MutationScript.from_payload(TIMELINE),
            cache=cache,
            log_path=log_path,
        )

        # Both splices committed, zero temporal-constraint violations.
        assert len(result.splice_slots) == 2
        assert result.violations == ()
        assert result.splice_slots[0] > 50
        assert result.splice_slots[1] > 300
        # The revert re-solves a design already in the cache.
        assert result.cache_stats["hits"] == 1
        assert result.epochs[2]["cache_hit"]
        assert result.epochs[0]["fingerprint"] == (
            result.epochs[2]["fingerprint"]
        )

        # The as-run log round-trips and diverges from the outgoing
        # plan only at the declared splice slots.
        records = read_asrun(log_path)
        assert result.asrun_path == str(log_path)
        splices = [r for r in records if r["type"] == "splice"]
        assert [r["slot"] for r in splices] == list(result.splice_slots)
        for record in splices:
            witness = record["window"]
            split = record["slot"] - witness["from_slot"]
            assert witness["planned"][:split] == witness["aired"][:split]
            assert witness["planned"][split:] != witness["aired"][split:]
        signoff = records[-1]
        assert signoff["type"] == "sign-off"
        assert signoff["violations"] == 0
        assert signoff["splices"] == list(result.splice_slots)

        # Result payload and report stay JSON-able / printable.
        json.dumps(result.to_dict())
        assert "splices at" in result.report()

    def test_runtime_only_mutation_is_a_guaranteed_hit(self):
        # A fault-budget bump that the design absorbs without a new
        # schedule (budget already covered) still splices; an untouched
        # revert of the same scenario fingerprint hits the cache.
        scenario = awacs_scenario()
        script = MutationScript.from_payload([
            {"at_slot": 10,
             "mutation": {"kind": "mode_change", "mode": "combat"}},
            {"at_slot": 200,
             "mutation": {"kind": "mode_change", "mode": "surveillance"}},
            {"at_slot": 400,
             "mutation": {"kind": "mode_change", "mode": "combat"}},
        ])
        result = run_script(scenario, script)
        assert result.cache_stats == {
            "hits": 2, "misses": 2, "solves": 2, "lock_waits": 0,
            "entries": 2,
        }
        assert len(result.epochs) == 4

    def test_until_bounds_the_run(self):
        scenario = awacs_scenario()
        result = run_script(
            scenario, MutationScript(()), until=100
        )
        assert result.final_slot == 100
        assert result.splice_slots == ()

    def test_unsafe_script_propagates_refusal(self):
        # Removing a file clients still request cannot be spliced into
        # a live run safely when in-flight budgets need it; here the
        # mutation itself is rejected by scenario validation instead
        # (the catalogue floor), which must surface before airing.
        scenario = Scenario(
            name="tiny", files=(FileSpec("a", 2, 6),)
        )
        script = MutationScript.from_payload([
            {"at_slot": 4,
             "mutation": {"kind": "remove_file", "name": "a"}},
        ])
        with pytest.raises(SpecificationError):
            run_script(scenario, script)

    def test_fault_budget_bump_timeline(self):
        # A bump mid-run re-solves to a deeper rotation and splices
        # without tearing the catalogue.
        scenario = Scenario(
            name="bump",
            files=(FileSpec("a", 2, 8), FileSpec("b", 2, 8)),
            traffic=TrafficSpec(
                clients=4, requests_per_client=6, duration=200,
                think_time=3, seed=5,
            ),
        )
        script = MutationScript([
            ScriptEntry(20, FaultBudgetBump("a", 1)),
        ])
        result = run_script(scenario, script)
        assert len(result.splice_slots) == 1
        assert result.violations == ()
        assert result.epochs[1]["data_cycle"] >= (
            result.epochs[0]["data_cycle"]
        )
