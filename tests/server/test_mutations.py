"""Tests for the server's runtime mutations."""

import pytest

from repro.api.scenario import Scenario
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.errors import SpecificationError
from repro.ida.aida import RedundancyPolicy
from repro.server.mutations import (
    AddFile,
    FaultBudgetBump,
    ModeChange,
    MUTATION_KINDS,
    RemoveFile,
    TemporalEdit,
    mutation_from_dict,
)
from repro.rtdb.spec import TemporalItemSpec, TemporalSpec


def plain_scenario(**overrides) -> Scenario:
    params = dict(
        name="plain",
        files=(
            FileSpec("pos", 2, 4),
            FileSpec("map", 2, 8),
        ),
    )
    params.update(overrides)
    return Scenario(**params)


def moded_scenario(mode: str = "surveillance") -> Scenario:
    policy = RedundancyPolicy({
        "surveillance": {"pos": 0, "map": 0},
        "combat": {"pos": 1, "map": 0},
    })
    return plain_scenario(name="moded", redundancy=policy, mode=mode)


def temporal_scenario() -> Scenario:
    temporal = TemporalSpec(
        slot_ms=10,
        items=(
            TemporalItemSpec("tracks", 2, max_age_ms=400),
            TemporalItemSpec("terrain", 2, max_age_ms=4000),
        ),
        update_periods={"tracks": 8, "terrain": 200},
        mode="patrol",
        modes=("patrol", "combat"),
    )
    return Scenario(name="temporal", files=(), temporal=temporal)


class TestModeChange:
    def test_redundancy_mode_switch(self):
        after = ModeChange("combat").apply(moded_scenario())
        assert after.mode == "combat"
        assert after.design_fingerprint() != (
            moded_scenario().design_fingerprint()
        )

    def test_temporal_mode_switch(self):
        after = ModeChange("combat").apply(temporal_scenario())
        assert after.temporal.mode == "combat"

    def test_unknown_mode_rejected(self):
        with pytest.raises(SpecificationError, match="declares modes"):
            ModeChange("stealth").apply(moded_scenario())
        with pytest.raises(SpecificationError, match="declares modes"):
            ModeChange("stealth").apply(temporal_scenario())

    def test_modeless_scenario_rejected(self):
        with pytest.raises(SpecificationError, match="modes do not"):
            ModeChange("combat").apply(plain_scenario())


class TestAddRemove:
    def test_add_plain_file(self):
        mutation = AddFile({"name": "wx", "blocks": 2, "latency": 9})
        after = mutation.apply(plain_scenario())
        assert [spec.name for spec in after.files] == ["pos", "map", "wx"]

    def test_add_generalized_file(self):
        base = plain_scenario(
            files=(GeneralizedFileSpec("a", 2, (4, 8, 12)),)
        )
        mutation = AddFile(
            {"name": "b", "blocks": 2, "latency_vector": [6, 10, 14]}
        )
        after = mutation.apply(base)
        assert after.files[-1].name == "b"

    def test_add_temporal_item_needs_period(self):
        item = {"name": "wx", "blocks": 2, "max_age_ms": 1000}
        with pytest.raises(SpecificationError, match="update_period"):
            AddFile(item).apply(temporal_scenario())
        after = AddFile(item, update_period=50).apply(temporal_scenario())
        assert "wx" in after.temporal.update_periods
        assert any(i.name == "wx" for i in after.temporal.items)

    def test_update_period_rejected_for_plain(self):
        mutation = AddFile(
            {"name": "wx", "blocks": 2, "latency": 9}, update_period=5
        )
        with pytest.raises(SpecificationError, match="temporal"):
            mutation.apply(plain_scenario())

    def test_remove_plain_file(self):
        after = RemoveFile("map").apply(plain_scenario())
        assert [spec.name for spec in after.files] == ["pos"]

    def test_remove_unknown_rejected(self):
        with pytest.raises(SpecificationError, match="not in"):
            RemoveFile("ufo").apply(plain_scenario())

    def test_remove_temporal_item(self):
        after = RemoveFile("terrain").apply(temporal_scenario())
        assert [i.name for i in after.temporal.items] == ["tracks"]
        assert "terrain" not in after.temporal.update_periods

    def test_remove_item_still_read_rejected(self):
        from repro.rtdb.spec import TransactionSpec

        temporal = temporal_scenario().temporal
        temporal = TemporalSpec(
            slot_ms=temporal.slot_ms,
            items=temporal.items,
            update_periods=dict(temporal.update_periods),
            mode=temporal.mode,
            modes=temporal.modes,
            transactions=(
                TransactionSpec("scan", ("terrain",), deadline_slots=500),
            ),
        )
        scenario = Scenario(name="txn", files=(), temporal=temporal)
        with pytest.raises(SpecificationError, match="still read"):
            RemoveFile("terrain").apply(scenario)


class TestFaultBudgetBump:
    def test_plain_bump(self):
        after = FaultBudgetBump("pos", +1).apply(plain_scenario())
        assert after.files[0].fault_budget == 1

    def test_redundancy_bump_edits_active_mode(self):
        before = moded_scenario()
        after = FaultBudgetBump("map", +2).apply(before)
        assert after.redundancy.fault_budget("surveillance", "map") == 2
        # The other mode is untouched.
        assert after.redundancy.fault_budget("combat", "map") == 0

    def test_temporal_bump_edits_active_mode_criticality(self):
        after = FaultBudgetBump("tracks", +1).apply(temporal_scenario())
        item = next(i for i in after.temporal.items if i.name == "tracks")
        assert item.criticality["patrol"] == 1

    def test_negative_budget_rejected(self):
        with pytest.raises(SpecificationError, match="negative"):
            FaultBudgetBump("pos", -1).apply(plain_scenario())

    def test_generalized_rejected(self):
        base = plain_scenario(
            files=(GeneralizedFileSpec("a", 2, (4, 8, 12)),)
        )
        with pytest.raises(SpecificationError, match="latency vectors"):
            FaultBudgetBump("a", +1).apply(base)


class TestTemporalEdit:
    def test_update_period_is_runtime_only(self):
        before = temporal_scenario()
        after = TemporalEdit("tracks", update_period=16).apply(before)
        assert after.temporal.update_periods["tracks"] == 16
        assert after.design_fingerprint() == before.design_fingerprint()

    def test_max_age_redesigns(self):
        before = temporal_scenario()
        after = TemporalEdit("tracks", max_age_ms=800).apply(before)
        item = next(i for i in after.temporal.items if i.name == "tracks")
        assert item.max_age_ms == 800
        assert after.design_fingerprint() != before.design_fingerprint()

    def test_velocity_item_age_edit_rejected(self):
        temporal = TemporalSpec(
            slot_ms=10,
            items=(
                TemporalItemSpec(
                    "air", 2, velocity_kmh=900, accuracy_m=100
                ),
            ),
            update_periods={"air": 24},
        )
        scenario = Scenario(name="v", files=(), temporal=temporal)
        with pytest.raises(SpecificationError, match="velocity"):
            TemporalEdit("air", max_age_ms=100).apply(scenario)

    def test_needs_at_least_one_field(self):
        with pytest.raises(SpecificationError, match="give"):
            TemporalEdit("tracks").apply(temporal_scenario())

    def test_non_temporal_scenario_rejected(self):
        with pytest.raises(SpecificationError, match="no temporal"):
            TemporalEdit("pos", update_period=4).apply(plain_scenario())


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "mutation",
        [
            ModeChange("combat"),
            AddFile({"name": "wx", "blocks": 2, "latency": 9}),
            AddFile({"name": "wx", "blocks": 2, "max_age_ms": 100},
                    update_period=5),
            RemoveFile("map"),
            FaultBudgetBump("pos", -1),
            TemporalEdit("tracks", update_period=16),
            TemporalEdit("tracks", max_age_ms=800),
            TemporalEdit("tracks", update_period=16, max_age_ms=800),
        ],
    )
    def test_round_trip(self, mutation):
        assert mutation_from_dict(mutation.to_dict()) == mutation

    def test_every_kind_is_dispatchable(self):
        assert set(MUTATION_KINDS) == {
            "mode_change", "add_file", "remove_file", "fault_budget",
            "temporal_edit",
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError, match="unknown mutation"):
            mutation_from_dict({"kind": "self_destruct"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecificationError, match="unknown keys"):
            mutation_from_dict({"kind": "mode_change", "mode": "x", "q": 1})

    def test_non_mapping_rejected(self):
        with pytest.raises(SpecificationError, match="mapping"):
            mutation_from_dict(["mode_change"])

    def test_describe_is_a_string(self):
        for mutation in (
            ModeChange("combat"),
            AddFile({"name": "wx", "blocks": 2, "latency": 9}),
            RemoveFile("map"),
            FaultBudgetBump("pos", +1),
            TemporalEdit("tracks", update_period=16),
        ):
            assert isinstance(mutation.describe(), str)
            assert mutation.describe()
