"""Property tests for the splice-safety invariant.

Random program pairs, splice boundaries, and phase rotations, checked
two ways:

* the predicate is *exact*: ``splice_is_safe`` agrees with exhaustively
  walking every possible spanning start against its budget;
* the aired timeline is bit-exact: planned prefix before the boundary,
  the (rotated) incoming program from it - divergence only at the
  declared splice slot.
"""

import random

import pytest

from repro.bdisk.program import BroadcastProgram
from repro.core.schedule import Schedule
from repro.server.airing import AirSchedule, Segment
from repro.server.splice import SpliceRequirement, check_splice


FILES = ("A", "B", "C")


def random_program(rng: random.Random, counts: dict[str, int]):
    """A random cyclic layout airing each file ``counts[f]`` times."""
    slots = [f for f, k in counts.items() for _ in range(k)]
    rng.shuffle(slots)
    return BroadcastProgram(Schedule(slots))


def random_pair(rng: random.Random):
    """Two programs over one catalogue with identical block counts."""
    counts = {
        file: rng.randint(1, 3)
        for file in rng.sample(FILES, rng.randint(2, 3))
    }
    return random_program(rng, counts), random_program(rng, counts), counts


class TestPredicateExactness:
    def test_safe_iff_every_spanning_start_meets_budget(self, rng):
        for _ in range(80):
            out, inc, counts = random_pair(rng)
            cycle = out.data_cycle_length
            boundary = cycle * rng.randint(1, 3)
            offset = rng.randrange(inc.data_cycle_length)
            candidate = AirSchedule([
                Segment(0, out),
                Segment(boundary, inc, phase_offset=offset),
            ])
            file = rng.choice(list(counts))
            m = out.block_count(file)
            budget = rng.randint(m, 3 * cycle)
            requirement = SpliceRequirement(file, m, budget)

            predicate_safe = not check_splice(
                candidate, boundary, [requirement]
            )
            exhaustive_safe = all(
                candidate.retrieve(
                    file, m, start=start, max_slots=budget
                ).completed
                for start in range(
                    max(boundary - budget + 1, 0), boundary
                )
            )
            assert predicate_safe == exhaustive_safe, (
                f"predicate and exhaustive check disagree: file={file} "
                f"m={m} budget={budget} boundary={boundary} "
                f"offset={offset} out={out.render()} inc={inc.render()}"
            )

    def test_self_splice_at_zero_offset_is_always_safe(self, rng):
        # Splicing a program into itself unrotated changes nothing, so
        # any budget the program alone meets everywhere stays met.
        for _ in range(20):
            counts = {
                file: rng.randint(1, 3)
                for file in rng.sample(FILES, 2)
            }
            program = random_program(rng, counts)
            cycle = program.data_cycle_length
            plain = AirSchedule([Segment(0, program)])
            candidate = plain.spliced(Segment(cycle, program))
            for file in counts:
                m = program.block_count(file)
                worst = max(
                    plain.retrieve(file, m, start=s).latency
                    for s in range(cycle)
                )
                assert not check_splice(
                    candidate, cycle,
                    [SpliceRequirement(file, m, worst)],
                )


class TestAsRunBitExactness:
    def test_aired_is_planned_prefix_plus_rotated_suffix(self, rng):
        for _ in range(40):
            out, inc, _ = random_pair(rng)
            cycle = out.data_cycle_length
            boundary = cycle * rng.randint(1, 3)
            offset = rng.randrange(inc.data_cycle_length)
            candidate = AirSchedule([
                Segment(0, out),
                Segment(boundary, inc, phase_offset=offset),
            ])
            for t in range(boundary):
                assert candidate.content(t) == out.index.content(t)
            horizon = boundary + 2 * inc.data_cycle_length
            for t in range(boundary, horizon):
                assert candidate.content(t) == inc.index.content(
                    t - boundary + offset
                )

    def test_divergence_starts_exactly_at_the_boundary(self, rng):
        # When outgoing and incoming differ at the boundary phase, the
        # first divergent slot is the splice slot itself, never earlier.
        for _ in range(40):
            out, inc, _ = random_pair(rng)
            cycle = out.data_cycle_length
            boundary = cycle * rng.randint(1, 3)
            candidate = AirSchedule([
                Segment(0, out), Segment(boundary, inc),
            ])
            plain = AirSchedule([Segment(0, out)])
            divergent = [
                t for t in range(boundary + 2 * cycle)
                if candidate.content(t) != plain.content(t)
            ]
            assert all(t >= boundary for t in divergent)
