"""Tests for the splice-safety predicate and the boundary search."""

import pytest

from repro.bdisk.flat import build_flat_program
from repro.bdisk.program import BroadcastProgram
from repro.core.schedule import Schedule
from repro.errors import SimulationError
from repro.server.airing import AirSchedule, Segment
from repro.server.splice import (
    SpliceRequirement,
    SpliceViolation,
    check_splice,
    critical_starts,
    find_splice_slot,
    splice_is_safe,
)


def spliced_pair(out, inc, *, offset=0):
    cycle = out.data_cycle_length
    return AirSchedule([
        Segment(0, out),
        Segment(cycle, inc, phase_offset=offset),
    ]), cycle


class TestRequirement:
    def test_validates_shape(self):
        with pytest.raises(SimulationError, match="m_needed"):
            SpliceRequirement("A", 0, 5)
        with pytest.raises(SimulationError, match="budget"):
            SpliceRequirement("A", 2, 0)


class TestCriticalStarts:
    def test_window_first_slot_and_post_service_starts(self):
        out = BroadcastProgram(Schedule(["A", "A", "B", "B"]))
        schedule, boundary = spliced_pair(out, out)
        budget = 6
        starts = critical_starts(schedule, "A", budget, boundary)
        lo = max(boundary - budget + 1, 0)
        assert starts[0] == lo
        assert all(lo <= s <= boundary - 1 for s in starts)
        # One extra candidate per outgoing service of A in the window.
        services = [
            t for t in range(lo, boundary - 1)
            if (c := schedule.content(t)) is not None and c.file == "A"
        ]
        assert len(starts) == 1 + len(services)

    def test_clamped_to_segment_start(self):
        out = build_flat_program([("A", 2)])
        schedule, boundary = spliced_pair(out, out)
        starts = critical_starts(schedule, "A", 10 * boundary, boundary)
        assert starts[0] == 0


class TestCheckSplice:
    def test_safe_self_splice(self):
        # Splicing a program into itself at a cycle boundary changes
        # nothing, so every contract the design meets stays met.
        out = build_flat_program([("A", 2), ("B", 2)])
        schedule, boundary = spliced_pair(out, out)
        requirements = [
            SpliceRequirement("A", 2, 5),
            SpliceRequirement("B", 2, 5),
        ]
        assert splice_is_safe(schedule, boundary, requirements)

    def test_crafted_violation_detected(self):
        # Outgoing airs A first; incoming pushes A to the cycle's tail,
        # so a spanning retrieval that held one A block overshoots its
        # budget at rotation 0.
        out = BroadcastProgram(Schedule(["A", "A", "B", "B"]))
        inc = BroadcastProgram(Schedule(["B", "B", "A", "A"]))
        schedule, boundary = spliced_pair(out, inc)
        violations = check_splice(
            schedule, boundary, [SpliceRequirement("A", 2, 4)]
        )
        assert violations
        assert all(isinstance(v, SpliceViolation) for v in violations)
        # The violation is real: replay the reported start directly.
        worst = violations[0]
        replay = schedule.retrieve(
            "A", 2, start=worst.start, max_slots=worst.budget_slots
        )
        assert not replay.completed

    def test_violation_describe_and_to_dict(self):
        violation = SpliceViolation("A", 10, 4, None)
        assert "aborts" in violation.describe()
        assert violation.to_dict()["file"] == "A"
        timed = SpliceViolation("A", 10, 4, 7)
        assert "7 slots" in timed.describe()

    def test_non_splice_slot_rejected(self):
        out = build_flat_program([("A", 2)])
        schedule, boundary = spliced_pair(out, out)
        with pytest.raises(SimulationError, match="not a splice point"):
            check_splice(schedule, boundary + 1, [])


class TestFindSpliceSlot:
    def test_self_splice_lands_on_next_boundary(self):
        out = build_flat_program([("A", 2), ("B", 2)])
        schedule = AirSchedule([Segment(0, out)])
        candidate, boundary, attempts = find_splice_slot(
            schedule, out, not_before=5,
            requirements=[SpliceRequirement("A", 2, 5)],
        )
        cycle = out.data_cycle_length
        assert boundary == -(-5 // cycle) * cycle
        assert attempts == []
        assert candidate.splice_slots == (boundary,)

    def test_phase_rotation_rescues_a_tail_heavy_incoming(self):
        # At offset 0 the incoming's A blocks air too late for spanning
        # starts; some rotation brings them forward.  The search must
        # find it rather than refuse.
        out = BroadcastProgram(Schedule(["A", "A", "B", "B"]))
        inc = BroadcastProgram(Schedule(["B", "B", "A", "A"]))
        schedule = AirSchedule([Segment(0, out)])
        candidate, boundary, _ = find_splice_slot(
            schedule, inc, not_before=1,
            requirements=[SpliceRequirement("A", 2, 4)],
        )
        assert candidate.on_air.phase_offset > 0
        assert splice_is_safe(
            candidate, boundary, [SpliceRequirement("A", 2, 4)]
        )

    def test_refusal_when_nothing_is_safe(self):
        # The incoming program drops B entirely; no boundary or
        # rotation can serve a spanning B retrieval.
        out = build_flat_program([("A", 2), ("B", 2)])
        inc = build_flat_program([("A", 2)])
        schedule = AirSchedule([Segment(0, out)])
        with pytest.raises(SimulationError, match="no safe splice"):
            find_splice_slot(
                schedule, inc, not_before=1,
                requirements=[SpliceRequirement("B", 2, 4)],
                max_boundaries=3,
            )

    def test_provenance_carried_onto_segment(self):
        out = build_flat_program([("A", 2)])
        schedule = AirSchedule([Segment(0, out)])
        candidate, _, _ = find_splice_slot(
            schedule, out, not_before=1,
            requirements=[], fingerprint="f123", label="test splice",
            dispersal={"A": 2},
        )
        segment = candidate.on_air
        assert segment.fingerprint == "f123"
        assert segment.label == "test splice"
        assert segment.dispersal_of("A") == 2
