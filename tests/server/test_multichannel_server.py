"""Online server over a channel set: per-channel schedules and splices."""

import pytest

from repro.api.scenario import ChannelSpec, Scenario
from repro.bdisk.file import FileSpec
from repro.errors import SpecificationError
from repro.server.mutations import AddFile, RemoveFile
from repro.server.server import BroadcastServer
from repro.traffic.spec import TrafficSpec


def multichannel_scenario(**overrides) -> Scenario:
    params = dict(
        name="mc-server",
        files=(
            FileSpec("a", 2, 10),
            FileSpec("b", 3, 15),
            FileSpec("c", 2, 20),
            FileSpec("d", 4, 30),
        ),
        channels=ChannelSpec(count=2),
    )
    params.update(overrides)
    return Scenario(**params)


class TestSignOn:
    def test_one_schedule_per_channel(self):
        server = BroadcastServer(multichannel_scenario())
        assert len(server.schedules) == 2
        assert server.schedule is server.schedules[0]
        carried = set()
        for schedule in server.schedules:
            carried |= set(schedule.on_air.program.files)
        assert carried == {"a", "b", "c", "d"}
        server.close()

    def test_live_traffic_rejected(self):
        scenario = multichannel_scenario(
            traffic=TrafficSpec(clients=2)
        )
        with pytest.raises(SpecificationError, match="channel set"):
            BroadcastServer(scenario)

    def test_epoch_summary_carries_channel_shape(self):
        server = BroadcastServer(multichannel_scenario())
        result = server.close()
        epoch = result.epochs[0]
        assert epoch["channels"] == 2
        assert len(epoch["start_slots"]) == 2


class TestMutations:
    def test_add_then_remove_splices_every_channel(self):
        server = BroadcastServer(multichannel_scenario())
        server.advance(until=10)
        added = server.apply(
            AddFile(file={"name": "e", "blocks": 2, "latency": 25})
        )
        assert len(added["channel_splice_slots"]) == 2
        assert added["splice_slot"] == added["channel_splice_slots"][0]
        removed = server.apply(RemoveFile(name="e"))
        assert len(removed["channel_splice_slots"]) == 2
        result = server.close()
        assert len(result.mutations) == 2
        # The union of per-channel splice slots lands in the result.
        committed = {
            slot
            for record in (added, removed)
            for slot in record["channel_splice_slots"]
        }
        assert committed <= set(result.splice_slots)
        assert result.resplices == 0
        assert result.violations == ()

    def test_epochs_stack_per_mutation(self):
        server = BroadcastServer(multichannel_scenario())
        server.apply(
            AddFile(file={"name": "e", "blocks": 2, "latency": 25})
        )
        result = server.close()
        assert len(result.epochs) == 2
        assert all(epoch["channels"] == 2 for epoch in result.epochs)

    def test_splices_respect_cycle_boundaries_per_channel(self):
        server = BroadcastServer(multichannel_scenario())
        outgoing = server.schedules
        cycles = [
            schedule.on_air.program.data_cycle_length
            for schedule in outgoing
        ]
        record = server.apply(
            AddFile(file={"name": "e", "blocks": 2, "latency": 25})
        )
        for channel, slot in enumerate(record["channel_splice_slots"]):
            start = outgoing[channel].on_air.start
            assert (slot - start) % cycles[channel] == 0
        server.close()

    def test_channel_count_is_fixed_at_sign_on(self):
        import dataclasses

        class DropChannels:
            """A hostile delta that tries to re-plan the topology."""

            def apply(self, scenario):
                return dataclasses.replace(scenario, channels=None)

            def describe(self):
                return "drop-channels"

        server = BroadcastServer(multichannel_scenario())
        with pytest.raises(SpecificationError, match="sign-on"):
            server.apply(DropChannels())
        server.close()


class TestAsRun:
    def test_log_has_per_channel_splice_records(self, tmp_path):
        from repro.server.asrun import read_asrun

        log_path = tmp_path / "asrun.jsonl"
        server = BroadcastServer(
            multichannel_scenario(), log_path=log_path
        )
        server.advance(until=5)
        server.apply(
            AddFile(file={"name": "e", "blocks": 2, "latency": 25})
        )
        result = server.close()
        records = read_asrun(log_path)
        kinds = [r["type"] for r in records]
        assert kinds[0] == "on-air"
        assert kinds[-1] == "sign-off"
        splices = [r for r in records if r["type"] == "splice"]
        assert sorted(r["channel"] for r in splices) == [0, 1]
        mutation = next(r for r in records if r["type"] == "mutation")
        assert mutation["channels"] == 2
        signoff = records[-1]
        assert signoff["splices"] == list(result.splice_slots)
