"""End-to-end tests for the online broadcast server."""

import pytest

from repro.api.engine import BroadcastEngine
from repro.api.scenario import Scenario
from repro.bdisk.file import FileSpec
from repro.errors import SpecificationError
from repro.ida.aida import RedundancyPolicy
from repro.rtdb.spec import TemporalItemSpec, TemporalSpec, TransactionSpec
from repro.server.mutations import AddFile, ModeChange
from repro.server.server import BroadcastServer
from repro.server.sessions import LiveSession, RespliceOutcome
from repro.sweep.cache import SolveCache
from repro.traffic.simulate import simulate_traffic
from repro.traffic.spec import TrafficSpec

import random


def traffic_scenario(**overrides) -> Scenario:
    params = dict(
        name="traffic",
        files=(FileSpec("a", 2, 6), FileSpec("b", 3, 9)),
        traffic=TrafficSpec(
            clients=6, requests_per_client=8, duration=400,
            think_time=5, seed=11,
        ),
    )
    params.update(overrides)
    return Scenario(**params)


def moded_scenario(**overrides) -> Scenario:
    policy = RedundancyPolicy({
        "surveillance": {"pos": 0, "map": 0},
        "combat": {"pos": 1, "map": 0},
    })
    params = dict(
        name="awacs",
        files=(FileSpec("pos", 2, 5), FileSpec("map", 2, 8)),
        redundancy=policy,
        mode="surveillance",
        traffic=TrafficSpec(
            clients=12, requests_per_client=20, duration=600,
            think_time=2, seed=7,
        ),
    )
    params.update(overrides)
    return Scenario(**params)


def temporal_scenario(**overrides) -> Scenario:
    temporal = TemporalSpec(
        slot_ms=10,
        items=(
            TemporalItemSpec("tracks", 2, max_age_ms=400),
            TemporalItemSpec("terrain", 2, max_age_ms=2000),
        ),
        update_periods={"tracks": 10, "terrain": 100},
        transactions=(
            TransactionSpec("scan", ("tracks",), deadline_slots=40),
            TransactionSpec(
                "survey", ("tracks", "terrain"), deadline_slots=200
            ),
        ),
    )
    params = dict(
        name="temporal",
        files=(),
        temporal=temporal,
        traffic=TrafficSpec(
            clients=8, requests_per_client=4, duration=300,
            think_time=4, seed=3,
        ),
    )
    params.update(overrides)
    return Scenario(**params)


class TestZeroMutationParity:
    def test_plain_traffic_is_bit_identical_to_offline(self):
        scenario = traffic_scenario()
        engine = BroadcastEngine(scenario)
        design = engine.design()
        offline = simulate_traffic(
            design.program,
            [spec.name for spec in scenario.files],
            scenario.traffic,
            file_sizes={s.name: s.blocks for s in scenario.files},
            deadlines=engine._deadlines(design),
        )
        server = BroadcastServer(scenario)
        server.advance()
        live = server.close()
        om, lm = offline.metrics, live.metrics
        assert (lm.requests, lm.completions, lm.aborts,
                lm.deadline_misses) == (
            om.requests, om.completions, om.aborts, om.deadline_misses
        )
        assert lm.counts == om.counts
        assert lm.summary() == om.summary()

    def test_temporal_traffic_is_bit_identical_to_offline(self):
        scenario = temporal_scenario()
        engine = BroadcastEngine(scenario)
        design = engine.design()
        offline = simulate_traffic(
            design.program,
            [spec.name for spec in scenario.files],
            scenario.traffic,
            file_sizes={s.name: s.blocks for s in scenario.files},
            deadlines=engine._deadlines(design),
            temporal=scenario.temporal,
        )
        server = BroadcastServer(scenario)
        server.advance()
        live = server.close()
        om, lm = offline.metrics, live.metrics
        assert (lm.requests, lm.completions, lm.aborts,
                lm.deadline_misses) == (
            om.requests, om.completions, om.aborts, om.deadline_misses
        )
        assert (lm.item_reads, lm.stale_reads, lm.torn_discards) == (
            om.item_reads, om.stale_reads, om.torn_discards
        )
        assert lm.counts == om.counts


class TestModeChangeRun:
    def test_mode_cycle_with_live_traffic(self, tmp_path):
        log_path = tmp_path / "asrun.jsonl"
        cache = SolveCache()
        server = BroadcastServer(
            moded_scenario(), cache=cache, log_path=log_path
        )
        server.advance(until=50)
        first = server.apply(ModeChange("combat"))
        assert not first["cache_hit"]
        assert first["violations"] == []
        server.advance(until=300)
        second = server.apply(ModeChange("surveillance"))
        # The revert re-solves an already-seen design: warm-start hit.
        assert second["cache_hit"]
        assert second["violations"] == []
        server.advance()
        result = server.close()

        assert result.splice_slots == (
            first["splice_slot"], second["splice_slot"]
        )
        assert result.violations == ()
        assert len(result.epochs) == 3
        assert result.epochs[2]["cache_hit"]
        assert cache.stats()["hits"] == 1
        # Metrics split per epoch and merge to the whole run.
        per_epoch = sum(e["metrics"]["requests"] for e in result.epochs)
        assert per_epoch == result.metrics.requests
        assert result.metrics.requests == 12 * 20

    def test_epoch_tables_switch_at_the_splice(self):
        server = BroadcastServer(moded_scenario(traffic=None))
        server.advance(until=10)
        record = server.apply(ModeChange("combat"))
        boundary = record["splice_slot"]
        before = server.schedule.segment_at(boundary - 1)
        after = server.schedule.segment_at(boundary)
        assert before.fingerprint != after.fingerprint
        assert server.scenario.mode == "combat"

    def test_mutation_provenance_record_shape(self):
        server = BroadcastServer(moded_scenario(traffic=None))
        record = server.apply(ModeChange("combat"))
        assert record["at_slot"] == 0
        assert record["mutation"]["kind"] == "mode_change"
        assert record["splice_slot"] > 0
        assert isinstance(record["phase_offset"], int)
        assert isinstance(record["rejected_boundaries"], list)


class TestResplice:
    def test_inflight_retrieval_is_rewalked_across_the_splice(
        self, monkeypatch
    ):
        # One client whose retrieval provisionally finishes exactly at
        # the boundary; scheduling the mutation at the same slot (after
        # the issue event) guarantees the request is in flight when the
        # splice commits.  The auto-spawned population is suppressed so
        # the test controls the issue slot: a retrieval of 2 distinct
        # blocks starting on the cycle's last slot must span the next
        # boundary, where find_splice_slot lands (not_before = issue+1).
        monkeypatch.setattr(
            BroadcastServer, "_spawn_traffic", lambda self, scn: None
        )
        scenario = Scenario(
            name="solo",
            files=(FileSpec("a", 2, 4),),
            traffic=TrafficSpec(
                clients=1, requests_per_client=1, duration=10,
                think_time=0, seed=1,
            ),
        )
        server = BroadcastServer(scenario)
        session = LiveSession(
            0, random.Random(1), server, requests=1, think_mean=0
        )
        cycle = server.schedule.on_air.program.data_cycle_length
        issue_at = cycle - 1
        session.begin(server.kernel, issue_at)

        records = []
        server.kernel.schedule(
            issue_at,
            lambda k: records.append(
                server.apply(
                    AddFile({"name": "b", "blocks": 2, "latency": 8})
                )
            ),
        )
        server.advance()
        result = server.close()
        assert records[0]["respliced"] == 1
        assert result.resplices == 1
        # The session still completed and recorded its read.
        assert result.metrics.requests == 1
        assert result.metrics.aborts == 0

    def test_violations_are_accounted_and_logged(self):
        class StubSession:
            pending_finish = 10**9

            def resplice(self, kernel):
                return RespliceOutcome(
                    file="pos", start=40, budget_slots=5,
                    old_latency=4, new_latency=9,
                    was_ok=True, now_ok=False,
                )

        server = BroadcastServer(moded_scenario(traffic=None))
        server.register_inflight(StubSession())
        record = server.apply(ModeChange("combat"))
        assert record["respliced"] == 1
        assert len(record["violations"]) == 1
        assert server.violations[0]["file"] == "pos"
        assert any(
            r["type"] == "violation" for r in server.log.records
        )


class TestLifecycle:
    def test_client_caches_rejected(self):
        scenario = traffic_scenario(
            traffic=TrafficSpec(clients=2, cache="lru")
        )
        with pytest.raises(SpecificationError, match="caches"):
            BroadcastServer(scenario)

    def test_apply_after_close_rejected(self):
        server = BroadcastServer(traffic_scenario(traffic=None))
        server.close()
        with pytest.raises(SpecificationError, match="closed"):
            server.apply(ModeChange("combat"))
        with pytest.raises(SpecificationError, match="closed"):
            server.close()

    def test_asrun_log_records_lifecycle(self, tmp_path):
        from repro.server.asrun import read_asrun

        log_path = tmp_path / "asrun.jsonl"
        server = BroadcastServer(
            moded_scenario(traffic=None), log_path=log_path
        )
        server.advance(until=5)
        server.apply(ModeChange("combat"))
        result = server.close()
        records = read_asrun(log_path)
        kinds = [r["type"] for r in records]
        assert kinds[0] == "on-air"
        assert kinds[-1] == "sign-off"
        assert "mutation" in kinds and "splice" in kinds
        splice = next(r for r in records if r["type"] == "splice")
        witness = splice["window"]
        split = result.splice_slots[0] - witness["from_slot"]
        assert witness["planned"][:split] == witness["aired"][:split]
