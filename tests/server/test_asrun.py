"""Tests for the JSONL as-run log and the planned-vs-aired witness."""

import json

import pytest

from repro.bdisk.flat import build_flat_program
from repro.errors import SpecificationError
from repro.server.airing import AirSchedule, Segment
from repro.server.asrun import AsRunLog, planned_vs_aired, read_asrun


class TestPlannedVsAired:
    def test_agreement_before_divergence_from_boundary(self):
        out = build_flat_program([("A", 2), ("B", 2)])
        inc = build_flat_program([("A", 2), ("B", 2), ("C", 2)])
        cycle = out.data_cycle_length
        boundary = 2 * cycle
        schedule = AirSchedule([Segment(0, out), Segment(boundary, inc)])
        witness = planned_vs_aired(schedule, boundary, window=4)
        assert witness["splice_slot"] == boundary
        split = boundary - witness["from_slot"]
        assert witness["planned"][:split] == witness["aired"][:split]
        assert witness["planned"][split:] != witness["aired"][split:]

    def test_rejects_non_splice_slots(self):
        out = build_flat_program([("A", 2)])
        schedule = AirSchedule([Segment(0, out)])
        with pytest.raises(SpecificationError, match="not a splice"):
            planned_vs_aired(schedule, 0)

    def test_rejects_bad_window(self):
        out = build_flat_program([("A", 2)])
        cycle = out.data_cycle_length
        schedule = AirSchedule([Segment(0, out), Segment(cycle, out)])
        with pytest.raises(SpecificationError, match="window"):
            planned_vs_aired(schedule, cycle, window=0)


class TestAsRunLog:
    def test_in_memory_records(self):
        log = AsRunLog()
        log.record("on-air", 0, scenario="x")
        log.record("sign-off", 9)
        assert [r["type"] for r in log.records] == ["on-air", "sign-off"]
        assert log.path is None

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "run" / "asrun.jsonl"
        with AsRunLog(path) as log:
            log.record("on-air", 0, fingerprint="abc")
            log.record("splice", 16, phase_offset=2)
        records = read_asrun(path)
        assert records == list(log.records)
        assert records[1]["phase_offset"] == 2

    def test_non_json_payload_fails_fast(self):
        log = AsRunLog()
        with pytest.raises(TypeError):
            log.record("on-air", 0, payload=object())
        assert len(log) == 0

    def test_read_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "on-air", "slot": 0}\nnot json\n')
        with pytest.raises(SpecificationError, match="not valid JSON"):
            read_asrun(path)

    def test_read_rejects_missing_envelope(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "on-air"}) + "\n")
        with pytest.raises(SpecificationError, match="'type' and 'slot'"):
            read_asrun(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "sparse.jsonl"
        path.write_text('\n{"type": "sign-off", "slot": 3}\n\n')
        assert read_asrun(path) == [{"type": "sign-off", "slot": 3}]
