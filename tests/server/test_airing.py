"""Tests for the spliced airing timeline and its retrieval walkers."""

import pytest

from repro.bdisk.flat import build_aida_flat_program, build_flat_program
from repro.errors import SimulationError
from repro.rtdb.updates import UpdatingServer, retrieve_versioned
from repro.server.airing import AirSchedule, Segment
from repro.sim.client import retrieve
from repro.sim.faults import BernoulliFaults


def single(program, **kwargs):
    return AirSchedule([Segment(start=0, program=program, **kwargs)])


class TestTimelineShape:
    def test_needs_a_segment(self):
        with pytest.raises(SimulationError, match="at least one"):
            AirSchedule([])

    def test_starts_strictly_increase(self, figure5_program):
        with pytest.raises(SimulationError, match="strictly increasing"):
            AirSchedule([
                Segment(0, figure5_program),
                Segment(0, figure5_program),
            ])

    def test_splice_off_cycle_boundary_rejected(self, figure5_program):
        cycle = figure5_program.data_cycle_length
        with pytest.raises(SimulationError, match="data-cycle boundary"):
            AirSchedule([
                Segment(0, figure5_program),
                Segment(cycle + 1, figure5_program),
            ])

    def test_spliced_returns_a_new_timeline(self, figure5_program):
        base = single(figure5_program)
        cycle = figure5_program.data_cycle_length
        grown = base.spliced(Segment(cycle, figure5_program))
        assert len(base) == 1 and len(grown) == 2
        assert grown.splice_slots == (cycle,)

    def test_epoch_of_before_timeline_rejected(self, figure5_program):
        with pytest.raises(SimulationError, match="precedes"):
            single(figure5_program).epoch_of(-1)

    def test_content_matches_program_in_one_segment(self, figure5_program):
        schedule = single(figure5_program)
        for t in range(2 * figure5_program.data_cycle_length):
            assert schedule.content(t) == figure5_program.index.content(t)

    def test_phase_offset_rotates_content(self, figure5_program):
        cycle = figure5_program.data_cycle_length
        schedule = AirSchedule([
            Segment(0, figure5_program),
            Segment(cycle, figure5_program, phase_offset=3),
        ])
        for t in range(cycle, 2 * cycle):
            assert schedule.content(t) == figure5_program.index.content(
                t - cycle + 3
            )

    def test_phase_offset_outside_cycle_rejected(self, figure5_program):
        cycle = figure5_program.data_cycle_length
        with pytest.raises(SimulationError, match="phase offset"):
            Segment(0, figure5_program, phase_offset=cycle)


class TestSingleSegmentEquivalence:
    def test_plain_retrieve_matches_offline(self, figure6_program):
        schedule = single(figure6_program)
        for file, m in (("A", 5), ("B", 3)):
            for start in range(figure6_program.data_cycle_length):
                offline = retrieve(
                    figure6_program, file, m, start=start
                )
                live = schedule.retrieve(file, m, start=start)
                assert live.completed == offline.completed
                assert live.finish_slot == offline.finish_slot
                assert live.latency == offline.latency
                assert live.segments_crossed == 0

    def test_plain_retrieve_matches_offline_under_faults(
        self, figure6_program
    ):
        faults = BernoulliFaults(0.2, seed=42)
        schedule = single(figure6_program)
        for start in range(0, 60, 7):
            offline = retrieve(
                figure6_program, "A", 5, start=start,
                faults=BernoulliFaults(0.2, seed=42),
            )
            live = schedule.retrieve("A", 5, start=start, faults=faults)
            assert (live.completed, live.finish_slot, live.latency) == (
                offline.completed, offline.finish_slot, offline.latency
            )

    def test_versioned_matches_offline(self, figure6_program):
        periods = {"A": 12, "B": 30}
        server = UpdatingServer(periods)
        schedule = single(figure6_program, update_periods=periods)
        for start in range(0, 48, 5):
            offline = retrieve_versioned(
                figure6_program, server, "A", 5, start=start
            )
            live = schedule.retrieve_versioned("A", 5, start=start)
            assert live.completed == offline.completed
            assert live.latency == offline.latency
            assert live.age_at_completion == offline.age_at_completion
            assert live.torn_discards == offline.torn_discards

    def test_unknown_file_rejected(self, figure5_program):
        with pytest.raises(SimulationError, match="not broadcast"):
            single(figure5_program).retrieve("Z", 1, start=0)


class TestCrossSegmentRules:
    def test_walk_crosses_a_splice(self):
        # Outgoing airs A and B; incoming drops B, so a B retrieval
        # started late in the outgoing tenure waits forever.
        out = build_flat_program([("A", 2), ("B", 2)])
        inc = build_flat_program([("A", 2)])
        cycle = out.data_cycle_length
        schedule = AirSchedule([Segment(0, out), Segment(cycle, inc)])
        spanning = schedule.retrieve("A", 2, start=cycle - 1)
        assert spanning.completed and spanning.segments_crossed == 1

    def test_file_absent_from_incoming_never_completes(self):
        out = build_flat_program([("A", 2), ("B", 2)])
        inc = build_flat_program([("A", 2)])
        cycle = out.data_cycle_length
        schedule = AirSchedule([Segment(0, out), Segment(cycle, inc)])
        result = schedule.retrieve("B", 2, start=cycle - 1, max_slots=40)
        assert not result.completed

    def test_file_waits_through_to_a_later_segment(self):
        out = build_flat_program([("A", 2)])
        inc = build_flat_program([("A", 2), ("B", 2)])
        cycle = out.data_cycle_length
        schedule = AirSchedule([Segment(0, out), Segment(cycle, inc)])
        result = schedule.retrieve("B", 2, start=0, max_slots=4 * cycle)
        assert result.completed and result.segments_crossed == 1

    def test_same_dispersal_survives_fault_budget_change(self):
        # n grows 2 -> 3 but m stays 2: held blocks remain usable.
        out = build_aida_flat_program([("A", 2, 2)])
        inc = build_aida_flat_program([("A", 2, 3)])
        cycle = out.data_cycle_length
        schedule = AirSchedule([
            Segment(0, out, dispersal={"A": 2}),
            Segment(cycle, inc, dispersal={"A": 2}),
        ])
        spanning = schedule.retrieve("A", 2, start=cycle - 1)
        assert spanning.completed
        assert spanning.torn_discards == 0
        assert spanning.segments_crossed == 1

    def test_redispersal_discards_held_blocks(self):
        out = build_aida_flat_program([("A", 2, 2)])
        inc = build_aida_flat_program([("A", 3, 3)])
        cycle = out.data_cycle_length
        schedule = AirSchedule([
            Segment(0, out, dispersal={"A": 2}),
            Segment(cycle, inc, dispersal={"A": 3}),
        ])
        spanning = schedule.retrieve("A", 3, start=cycle - 1)
        assert spanning.torn_discards >= 1

    def test_block_count_fallback_without_dispersal(self):
        # Without declared dispersal the walker falls back to the aired
        # block count, conservatively discarding on any change.
        out = build_aida_flat_program([("A", 2, 2)])
        inc = build_aida_flat_program([("A", 2, 3)])
        cycle = out.data_cycle_length
        schedule = AirSchedule([Segment(0, out), Segment(cycle, inc)])
        spanning = schedule.retrieve("A", 2, start=cycle - 1)
        assert spanning.torn_discards >= 1

    def test_version_clock_is_wall_clock_across_splice(self):
        out = build_flat_program([("A", 2)])
        inc = build_flat_program([("A", 2)])
        cycle = out.data_cycle_length
        periods = {"A": 1000}  # no version boundary inside the walk
        schedule = AirSchedule([
            Segment(0, out, update_periods=periods),
            Segment(cycle, inc, update_periods=periods),
        ])
        spanning = schedule.retrieve_versioned("A", 2, start=cycle - 1)
        assert spanning.completed
        assert spanning.torn_discards == 0
        # Age is measured from the absolute version write slot (0).
        assert spanning.age_at_completion == spanning.finish_slot

    def test_faults_key_on_absolute_slots(self):
        out = build_flat_program([("A", 2)])
        cycle = out.data_cycle_length
        spliced = AirSchedule([Segment(0, out), Segment(cycle, out)])
        plain = AirSchedule([Segment(0, out)])
        faults = BernoulliFaults(0.3, seed=9)
        for start in range(0, 2 * cycle, 3):
            a = spliced.retrieve(
                "A", 2, start=start, faults=BernoulliFaults(0.3, seed=9)
            )
            b = plain.retrieve("A", 2, start=start, faults=faults)
            assert (a.completed, a.finish_slot) == (
                b.completed, b.finish_slot
            )
