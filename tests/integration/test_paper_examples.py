"""Integration tests replaying every worked example in the paper.

Each test cites the paper artifact it reproduces; EXPERIMENTS.md holds the
full paper-vs-measured record.
"""

from fractions import Fraction

import pytest

from repro.core.conditions import bc
from repro.core.exact import is_feasible_exact
from repro.core.schedule import IDLE, Schedule
from repro.core.solver import solve
from repro.core.task import PinwheelSystem
from repro.core.transforms import all_candidates, best_nice_conjunct
from repro.core.verify import check_schedule, satisfies_pc
from repro.core.conditions import pc
from repro.bdisk.flat import build_aida_flat_program, build_flat_program
from repro.core.bounds import (
    necessary_bandwidth,
    sufficient_bandwidth_eq1,
    sufficient_bandwidth_eq2,
)
from repro.sim.delay import worst_case_delay, worst_case_delay_table


class TestExample1:
    """Section 3.1, Example 1: three pinwheel task systems."""

    def test_first_system_schedule(self):
        """{(1,1,2),(2,1,3)}: the paper's schedule 1,2,1,2,..."""
        reference = Schedule([1, 2])
        assert check_schedule(
            reference, [pc(1, 1, 2), pc(2, 1, 3)]
        ).ok
        report = solve(PinwheelSystem.from_pairs([(1, 2), (1, 3)]))
        assert report.schedule.cycle_length >= 1

    def test_second_system_schedule(self):
        """{(1,2,5),(2,1,3)}: the paper's 1,2,1,*,2 cycle."""
        reference = Schedule([1, 2, 1, IDLE, 2])
        assert check_schedule(
            reference, [pc(1, 2, 5), pc(2, 1, 3)]
        ).ok
        report = solve(PinwheelSystem.from_pairs([(2, 5), (1, 3)]))
        assert check_schedule(
            report.schedule, [pc(1, 2, 5), pc(2, 1, 3)]
        ).ok

    @pytest.mark.parametrize("n", [6, 7, 20, 60])
    def test_third_system_infeasible_for_any_n(self, n):
        """{(1,1,2),(2,1,3),(3,1,n)} cannot be scheduled."""
        system = PinwheelSystem.from_pairs([(1, 2), (1, 3), (1, n)])
        assert not is_feasible_exact(system)


class TestSection32Bandwidth:
    """Equations 1 and 2 on the paper's own terms."""

    def test_eq1_within_43_percent(self):
        files = [(5, 2), (3, 1), (8, 7)]
        necessary = necessary_bandwidth(files)
        sufficient = sufficient_bandwidth_eq1(files)
        assert Fraction(sufficient) < necessary * Fraction(10, 7) + 1

    def test_eq2_reduces_to_eq1_without_faults(self):
        files = [(5, 2), (3, 1)]
        assert sufficient_bandwidth_eq2(
            [(m, 0, t) for m, t in files]
        ) == sufficient_bandwidth_eq1(files)


@pytest.mark.parametrize(
    "spec, paper_lb, paper_best",
    [
        # (bc, paper's density lower bound, paper's best density)
        (bc("i", 5, [100, 105, 110, 115, 120]), Fraction(3, 40), Fraction(1, 13)),
        (bc("i", 6, [105, 110]), Fraction(7, 110), Fraction(6, 105) + Fraction(1, 110)),
        (bc("i", 2, [5, 6, 6]), Fraction(2, 3), Fraction(2, 3)),
        (bc("i", 1, [2, 3]), Fraction(2, 3), Fraction(2, 3)),
    ],
)
class TestExamples2356:
    """Section 4.2, Examples 2, 3, 5, 6: exact density reproduction."""

    def test_lower_bound_matches_paper(self, spec, paper_lb, paper_best):
        assert spec.density_lower_bound == paper_lb

    def test_best_density_matches_paper(self, spec, paper_lb, paper_best):
        assert best_nice_conjunct(spec).density == paper_best


class TestExample4:
    """Section 4.2, Example 4 - where this library improves on the paper."""

    def test_papers_manipulation_reproduced(self):
        """The paper's TR2+R5 route (density 0.6) is among candidates."""
        densities = {
            c.strategy: c.density for c in all_candidates(bc("i", 4, [8, 9]))
        }
        assert densities["TR2-reduced"] == Fraction(3, 5)
        assert densities["TR1"] == Fraction(1, 1)
        assert densities["TR2"] == Fraction(4, 8) + Fraction(1, 9)

    def test_merge_reaches_lower_bound(self):
        """pc(5,9) alone implies bc(4,[8,9]) - density 5/9 < 0.6."""
        best = best_nice_conjunct(bc("i", 4, [8, 9]))
        assert best.density == Fraction(5, 9)
        (condition,) = best.conjunct.conditions
        assert (condition.a, condition.b) == (5, 9)

    def test_merged_condition_semantically_sufficient(self):
        """A schedule meeting pc(5,9) meets both expanded conditions."""
        report = solve(PinwheelSystem.from_pairs([(5, 9)]))
        assert satisfies_pc(report.schedule, pc(1, 4, 8))
        assert satisfies_pc(report.schedule, pc(1, 5, 9))


class TestFigures5To7:
    """Section 2.3: the toy programs and the delay table."""

    def test_figure5_layout(self, figure5_program):
        assert figure5_program.render() == (
            "A'1 B'1 A'2 A'3 B'2 A'4 B'3 A'5"
        )

    def test_figure6_layout_and_cycles(self, figure6_program):
        assert figure6_program.broadcast_period == 8
        assert figure6_program.data_cycle_length == 16
        assert figure6_program.render() == (
            "A'1 B'1 A'2 A'3 B'2 A'4 B'3 A'5 "
            "A'6 B'4 A'7 A'8 B'5 A'9 B'6 A'10"
        )

    def test_figure7_without_ida_column_exact(
        self, figure5_program, figure6_program
    ):
        """Paper: 0, 8, 16, 24, 32, 40."""
        rows = worst_case_delay_table(
            figure6_program, figure5_program, {"A": 5, "B": 3}, 5
        )
        assert [r.without_ida for r in rows] == [0, 8, 16, 24, 32, 40]

    def test_figure7_with_ida_file_a_near_paper(self, figure6_program):
        """Paper's estimates: 0,3,4,6,7,8; exact: 0,2,4,5,7,8.

        Same shape (roughly Delta * r with Delta = 2), same r = 5 value.
        """
        exact = [
            worst_case_delay(figure6_program, "A", 5, r) for r in range(6)
        ]
        paper = [0, 3, 4, 6, 7, 8]
        assert exact == [0, 2, 4, 5, 7, 8]
        for ours, theirs in zip(exact, paper):
            assert abs(ours - theirs) <= 1

    def test_lemma_speedup_ratio(self, figure5_program, figure6_program):
        """The paper's headline: AIDA cuts per-error delay from Pi to
        Delta - here 8 vs 2-3, a ~3-4x speedup."""
        rows = worst_case_delay_table(
            figure6_program, figure5_program, {"A": 5, "B": 3}, 3
        )
        for row in rows[1:]:
            assert row.without_ida / row.with_ida >= 8 / 3
