"""End-to-end integration: dispersal -> program -> faulty channel -> commit.

These tests exercise the whole stack the way the paper's motivating
scenarios would: design a broadcast disk for a real-time database, put
dispersed blocks on the air, lose some of them, and check that clients
still reconstruct in time.
"""

import itertools

import pytest

from repro.bdisk.builder import design_generalized_program, design_program
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.ida.aida import AidaEncoder
from repro.ida.blocks import decode_block, encode_block
from repro.ida.dispersal import reconstruct
from repro.sim.client import retrieve
from repro.sim.faults import AdversarialFaults, BernoulliFaults
from repro.rtdb.items import DataItem
from repro.rtdb.modes import ModeManager, OperationMode
from repro.rtdb.temporal import TemporalConstraint


class TestDispersedDeliveryOverProgram:
    def test_blocks_on_air_reconstruct_payload(self):
        """Walk the designed program, decode actual dispersed blocks,
        reconstruct the file from whatever a retrieval collected."""
        payload = b"IVHS traffic incident report " * 7
        spec = FileSpec("traffic", 4, 6, fault_budget=2, data=payload)
        design = design_program([spec])
        program = design.program

        encoder = AidaEncoder(
            "traffic", payload, m=4, n_max=program.block_count("traffic")
        )
        on_air = encoder.blocks

        result = retrieve(program, "traffic", 4)
        collected = [on_air[index] for index in result.received[:4]]
        assert reconstruct(collected) == payload

    def test_adversarial_losses_within_budget_still_reconstruct(self):
        payload = b"position vector " * 16
        spec = FileSpec("pos", 3, 5, fault_budget=2, data=payload)
        design = design_program([spec])
        program = design.program
        bandwidth = design.bandwidth_plan.bandwidth
        window = bandwidth * spec.latency

        encoder = AidaEncoder(
            "pos", payload, m=3, n_max=program.block_count("pos")
        )
        on_air = encoder.blocks

        # Adversary kills any 2 of the file's slots inside the window.
        slots = [
            t
            for t in range(window)
            if (c := program.slot_content(t)) and c.file == "pos"
        ]
        for lost in itertools.combinations(slots, 2):
            result = retrieve(
                program, "pos", 3, faults=AdversarialFaults(lost)
            )
            assert result.completed
            assert result.latency <= window
            collected = [on_air[i] for i in result.received[:3]]
            assert reconstruct(collected) == payload

    def test_wire_codec_round_trip_over_program(self):
        payload = b"frame me"
        spec = FileSpec("f", 2, 5, data=payload)
        design = design_program([spec])
        encoder = AidaEncoder(
            "f", payload, m=2, n_max=design.program.block_count("f")
        )
        for block in encoder.blocks:
            assert decode_block(encode_block(block)) == block


class TestGeneralizedEndToEnd:
    def test_latency_vector_honoured_under_faults(self):
        """bc(F, 2, [6, 9, 12]): with j losses the client finishes
        within d(j) slots, from every phase."""
        spec = GeneralizedFileSpec("F", 2, (6, 9, 12))
        design = design_generalized_program([spec])
        program = design.program

        for phase in range(program.data_cycle_length):
            base = retrieve(program, "F", 2, start=phase)
            assert base.latency <= 6
        # One loss: kill any single F-slot; finish within d(1) = 9.
        slots = [
            t
            for t in range(program.data_cycle_length)
            if (c := program.slot_content(t)) and c.file == "F"
        ]
        for lost in slots:
            result = retrieve(
                program, "F", 2, faults=AdversarialFaults([lost])
            )
            assert result.completed and result.latency <= 9


class TestModeDrivenScenario:
    def test_awacs_mode_switch(self):
        """The AWACS story: combat mode buys fault tolerance with
        bandwidth; landing mode relaxes it."""
        items = [
            DataItem(
                "aircraft",
                b"track" * 20,
                TemporalConstraint(400),
                blocks=2,
                criticality={"combat": 2, "landing": 0},
            ),
            DataItem(
                "weather",
                b"wx" * 30,
                TemporalConstraint(6_000),
                blocks=3,
                criticality={},
            ),
        ]
        manager = ModeManager(
            items,
            [OperationMode("combat"), OperationMode("landing")],
            slot_ms=10,
        )
        combat = manager.switch_to("combat")
        landing = manager.switch_to("landing")
        assert (
            combat.bandwidth_plan.bandwidth
            >= landing.bandwidth_plan.bandwidth
        )
        # In combat, aircraft windows carry 2 + 2 distinct blocks.
        window = combat.bandwidth_plan.bandwidth * 40
        assert combat.program.min_distinct_in_window(
            "aircraft", window
        ) >= 4

    def test_combat_survives_noise_landing_may_not(self):
        """The redundancy actually pays off on a lossy channel."""
        items = [
            DataItem(
                "aircraft",
                b"track" * 20,
                TemporalConstraint(400),
                blocks=2,
                criticality={"combat": 3, "landing": 0},
            ),
        ]
        manager = ModeManager(
            items,
            [OperationMode("combat"), OperationMode("landing")],
            slot_ms=10,
        )
        combat = manager.design_for("combat")
        deadline = combat.bandwidth_plan.bandwidth * 40
        misses = 0
        for phase in range(0, 200, 7):
            result = retrieve(
                combat.program,
                "aircraft",
                2,
                start=phase,
                faults=BernoulliFaults(0.05, seed=21),
            )
            if not result.met_deadline(deadline):
                misses += 1
        assert misses == 0
