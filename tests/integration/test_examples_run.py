"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; breaking one is a
regression even when the library's own tests pass.  Each is executed
in-process via runpy with stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    """The deliverable requires a quickstart plus domain scenarios."""
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3


def test_quickstart_reports_success(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "payload intact: True" in out


def test_awacs_transactions_commit(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "awacs_modes.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "COMMIT" in out
    assert "ABORT" not in out
