"""Tests for the BroadcastProgram abstraction (periods, gaps, rotation)."""

import pytest

from repro.bdisk.program import BroadcastProgram, SlotContent
from repro.core.schedule import IDLE, Schedule
from repro.errors import ProgramError


class TestStructure:
    def test_figure6_periods(self, figure6_program):
        assert figure6_program.broadcast_period == 8
        assert figure6_program.data_cycle_length == 16

    def test_figure5_data_cycle_equals_period(self, figure5_program):
        assert figure5_program.broadcast_period == 8
        assert figure5_program.data_cycle_length == 8

    def test_block_counts(self, figure6_program):
        assert figure6_program.block_count("A") == 10
        assert figure6_program.block_count("B") == 6

    def test_rejects_unknown_block_counts(self):
        schedule = Schedule(["A", "B"])
        with pytest.raises(ProgramError):
            BroadcastProgram(schedule, {"A": 1, "B": 1, "C": 4})

    def test_rejects_nonpositive_block_count(self):
        with pytest.raises(ProgramError):
            BroadcastProgram(Schedule(["A"]), {"A": 0})

    def test_data_cycle_lcm_of_rotations(self):
        # A appears twice per period, rotates through 3 blocks -> the
        # content repeats after lcm(3,2)/2 = 3 periods.
        schedule = Schedule(["A", "A", IDLE])
        program = BroadcastProgram(schedule, {"A": 3})
        assert program.data_cycle_length == 9


class TestContent:
    def test_rotation_sequence(self):
        schedule = Schedule(["A", IDLE])
        program = BroadcastProgram(schedule, {"A": 3})
        indices = [
            program.slot_content(t).block_index for t in range(0, 12, 2)
        ]
        assert indices == [0, 1, 2, 0, 1, 2]

    def test_idle_slots_are_none(self):
        schedule = Schedule(["A", IDLE])
        program = BroadcastProgram(schedule, {"A": 1})
        assert program.slot_content(1) is None

    def test_figure6_first_period_content(self, figure6_program):
        rendered = figure6_program.render(periods=1)
        assert rendered == "A'1 B'1 A'2 A'3 B'2 A'4 B'3 A'5"

    def test_figure6_second_period_rotates(self, figure6_program):
        rendered = figure6_program.render()
        assert rendered.endswith(
            "A'6 B'4 A'7 A'8 B'5 A'9 B'6 A'10"
        )

    def test_figure5_repeats_same_blocks(self, figure5_program):
        first = [figure5_program.slot_content(t) for t in range(8)]
        second = [figure5_program.slot_content(t) for t in range(8, 16)]
        assert first == second

    def test_slot_content_periodic_in_data_cycle(self, figure6_program):
        cycle = figure6_program.data_cycle_length
        for t in range(cycle):
            assert figure6_program.slot_content(t) == (
                figure6_program.slot_content(t + cycle)
            )

    def test_slots_iterator(self, figure5_program):
        slots = list(figure5_program.slots(3))
        assert slots[0] == (0, SlotContent("A", 0))


class TestMetrics:
    def test_figure6_gaps(self, figure6_program):
        assert figure6_program.max_gap("A") == 2
        assert figure6_program.max_gap("B") == 3

    def test_max_gap_unknown_file(self, figure6_program):
        with pytest.raises(ProgramError):
            figure6_program.max_gap("Z")

    def test_min_count_in_window(self, figure6_program):
        assert figure6_program.min_count_in_window("A", 8) == 5
        assert figure6_program.min_count_in_window("B", 8) == 3

    def test_min_distinct_in_window_figure6(self, figure6_program):
        # Every 8-slot window carries >= 5 distinct A-blocks and >= 3
        # distinct B-blocks - the reconstruct-within-one-period property.
        assert figure6_program.min_distinct_in_window("A", 8) >= 5
        assert figure6_program.min_distinct_in_window("B", 8) >= 3

    def test_figure5_distinct_bounded_by_size(self, figure5_program):
        # No rotation: only m distinct blocks exist.
        assert figure5_program.min_distinct_in_window("A", 16) == 5

    def test_verify_fault_tolerance(self, figure6_program):
        # One period gives exactly m distinct blocks - 0 faults only;
        # two periods give 2m >= m + r for r <= m.
        assert figure6_program.verify_fault_tolerance("B", 3, 0, 8)
        assert figure6_program.verify_fault_tolerance("B", 3, 3, 16)
        assert not figure6_program.verify_fault_tolerance("B", 3, 4, 8)


class TestRendering:
    def test_render_marks_idle(self):
        program = BroadcastProgram(Schedule(["A", IDLE]), {"A": 1})
        assert program.render() == "A'1 --"

    def test_repr(self, figure6_program):
        assert "period=8" in repr(figure6_program)
