"""Tests for bandwidth planning (Equations 1-2 end to end)."""

import random
from fractions import Fraction

import pytest

from repro.bdisk.bandwidth import (
    induced_system,
    minimal_feasible_bandwidth,
    plan_bandwidth,
)
from repro.bdisk.file import FileSpec
from repro.core.bounds import CHAN_CHIN_DENSITY
from repro.errors import BandwidthError
from repro.sim.workload import random_file_set


class TestPlanBandwidth:
    def test_plan_fields_consistent(self):
        files = [
            FileSpec("a", 4, 2, fault_budget=2),
            FileSpec("b", 6, 5, fault_budget=1),
            FileSpec("c", 2, 10),
        ]
        plan = plan_bandwidth(files)
        assert plan.bandwidth == plan.eq_bound
        assert plan.density <= CHAN_CHIN_DENSITY
        assert plan.necessary == Fraction(6, 2) + Fraction(7, 5) + Fraction(2, 10)
        assert plan.program.broadcast_period >= 1
        assert plan.overhead >= 0

    def test_all_files_meet_windows(self):
        files = [
            FileSpec("a", 3, 4, fault_budget=1),
            FileSpec("b", 5, 6),
        ]
        plan = plan_bandwidth(files)
        for spec in files:
            window = plan.bandwidth * spec.latency
            count = plan.program.min_count_in_window(spec.name, window)
            assert count >= spec.slots_per_window

    def test_fault_tolerance_windows_verified(self):
        files = [FileSpec("a", 3, 4, fault_budget=2)]
        plan = plan_bandwidth(files)
        window = plan.bandwidth * 4
        assert plan.program.min_distinct_in_window("a", window) >= 5

    def test_explicit_bandwidth_honoured(self):
        files = [FileSpec("a", 1, 4), FileSpec("b", 1, 4)]
        plan = plan_bandwidth(files, bandwidth=2)
        assert plan.bandwidth == 2

    def test_insufficient_bandwidth_rejected(self):
        files = [FileSpec("a", 4, 2), FileSpec("b", 4, 2)]
        # Necessary bandwidth is 4; 1 cannot work.
        with pytest.raises(BandwidthError):
            plan_bandwidth(files, bandwidth=1)

    def test_empty_rejected(self):
        with pytest.raises(BandwidthError):
            plan_bandwidth([])


class TestMinimalFeasible:
    def test_at_most_eq_bound(self):
        rng = random.Random(11)
        for _ in range(10):
            files = random_file_set(rng, rng.randint(1, 6))
            plan = plan_bandwidth(files)
            minimal = minimal_feasible_bandwidth(files)
            assert minimal <= plan.eq_bound

    def test_at_least_necessary(self):
        files = [FileSpec("a", 4, 2), FileSpec("b", 3, 3)]
        minimal = minimal_feasible_bandwidth(files)
        assert minimal >= 3  # ceil(2 + 1) = 3

    def test_often_beats_eq1(self):
        """The 10/7 factor is conservative; the portfolio usually
        schedules below it.  At least one of these sets must do so."""
        rng = random.Random(12)
        beat = False
        for _ in range(10):
            files = random_file_set(rng, rng.randint(2, 6))
            if minimal_feasible_bandwidth(files) < plan_bandwidth(files).eq_bound:
                beat = True
                break
        assert beat


class TestInducedSystem:
    def test_tasks_mirror_files(self):
        files = [FileSpec("a", 4, 2, fault_budget=1)]
        system = induced_system(files, 3)
        task = system.task("a")
        assert task.a == 5
        assert task.b == 6
