"""Tests for the Section 5 block-size trade-off module."""

from fractions import Fraction

import pytest

from repro.bdisk.blocksize import (
    SizedFile,
    analyze_block_size,
    codec_cost_model,
    largest_schedulable_block_size,
    per_file_multiples,
)
from repro.core.bounds import CHAN_CHIN_DENSITY
from repro.errors import SpecificationError


def catalogue() -> list[SizedFile]:
    return [
        SizedFile("urgent", 4_096, Fraction(1, 2), fault_budget=1),
        SizedFile("bulk", 65_536, 30),
    ]


class TestSizedFile:
    def test_dispersal_level(self):
        spec = SizedFile("f", 10_000, 5)
        assert spec.dispersal_level(1_000) == 10
        assert spec.dispersal_level(3_000) == 4  # ceil

    def test_validation(self):
        with pytest.raises(SpecificationError):
            SizedFile("f", 0, 5)
        with pytest.raises(SpecificationError):
            SizedFile("f", 10, 0)
        with pytest.raises(SpecificationError):
            SizedFile("f", 10, 5, fault_budget=-1)


class TestAnalyze:
    def test_density_contains_floor(self):
        report = analyze_block_size(catalogue(), 64_000, 512)
        floor = sum(
            Fraction(f.size_bytes)
            / (Fraction(f.latency_seconds) * 64_000)
            for f in catalogue()
        )
        assert report.density >= floor

    def test_small_blocks_denser_codec(self):
        fine = analyze_block_size(catalogue(), 64_000, 256)
        coarse = analyze_block_size(catalogue(), 64_000, 4_096)
        assert fine.codec_cost > coarse.codec_cost

    def test_window_overflow_marked_unschedulable(self):
        # One block slot cannot fit within an impossibly tight latency.
        tight = [SizedFile("x", 8_192, Fraction(1, 1000))]
        report = analyze_block_size(tight, 64_000, 4_096)
        assert not report.schedulable

    def test_validation(self):
        with pytest.raises(SpecificationError):
            analyze_block_size(catalogue(), 64_000, 0)
        with pytest.raises(SpecificationError):
            analyze_block_size(catalogue(), 0, 512)
        with pytest.raises(SpecificationError):
            analyze_block_size([], 64_000, 512)

    def test_report_str(self):
        report = analyze_block_size(catalogue(), 64_000, 512)
        assert "b=" in str(report)


class TestLargestSchedulable:
    def test_picks_largest_passing(self):
        best, reports = largest_schedulable_block_size(
            catalogue(), 64_000, [256, 512, 1024, 2048]
        )
        assert best is not None
        passing = [r.block_size for r in reports if r.schedulable]
        assert best.block_size == max(passing)

    def test_none_when_all_fail(self):
        hopeless = [SizedFile("x", 10**6, Fraction(1, 100))]
        best, reports = largest_schedulable_block_size(
            hopeless, 1_000, [256, 512]
        )
        assert best is None
        assert all(not r.schedulable for r in reports)

    def test_empty_candidates_rejected(self):
        with pytest.raises(SpecificationError):
            largest_schedulable_block_size(catalogue(), 64_000, [])


class TestPerFileMultiples:
    def test_respects_density_bound(self):
        multiples = per_file_multiples(catalogue(), 64_000, 256, 16)
        total = Fraction(0)
        for spec in catalogue():
            block = 256 * multiples[spec.name]
            m = spec.dispersal_level(block)
            window = Fraction(spec.latency_seconds) * 64_000 / block
            total += Fraction(m + spec.fault_budget) / window
        assert total <= CHAN_CHIN_DENSITY

    def test_bulk_file_takes_larger_blocks(self):
        multiples = per_file_multiples(catalogue(), 64_000, 256, 16)
        assert multiples["bulk"] >= multiples["urgent"]

    def test_unschedulable_base_rejected(self):
        hopeless = [SizedFile("x", 10**6, Fraction(1, 100))]
        with pytest.raises(SpecificationError):
            per_file_multiples(hopeless, 1_000, 256)

    def test_validation(self):
        with pytest.raises(SpecificationError):
            per_file_multiples(catalogue(), 64_000, 0)


class TestCodecModel:
    def test_linear_per_byte(self):
        assert codec_cost_model(8) == 8

    def test_rejects_bad_level(self):
        with pytest.raises(SpecificationError):
            codec_cost_model(0)
