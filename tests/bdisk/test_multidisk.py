"""Tests for the Acharya-style multidisk baseline."""

import pytest

from repro.bdisk.multidisk import (
    MultidiskConfig,
    build_multidisk_program,
    config_from_demand,
    expected_average_latency,
)
from repro.errors import SpecificationError


def toy_config() -> MultidiskConfig:
    return MultidiskConfig(
        [
            (2, [("hot", 2)]),
            (1, [("cold", 4)]),
        ]
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(SpecificationError):
            MultidiskConfig([])
        with pytest.raises(SpecificationError):
            MultidiskConfig([(0, [("a", 1)])])
        with pytest.raises(SpecificationError):
            MultidiskConfig([(1, [])])
        with pytest.raises(SpecificationError):
            MultidiskConfig([(1, [("a", 1)]), (2, [("a", 2)])])
        with pytest.raises(SpecificationError):
            MultidiskConfig([(1, [("a", 0)])])

    def test_accessors(self):
        config = toy_config()
        assert config.frequencies() == (2, 1)
        assert config.file_names() == ("hot", "cold")


class TestProgramGeneration:
    def test_fast_disk_appears_proportionally(self):
        program = build_multidisk_program(toy_config())
        hot = program.schedule.total("hot")
        cold = program.schedule.total("cold")
        # hot spins twice per major cycle with 2 blocks -> 4 slots;
        # cold spins once with 4 blocks -> 4 slots.
        assert hot == 4
        assert cold == 4

    def test_every_block_broadcast(self):
        program = build_multidisk_program(toy_config())
        contents = program.content_cycle()
        cold_indices = {
            c.block_index for c in contents if c is not None and c.file == "cold"
        }
        assert cold_indices == {0, 1, 2, 3}

    def test_equal_spacing_of_hot_disk(self):
        """Acharya's equal-spacing property: the hot file's appearances
        split the major cycle evenly (within one chunk's tolerance)."""
        program = build_multidisk_program(toy_config())
        gaps = program.schedule.gaps("hot")
        assert max(gaps) - min(gaps) <= 2

    def test_three_level_hierarchy(self):
        config = MultidiskConfig(
            [
                (4, [("h", 1)]),
                (2, [("w", 2)]),
                (1, [("c", 4)]),
            ]
        )
        program = build_multidisk_program(config)
        assert program.schedule.total("h") == 4
        assert program.schedule.total("w") == 4
        assert program.schedule.total("c") == 4


class TestAverageLatency:
    def test_hot_files_wait_less(self):
        config = toy_config()
        program = build_multidisk_program(config)
        period = program.broadcast_period
        hot_spacing = period / program.schedule.total("hot")
        cold_spacing = period / program.schedule.total("cold")
        assert hot_spacing <= cold_spacing

    def test_demand_weighting(self):
        config = toy_config()
        all_hot = expected_average_latency(config, {"hot": 1.0, "cold": 0.0})
        all_cold = expected_average_latency(config, {"hot": 0.0, "cold": 1.0})
        assert all_hot <= all_cold

    def test_unknown_file_rejected(self):
        with pytest.raises(SpecificationError):
            expected_average_latency(toy_config(), {"nope": 1.0})

    def test_zero_demand_rejected(self):
        with pytest.raises(SpecificationError):
            expected_average_latency(toy_config(), {"hot": 0.0})


class TestConfigFromDemand:
    def test_hot_files_land_on_fast_disks(self):
        config = config_from_demand(
            [("a", 1), ("b", 1), ("c", 1)],
            {"a": 10.0, "b": 1.0, "c": 0.1},
            levels=(4, 2, 1),
        )
        assert config.disks[0][0] == 4
        assert config.disks[0][1][0][0] == "a"

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            config_from_demand([], {})
