"""Tests for the precomputed occurrence index (ProgramIndex)."""

import pytest

from repro.errors import ProgramError, SpecificationError
from repro.bdisk.flat import build_aida_flat_program, build_flat_program
from repro.bdisk.program_index import ProgramIndex


@pytest.fixture
def program():
    """Figure 6: A 5-of-10, B 3-of-6 - data cycle of two periods."""
    return build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])


class TestConstruction:
    def test_shared_lazy_instance(self, program):
        assert program.index is program.index
        assert isinstance(program.index, ProgramIndex)
        assert program.index.program is program

    def test_contents_match_slot_content(self, program):
        contents = program.index.contents
        assert len(contents) == program.data_cycle_length
        for t, content in enumerate(contents):
            assert content == program.slot_content(t)

    def test_occurrence_arrays_align(self, program):
        index = program.index
        for file in program.files:
            slots = index.occurrence_slots(file)
            blocks = index.occurrence_blocks(file)
            assert len(slots) == len(blocks)
            assert list(slots) == sorted(slots)
            for slot, block in zip(slots, blocks):
                content = program.slot_content(slot)
                assert content.file == file
                assert content.block_index == block
            assert index.occurrences(file) == tuple(zip(slots, blocks))
            assert index.occurrences_per_cycle(file) == len(slots)

    def test_unknown_file_rejected(self, program):
        index = program.index
        with pytest.raises(ProgramError):
            index.occurrence_slots("Z")
        with pytest.raises(ProgramError):
            index.next_occurrence("Z", 0)
        with pytest.raises(ProgramError):
            index.count_in_window("Z", 0, 4)


class TestOccurrenceWalk:
    def test_next_occurrence_is_first_at_or_after(self, program):
        index = program.index
        cycle = program.data_cycle_length
        for file in program.files:
            for t in range(2 * cycle + 1):
                slot, block = index.next_occurrence(file, t)
                assert slot >= t
                content = program.slot_content(slot)
                assert (content.file, content.block_index) == (file, block)
                # No earlier service of the file in [t, slot).
                assert all(
                    (c := program.slot_content(u)) is None
                    or c.file != file
                    for u in range(t, slot)
                )

    def test_occurrences_from_walks_every_service(self, program):
        index = program.index
        cycle = program.data_cycle_length
        start = 7
        walked = []
        for slot, block in index.occurrences_from("A", start):
            if slot >= start + 2 * cycle:
                break
            walked.append((slot, block))
        expected = [
            (t, program.slot_content(t).block_index)
            for t in range(start, start + 2 * cycle)
            if (c := program.slot_content(t)) is not None and c.file == "A"
        ]
        assert walked == expected

    def test_negative_slots_rejected(self, program):
        # Same error type as Schedule.owner_at / slot_content.
        index = program.index
        with pytest.raises(SpecificationError):
            index.next_occurrence("A", -1)
        with pytest.raises(SpecificationError):
            next(index.occurrences_from("A", -1))
        with pytest.raises(SpecificationError):
            index.content(-1)


class TestWindows:
    def test_max_gap_matches_program(self, program):
        for file in program.files:
            assert program.index.max_gap(file) == program.max_gap(file)

    def test_single_service_gap_is_cycle(self):
        flat = build_flat_program([("A", 1)])
        assert flat.index.max_gap("A") == flat.data_cycle_length

    def test_count_in_window_wraps_cycles(self, program):
        index = program.index
        cycle = program.data_cycle_length
        per_cycle = index.occurrences_per_cycle("B")
        assert index.count_in_window("B", 0, 3 * cycle) == 3 * per_cycle
        assert index.count_in_window("B", 5, 0) == 0

    def test_min_distinct_consistent_with_verify(self, program):
        # Figure 6's headline property: every window of one period holds
        # enough distinct blocks for IDA plus slack for faults.
        window = program.broadcast_period
        assert program.index.min_distinct_in_window(
            "A", window
        ) == program.min_distinct_in_window("A", window)

    def test_min_distinct_absent_file_is_zero(self, program):
        assert program.index.min_distinct_in_window("Z", 4) == 0
