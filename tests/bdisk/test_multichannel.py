"""Tests for ChannelSet and partition-then-solve multi-channel designs."""

import pickle

import pytest

from repro.errors import SpecificationError
from repro.bdisk.builder import design_program
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.bdisk.multichannel import (
    ChannelSet,
    design_multichannel_program,
    resolve_assignment,
)
from repro.api.scenario import ChannelSpec


def catalogue():
    return [
        FileSpec("a", 2, 10),
        FileSpec("b", 3, 15),
        FileSpec("c", 2, 20),
        FileSpec("d", 4, 30),
    ]


def same_program(left, right):
    """Structural program equality (BroadcastProgram has no __eq__)."""
    return (
        left.schedule == right.schedule
        and left.files == right.files
        and left.data_cycle_length == right.data_cycle_length
        and all(
            left.block_count(f) == right.block_count(f) for f in left.files
        )
    )


class TestChannelSet:
    def build(self, **kwargs):
        design = design_multichannel_program(
            catalogue(), ChannelSpec(count=2, **kwargs)
        )
        return design.channel_set

    def test_count_and_channels_for(self):
        channels = self.build()
        assert channels.count == 2
        for name in ("a", "b", "c", "d"):
            ids = channels.channels_for(name)
            assert len(ids) == 1
            assert name in channels.programs[ids[0]].files

    def test_unknown_file_raises(self):
        with pytest.raises(SpecificationError, match="not in the channel"):
            self.build().channels_for("ghost")

    def test_listen_start_charges_tuning_only_on_switch(self):
        channels = self.build(tuning_cost=3)
        assert channels.listen_start(10, tuned=0, channel=0) == 10
        assert channels.listen_start(10, tuned=0, channel=1) == 13
        assert channels.listen_start(10, tuned=1, channel=1) == 10

    def test_pickle_round_trip(self):
        channels = self.build(tuning_cost=2)
        clone = pickle.loads(pickle.dumps(channels))
        assert clone.count == channels.count
        assert clone.tuning_cost == channels.tuning_cost
        assert clone.quorum == channels.quorum
        assert dict(clone.assignment) == dict(channels.assignment)
        for mine, theirs in zip(channels.programs, clone.programs):
            assert same_program(mine, theirs)

    def test_assignment_must_match_programs(self):
        good = self.build()
        with pytest.raises(SpecificationError, match="does not carry"):
            ChannelSet(
                programs=good.programs,
                assignment={name: (0, 1) for name in good.assignment},
            )

    def test_quorum_bounds_validated(self):
        good = self.build()
        with pytest.raises(SpecificationError, match="quorum"):
            ChannelSet(
                programs=good.programs,
                assignment=dict(good.assignment),
                quorum=3,
            )


class TestResolveAssignment:
    def test_striped_partitions_exactly_once(self):
        assignment = resolve_assignment(catalogue(), ChannelSpec(count=2))
        assert set(assignment) == {"a", "b", "c", "d"}
        assert all(len(ids) == 1 for ids in assignment.values())

    def test_replicated_places_everything_everywhere(self):
        assignment = resolve_assignment(
            catalogue(), ChannelSpec(count=3, assignment="replicated")
        )
        assert all(ids == (0, 1, 2) for ids in assignment.values())

    def test_explicit_is_taken_verbatim(self):
        mapping = {"a": (0,), "b": (1,), "c": (0, 1), "d": (1,)}
        assignment = resolve_assignment(
            catalogue(),
            ChannelSpec(count=2, assignment="explicit", explicit=mapping),
        )
        assert assignment == mapping


class TestDesignMultichannel:
    def test_k1_is_exactly_the_single_channel_design(self):
        files = catalogue()
        multi = design_multichannel_program(files, ChannelSpec(count=1))
        single = design_program(files)
        assert multi.count == 1
        assert same_program(multi.channel_set.programs[0], single.program)
        assert multi.designs[0].density == single.density
        assert (
            multi.designs[0].bandwidth_plan.bandwidth
            == single.bandwidth_plan.bandwidth
        )
        assert multi.designs[0].report.method == single.report.method

    def test_striped_channels_partition_the_catalogue(self):
        multi = design_multichannel_program(catalogue(), ChannelSpec(count=2))
        names = sorted(n for channel in multi.partition for n in channel)
        assert names == ["a", "b", "c", "d"]
        for channel, channel_names in enumerate(multi.partition):
            program = multi.channel_set.programs[channel]
            assert set(channel_names) == set(program.files)

    def test_replicated_channels_each_carry_everything(self):
        multi = design_multichannel_program(
            catalogue(), ChannelSpec(count=2, assignment="replicated")
        )
        for program in multi.channel_set.programs:
            assert set(program.files) == {"a", "b", "c", "d"}

    def test_bandwidth_is_harmonized_across_channels(self):
        multi = design_multichannel_program(catalogue(), ChannelSpec(count=3))
        bandwidths = {
            design.bandwidth_plan.bandwidth for design in multi.designs
        }
        assert len(bandwidths) == 1

    def test_runtime_knobs_reach_the_channel_set(self):
        multi = design_multichannel_program(
            catalogue(),
            ChannelSpec(
                count=2, assignment="replicated", tuning_cost=4, quorum=2
            ),
        )
        assert multi.channel_set.tuning_cost == 4
        assert multi.channel_set.quorum == 2

    def test_per_channel_fault_budgets_add_redundancy(self):
        plain = design_multichannel_program(
            catalogue(), ChannelSpec(count=2, assignment="replicated")
        )
        budgeted = design_multichannel_program(
            catalogue(),
            ChannelSpec(
                count=2, assignment="replicated", fault_budgets=(0, 1)
            ),
        )
        # Channel 0 keeps the plain block counts; channel 1 airs extra.
        for name in ("a", "b", "c", "d"):
            assert budgeted.channel_set.programs[0].block_count(
                name
            ) == plain.channel_set.programs[0].block_count(name)
            assert budgeted.channel_set.programs[1].block_count(
                name
            ) > plain.channel_set.programs[1].block_count(name)

    def test_generalized_files_design_per_channel(self):
        files = [
            GeneralizedFileSpec("g0", 2, (8, 24)),
            GeneralizedFileSpec("g1", 3, (12, 30)),
        ]
        multi = design_multichannel_program(files, ChannelSpec(count=2))
        assert multi.count == 2
        assert sorted(
            name for channel in multi.partition for name in channel
        ) == ["g0", "g1"]

    def test_densities_profile_matches_designs(self):
        multi = design_multichannel_program(catalogue(), ChannelSpec(count=2))
        assert multi.densities == tuple(
            design.density for design in multi.designs
        )

    def test_empty_catalogue_rejected(self):
        with pytest.raises(SpecificationError, match="at least one"):
            design_multichannel_program([], ChannelSpec(count=1))
