"""Tests for flat program builders (Figures 5 and 6)."""

import pytest

from repro.bdisk.flat import (
    build_aida_flat_program,
    build_flat_program,
    uniform_interleave,
)
from repro.errors import SpecificationError


class TestUniformInterleave:
    def test_paper_toy_layout(self):
        layout = uniform_interleave({"A": 5, "B": 3})
        assert layout == ["A", "B", "A", "A", "B", "A", "B", "A"]

    def test_single_file(self):
        assert uniform_interleave({"A": 4}) == ["A"] * 4

    def test_equal_sizes_alternate(self):
        layout = uniform_interleave({"A": 3, "B": 3})
        assert layout == ["A", "B", "A", "B", "A", "B"]

    def test_rejects_empty(self):
        with pytest.raises(SpecificationError):
            uniform_interleave({})

    def test_rejects_zero_count(self):
        with pytest.raises(SpecificationError):
            uniform_interleave({"A": 0})

    def test_spreading_bounds_gaps(self):
        """Uniform spreading: the max gap of a file with k slots in a
        period of P is at most ceil(P / k) + 1."""
        layout = uniform_interleave({"X": 20, "Y": 7, "Z": 3})
        period = len(layout)
        for name, count in (("X", 20), ("Y", 7), ("Z", 3)):
            positions = [i for i, owner in enumerate(layout) if owner == name]
            gaps = [
                (positions[(i + 1) % count] - positions[i]) % period or period
                for i in range(count)
            ]
            assert max(gaps) <= -(-period // count) + 1


class TestFlatProgram:
    def test_figure5_reproduction(self, figure5_program):
        assert figure5_program.render() == (
            "A'1 B'1 A'2 A'3 B'2 A'4 B'3 A'5"
        )

    def test_lemma1_structure(self, figure5_program):
        """Without IDA a lost block recurs after exactly one period."""
        period = figure5_program.broadcast_period
        first = figure5_program.slot_content(1)
        assert figure5_program.slot_content(1 + period) == first

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecificationError):
            build_flat_program([("A", 2), ("A", 3)])


class TestAidaFlatProgram:
    def test_figure6_reproduction(self, figure6_program):
        assert figure6_program.render() == (
            "A'1 B'1 A'2 A'3 B'2 A'4 B'3 A'5 "
            "A'6 B'4 A'7 A'8 B'5 A'9 B'6 A'10"
        )

    def test_all_dispersed_blocks_appear(self, figure6_program):
        contents = figure6_program.content_cycle()
        a_indices = {c.block_index for c in contents if c.file == "A"}
        b_indices = {c.block_index for c in contents if c.file == "B"}
        assert a_indices == set(range(10))
        assert b_indices == set(range(6))

    def test_rejects_n_below_m(self):
        with pytest.raises(SpecificationError):
            build_aida_flat_program([("A", 5, 4)])

    def test_rejects_duplicates(self):
        with pytest.raises(SpecificationError):
            build_aida_flat_program([("A", 2, 4), ("A", 3, 6)])

    def test_data_cycle_lcm(self):
        # A: 2-of-6 -> 3 periods; B: 3-of-6 -> 2 periods; lcm = 6.
        program = build_aida_flat_program([("A", 2, 6), ("B", 3, 6)])
        assert program.data_cycle_length == program.broadcast_period * 6
