"""Tests for broadcast indexing (the footnote-3 alternative)."""

import pytest

from repro.bdisk.flat import build_aida_flat_program
from repro.bdisk.indexing import (
    INDEX,
    build_indexed_program,
    tuned_retrieve,
)
from repro.errors import SimulationError, SpecificationError
from repro.sim.client import retrieve
from repro.sim.faults import AdversarialFaults


def make_indexed(replication=1):
    base = build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])
    return base, build_indexed_program(base, replication=replication)


class TestBuild:
    def test_layout_contains_all_content(self):
        base, indexed = make_indexed()
        data_slots = [e for e in indexed.layout if e not in (None, INDEX)]
        assert len(data_slots) == base.data_cycle_length
        assert indexed.period == base.data_cycle_length + 1

    def test_replication_spreads_indexes(self):
        base, indexed = make_indexed(replication=4)
        positions = indexed.index_positions()
        assert len(positions) == 4
        spacings = [
            positions[i + 1] - positions[i]
            for i in range(len(positions) - 1)
        ]
        assert max(spacings) - min(spacings) <= 2

    def test_validation(self):
        base, _ = make_indexed()
        with pytest.raises(SpecificationError):
            build_indexed_program(base, replication=0)
        with pytest.raises(SpecificationError):
            build_indexed_program(base, replication=10_000)

    def test_slot_is_periodic(self):
        _, indexed = make_indexed()
        for t in range(indexed.period):
            assert indexed.slot(t) == indexed.slot(t + indexed.period)


class TestTunedRetrieve:
    def test_fault_free_completes(self):
        _, indexed = make_indexed()
        result = tuned_retrieve(indexed, "B", 3)
        assert result.completed
        assert result.retunes == 0

    def test_tuning_time_far_below_latency(self):
        """The index's selling point: the receiver is mostly asleep."""
        _, indexed = make_indexed()
        result = tuned_retrieve(indexed, "B", 3, start=1)
        assert result.completed
        # Hunt for the index + exactly m wakes for blocks.
        assert result.tuning_time < result.latency
        assert result.tuning_time <= indexed.period + 3

    def test_self_identifying_client_tunes_every_slot(self):
        """Contrast: without the index, tuning time == latency."""
        base, indexed = make_indexed()
        plain = retrieve(base, "B", 3)
        tuned = tuned_retrieve(indexed, "B", 3)
        assert plain.latency == plain.latency  # tuning == latency by def.
        assert tuned.tuning_time < plain.latency

    def test_lost_block_forces_retune(self):
        """The paper's objection: a fault costs a re-tune (a period-scale
        penalty), not a Delta-scale one."""
        _, indexed = make_indexed()
        clean = tuned_retrieve(indexed, "B", 3)
        # Kill the slot where the client would fetch its first B block.
        first_b = next(
            t
            for t in range(indexed.period)
            if (e := indexed.slot(t)) not in (None, INDEX)
            and e[0] == "B"
        )
        faulty = tuned_retrieve(
            indexed, "B", 3, faults=AdversarialFaults([first_b])
        )
        assert faulty.completed
        assert faulty.retunes >= 1
        assert faulty.latency > clean.latency

    def test_lost_index_delays_start(self):
        _, indexed = make_indexed()
        index_slot = indexed.index_positions()[0]
        result = tuned_retrieve(
            indexed, "B", 3, faults=AdversarialFaults([index_slot])
        )
        clean = tuned_retrieve(indexed, "B", 3)
        assert result.completed
        assert result.latency >= clean.latency

    def test_replication_shortens_index_hunt(self):
        """(1, m)-indexing: more index copies, shorter worst hunt."""
        _, sparse = make_indexed(replication=1)
        _, dense = make_indexed(replication=4)

        def worst_hunt(indexed):
            positions = indexed.index_positions()
            return max(
                min(
                    (p - phase) % indexed.period for p in positions
                )
                for phase in range(indexed.period)
            )

        assert worst_hunt(dense) < worst_hunt(sparse)

    def test_unknown_file_rejected(self):
        _, indexed = make_indexed()
        with pytest.raises(SimulationError):
            tuned_retrieve(indexed, "Z", 1)

    def test_blackout_reports_incomplete(self):
        _, indexed = make_indexed()
        from repro.sim.faults import BernoulliFaults

        result = tuned_retrieve(
            indexed, "B", 3, faults=BernoulliFaults(1.0), max_slots=100
        )
        assert not result.completed
        assert result.latency is None
