"""Tests for pinwheel-schedule-derived broadcast programs."""

import pytest

from repro.bdisk.pinwheel_program import (
    build_pinwheel_program,
    program_from_conjunct,
)
from repro.core.conditions import NiceConjunct, pc, virtual_key
from repro.core.schedule import IDLE, Schedule
from repro.errors import ProgramError


class TestBuildPinwheelProgram:
    def test_rotation_attached(self):
        schedule = Schedule(["F", "G", "F", IDLE])
        program = build_pinwheel_program(schedule, {"F": 3, "G": 2})
        assert program.block_count("F") == 3
        # F: 2 slots/cycle over 3 blocks -> repeats after 3 cycles;
        # G: 1 slot/cycle over 2 blocks -> repeats after 2; lcm = 6.
        assert program.data_cycle_length == 4 * 6

    def test_distinct_window_check_passes(self):
        # F appears twice per 4-slot cycle, rotates through 2 blocks:
        # every 4-window sees 2 distinct blocks -> m=1, r=1 OK.
        schedule = Schedule(["F", IDLE, "F", IDLE])
        program = build_pinwheel_program(
            schedule, {"F": 2}, check_windows={"F": (1, 1, 4)}
        )
        assert program.min_distinct_in_window("F", 4) == 2

    def test_distinct_window_check_fails(self):
        # Rotating through only 1 block cannot tolerate a fault.
        schedule = Schedule(["F", IDLE, "F", IDLE])
        with pytest.raises(ProgramError, match="fault-tolerance"):
            build_pinwheel_program(
                schedule, {"F": 1}, check_windows={"F": (1, 1, 4)}
            )


class TestProgramFromConjunct:
    def test_virtual_tasks_fold_onto_file(self):
        helper = virtual_key("F", 1)
        conjunct = NiceConjunct(
            (pc("F", 1, 2), pc(helper, 1, 4)), {helper: "F"}
        )
        schedule = Schedule(["F", helper, "F", IDLE])
        program = program_from_conjunct(schedule, conjunct, {"F": 3})
        # All three F-slots rotate through distinct blocks.
        contents = [program.slot_content(t) for t in range(4)]
        assert contents[1].file == "F"
        assert {
            c.block_index for c in contents if c is not None
        } == {0, 1, 2}

    def test_conjunct_program_distinct_check(self):
        helper = virtual_key("F", 1)
        conjunct = NiceConjunct(
            (pc("F", 1, 2), pc(helper, 1, 4)), {helper: "F"}
        )
        schedule = Schedule(["F", helper, "F", IDLE])
        program = program_from_conjunct(
            schedule, conjunct, {"F": 3}, check_windows={"F": (2, 1, 4)}
        )
        assert program.min_distinct_in_window("F", 4) == 3
