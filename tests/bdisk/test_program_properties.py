"""Property-based tests on BroadcastProgram invariants (hypothesis).

The broadcast program is the library's central data structure; these
properties must hold for *any* schedule and block-count configuration:

1. content is periodic with the data cycle;
2. the data cycle is the smallest multiple of the broadcast period at
   which every file's rotation returns to block 0;
3. a window containing ``k`` service slots of a file carries exactly
   ``min(k, n_i)`` distinct blocks (cyclic rotation);
4. gaps sum to the period and bound window counts from both sides.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.bdisk.program import BroadcastProgram
from repro.core.schedule import IDLE, Schedule


@st.composite
def programs(draw):
    """Random small programs: 1-3 files, idle slots, rotation counts."""
    n_files = draw(st.integers(1, 3))
    names = [f"f{i}" for i in range(n_files)]
    length = draw(st.integers(n_files, 12))
    cycle = [
        draw(st.sampled_from(names + [IDLE])) for _ in range(length)
    ]
    # Ensure every file appears at least once.
    for index, name in enumerate(names):
        cycle[index % length] = name
    schedule = Schedule(cycle)
    block_counts = {
        name: draw(st.integers(1, 8)) for name in names
    }
    return BroadcastProgram(schedule, block_counts)


class TestPeriodicity:
    @given(program=programs())
    @settings(max_examples=60, deadline=None)
    def test_content_periodic_in_data_cycle(self, program):
        cycle = program.data_cycle_length
        for t in range(cycle):
            assert program.slot_content(t) == program.slot_content(
                t + cycle
            )

    @given(program=programs())
    @settings(max_examples=60, deadline=None)
    def test_data_cycle_is_minimal(self, program):
        """No smaller multiple of the period repeats the content."""
        period = program.broadcast_period
        cycle = program.data_cycle_length
        multiples = cycle // period
        for candidate_mult in range(1, multiples):
            if multiples % candidate_mult:
                continue
            candidate = candidate_mult * period
            differs = any(
                program.slot_content(t)
                != program.slot_content(t + candidate)
                for t in range(candidate)
            )
            assert differs, (
                f"content already repeats at {candidate} < {cycle}"
            )

    @given(program=programs())
    @settings(max_examples=60, deadline=None)
    def test_data_cycle_formula(self, program):
        period = program.broadcast_period
        expected = 1
        for name in program.files:
            per_cycle = program.schedule.total(name)
            n_blocks = program.block_count(name)
            expected = math.lcm(
                expected, n_blocks // math.gcd(n_blocks, per_cycle)
            )
        assert program.data_cycle_length == period * expected


class TestRotation:
    @given(program=programs())
    @settings(max_examples=60, deadline=None)
    def test_consecutive_occurrences_rotate(self, program):
        """Occurrence c carries block c mod n - globally, in order."""
        for name in program.files:
            n_blocks = program.block_count(name)
            seen = 0
            for t in range(program.data_cycle_length):
                content = program.slot_content(t)
                if content is None or content.file != name:
                    continue
                assert content.block_index == seen % n_blocks
                seen += 1

    @given(program=programs(), window=st.integers(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_distinct_blocks_equal_min_count_rotation(
        self, program, window
    ):
        """Any window with k slots of a file holds min-over-windows of
        min(k, n) distinct blocks - rotation never wastes a slot until
        the supply of distinct blocks is exhausted."""
        for name in program.files:
            n_blocks = program.block_count(name)
            min_count = program.min_count_in_window(name, window)
            distinct = program.min_distinct_in_window(name, window)
            assert distinct <= min(window, n_blocks)
            assert distinct >= min(min_count, 1 if min_count else 0)

    @given(program=programs())
    @settings(max_examples=40, deadline=None)
    def test_all_blocks_eventually_air(self, program):
        """Every one of the n_i dispersed blocks appears in the cycle
        whenever the file has at least one slot."""
        for name in program.files:
            per_cycle = program.schedule.total(name)
            if per_cycle == 0:
                continue
            aired = {
                c.block_index
                for c in program.content_cycle()
                if c is not None and c.file == name
            }
            assert aired == set(range(program.block_count(name)))


class TestGaps:
    @given(program=programs())
    @settings(max_examples=60, deadline=None)
    def test_gaps_sum_to_period(self, program):
        for name in program.files:
            gaps = program.schedule.gaps(name)
            assert sum(gaps) == program.broadcast_period

    @given(program=programs())
    @settings(max_examples=60, deadline=None)
    def test_max_gap_bounds_window_emptiness(self, program):
        """A window of max_gap slots always contains >= 1 service; one
        of max_gap - 1 may contain none."""
        for name in program.files:
            delta = program.max_gap(name)
            assert program.min_count_in_window(name, delta) >= 1
            if delta > 1:
                assert program.min_count_in_window(name, delta - 1) == 0
