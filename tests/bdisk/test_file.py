"""Tests for broadcast file specifications."""

from fractions import Fraction

import pytest

from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.core.conditions import bc
from repro.errors import SpecificationError


class TestFileSpec:
    def test_demand(self):
        spec = FileSpec("F", blocks=4, latency=2, fault_budget=2)
        assert spec.slots_per_window == 6
        assert spec.demand == Fraction(6, 2)

    def test_as_task_scales_window_by_bandwidth(self):
        spec = FileSpec("F", blocks=4, latency=2, fault_budget=1)
        task = spec.as_task(bandwidth=5)
        assert task.a == 5
        assert task.b == 10

    def test_as_task_rejects_bad_bandwidth(self):
        with pytest.raises(SpecificationError):
            FileSpec("F", 1, 1).as_task(0)

    def test_validation(self):
        with pytest.raises(SpecificationError):
            FileSpec("F", 0, 1)
        with pytest.raises(SpecificationError):
            FileSpec("F", 1, 0)
        with pytest.raises(SpecificationError):
            FileSpec("F", 1, 1, fault_budget=-1)

    def test_payload_deterministic(self):
        spec = FileSpec("F", 3, 5)
        assert spec.payload() == spec.payload()
        assert len(spec.payload(block_size=32)) == 3 * 32

    def test_explicit_data_wins(self):
        spec = FileSpec("F", 1, 5, data=b"hello")
        assert spec.payload() == b"hello"


class TestGeneralizedFileSpec:
    def test_condition_round_trip(self):
        spec = GeneralizedFileSpec("F", 2, (5, 6, 6))
        assert spec.as_condition() == bc("F", 2, [5, 6, 6])
        assert spec.max_faults == 2

    def test_validation_delegated_to_bc(self):
        with pytest.raises(SpecificationError):
            GeneralizedFileSpec("F", 3, (5, 3))

    def test_regular_constructor(self):
        spec = GeneralizedFileSpec.regular("F", 2, 9)
        assert spec.latency_vector == (9,)
        assert spec.max_faults == 0

    def test_uniform_constructor_encodes_section_32_model(self):
        spec = GeneralizedFileSpec.uniform("F", 2, 9, faults=3)
        assert spec.latency_vector == (9, 9, 9, 9)

    def test_uniform_rejects_negative_faults(self):
        with pytest.raises(SpecificationError):
            GeneralizedFileSpec.uniform("F", 2, 9, faults=-1)

    def test_payload(self):
        spec = GeneralizedFileSpec("F", 2, (8,), data=b"xy")
        assert spec.payload() == b"xy"
        synthesized = GeneralizedFileSpec("G", 2, (8,)).payload(16)
        assert len(synthesized) == 32
