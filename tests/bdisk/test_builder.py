"""Tests for the end-to-end broadcast-disk designers."""

import pytest

from repro.bdisk.builder import design_generalized_program, design_program
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.core.verify import satisfies_bc
from repro.errors import BandwidthError


class TestDesignProgram:
    def test_basic_design(self):
        files = [
            FileSpec("pos", 4, 2, fault_budget=2),
            FileSpec("map", 6, 5, fault_budget=1),
            FileSpec("wx", 2, 10),
        ]
        design = design_program(files)
        assert design.bandwidth_plan is not None
        assert design.conjunct is None
        program = design.program
        bandwidth = design.bandwidth_plan.bandwidth
        for spec in files:
            window = bandwidth * spec.latency
            assert program.min_distinct_in_window(spec.name, window) >= (
                spec.blocks + spec.fault_budget
            )

    def test_single_file(self):
        design = design_program([FileSpec("only", 3, 4)])
        assert design.program.files == ("only",)

    def test_str_summarizes(self):
        design = design_program([FileSpec("f", 1, 2)])
        assert "ProgramDesign" in str(design)
        assert "BandwidthPlan" in str(design)

    def test_infeasible_bandwidth_propagates(self):
        with pytest.raises(BandwidthError):
            design_program([FileSpec("f", 2, 2)], bandwidth=0)


class TestDesignGeneralizedProgram:
    def test_paper_style_specs(self):
        specs = [
            GeneralizedFileSpec("F", 2, (5, 6, 6)),   # Example 5 shape
            GeneralizedFileSpec("H", 1, (9, 12)),
        ]
        design = design_generalized_program(specs)
        assert design.conjunct is not None
        assert len(design.candidates) == 2
        for spec in specs:
            assert satisfies_bc(design.program.schedule, spec.as_condition())

    def test_distinct_blocks_per_fault_level(self):
        specs = [GeneralizedFileSpec("F", 2, (6, 8, 10))]
        design = design_generalized_program(specs)
        program = design.program
        for j, window in enumerate(specs[0].latency_vector):
            assert program.min_distinct_in_window("F", window) >= 2 + j

    def test_regular_files_pass_through(self):
        specs = [
            GeneralizedFileSpec.regular("a", 1, 4),
            GeneralizedFileSpec.regular("b", 2, 9),
        ]
        design = design_generalized_program(specs)
        for spec in specs:
            assert satisfies_bc(design.program.schedule, spec.as_condition())

    def test_uniform_vector_matches_section32_semantics(self):
        """A uniform latency vector behaves like the m + r model."""
        spec = GeneralizedFileSpec.uniform("F", 2, 10, faults=2)
        design = design_generalized_program([spec])
        # Within every 10-slot window: at least 4 distinct blocks.
        assert design.program.min_distinct_in_window("F", 10) >= 4

    def test_provenance_recorded(self):
        specs = [GeneralizedFileSpec("F", 2, (5, 6, 6))]
        design = design_generalized_program(specs)
        assert design.candidates[0].strategy in {
            "merge",
            "TR1",
            "TR2",
            "TR2-reduced",
        }
