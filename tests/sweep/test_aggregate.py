"""Tests for tidy aggregation of sweep rows."""

import pytest

from repro.api import Scenario
from repro.errors import SpecificationError
from repro.sweep import (
    SweepAxis,
    SweepSpec,
    marginals,
    render_table,
    run_sweep,
    tidy_rows,
)


@pytest.fixture(scope="module")
def grid_result():
    base = Scenario.from_dict(
        {
            "name": "base",
            "files": [
                {"name": "pos", "blocks": 2, "latency": 2,
                 "fault_budget": 1},
                {"name": "map", "blocks": 3, "latency": 6},
            ],
            "workload": {"requests": 10, "horizon": 60, "seed": 4},
            "delay_errors": 1,
        }
    )
    spec = SweepSpec(
        name="grid",
        base=base,
        axes=(
            SweepAxis("faults.kind", ("bernoulli",)),
            SweepAxis("faults.probability", (0.0, 0.3)),
        ),
    )
    return run_sweep(spec)


class TestTidy:
    def test_axis_columns_and_metrics(self, grid_result):
        records = tidy_rows(grid_result.rows)
        assert len(records) == 2
        first = records[0]
        assert first["faults.probability"] == 0.0
        assert first["bandwidth"] == 3
        assert first["method"]
        assert first["sim_bounded"] is True
        assert first["worst_delay"] >= 0
        # necessary = 3/2 + 3/6 = 2.0; bandwidth 3 -> overhead 0.5
        assert first["bandwidth_overhead"] == pytest.approx(0.5)

    def test_records_match_result_helper(self, grid_result):
        assert tidy_rows(grid_result.rows) == grid_result.records()


class TestMarginals:
    def test_groups_and_means(self, grid_result):
        records = grid_result.records()
        out = marginals(records, "faults.probability", ["sim_miss_rate"])
        assert [entry["faults.probability"] for entry in out] == [0.0, 0.3]
        assert all(entry["cells"] == 1 for entry in out)
        assert out[0]["mean_sim_miss_rate"] == 0.0

    def test_numeric_sort_not_lexical(self):
        records = [{"x": value, "m": 1.0} for value in (10, 2, 1)]
        out = marginals(records, "x", ["m"])
        assert [entry["x"] for entry in out] == [1, 2, 10]

    def test_none_metrics_are_ignored(self):
        records = [
            {"x": 1, "m": 2.0},
            {"x": 1, "m": None},
            {"x": 1},
        ]
        out = marginals(records, "x", ["m"])
        assert out == [{"x": 1, "cells": 3, "mean_m": 2.0}]

    def test_unhashable_axis_values_group(self):
        records = [
            {"policy": ["greedy"], "m": 1.0},
            {"policy": ["greedy"], "m": 3.0},
            {"policy": "auto", "m": 5.0},
        ]
        out = marginals(records, "policy", ["m"])
        by_cells = {entry["cells"] for entry in out}
        assert by_cells == {1, 2}

    def test_requires_metrics(self):
        with pytest.raises(SpecificationError):
            marginals([], "x", [])


class TestRenderTable:
    def test_alignment_and_formatting(self):
        records = [
            {"axis": 0.5, "miss": 0.125, "ok": True, "gone": None},
            {"axis": 1.0, "miss": 0.25, "ok": False, "gone": None},
        ]
        table = render_table(records)
        lines = table.splitlines()
        assert lines[0].split("|") and "axis" in lines[0]
        assert "gone" not in lines[0]  # all-empty columns dropped
        assert "yes" in table and "no" in table
        assert len(lines) == 4  # header, rule, two rows

    def test_columns_are_the_union_over_all_records(self):
        # A metric only later cells populate still gets its column.
        records = [
            {"axis": 0, "miss": 0.0},
            {"axis": 1, "miss": 0.1, "worst_delay": 8},
        ]
        table = render_table(records)
        assert "worst_delay" in table.splitlines()[0]
        assert table.splitlines()[2].strip().endswith("-")

    def test_explicit_columns(self):
        records = [{"a": 1, "b": 2}]
        table = render_table(records, columns=["b"])
        assert "a" not in table and "b" in table

    def test_empty(self):
        assert render_table([]) == "(no rows)"


class TestMarginalAccumulator:
    """The streaming accumulator must reproduce ``marginals`` exactly -
    the distributed coordinator's live view is not allowed to drift
    from the batch computation."""

    def test_matches_batch_marginals(self, grid_result):
        from repro.sweep import MarginalAccumulator

        metrics = ("sim_miss_rate", "sim_p95")
        fields = ("faults.kind", "faults.probability")
        accumulator = MarginalAccumulator(fields=fields, metrics=metrics)
        for row in grid_result.rows:
            accumulator.add_row(row)
        records = grid_result.records()
        expected = {
            field: marginals(records, field, metrics)
            for field in fields
        }
        assert accumulator.summary() == expected
        assert accumulator.rows == len(records)

    def test_streaming_order_is_irrelevant(self, grid_result):
        from repro.sweep import MarginalAccumulator

        forward = MarginalAccumulator(
            fields=("faults.probability",), metrics=("sim_p95",)
        )
        backward = MarginalAccumulator(
            fields=("faults.probability",), metrics=("sim_p95",)
        )
        for row in grid_result.rows:
            forward.add_row(row)
        for row in reversed(grid_result.rows):
            backward.add_row(row)
        assert forward.summary() == backward.summary()

    def test_requires_metrics(self):
        from repro.sweep import MarginalAccumulator

        with pytest.raises(SpecificationError):
            MarginalAccumulator(fields=("x",), metrics=())
