"""Tests for sweep specifications and grid expansion."""

import pytest

from repro.api import Scenario
from repro.bdisk.file import FileSpec
from repro.errors import SpecificationError
from repro.sweep import SweepAxis, SweepSpec, apply_overrides, set_dotted


def base_scenario(**overrides) -> Scenario:
    params = dict(
        name="base",
        files=(
            FileSpec("pos", 2, 2, fault_budget=1),
            FileSpec("map", 3, 6),
        ),
    )
    params.update(overrides)
    return Scenario(**params)


class TestAxis:
    def test_values_round_trip(self):
        axis = SweepAxis("faults.probability", (0.0, 0.1))
        assert SweepAxis.from_dict(axis.to_dict()) == axis

    def test_range_expansion_integers(self):
        axis = SweepAxis.from_dict(
            {"field": "traffic.clients",
             "range": {"start": 100, "stop": 500, "step": 200}}
        )
        assert axis.values == (100, 300, 500)
        assert all(isinstance(v, int) for v in axis.values)

    def test_range_expansion_floats_inclusive_endpoint(self):
        axis = SweepAxis.from_dict(
            {"field": "workload.zipf_skew",
             "range": {"start": 0.0, "stop": 1.5, "step": 0.5}}
        )
        assert axis.values == (0.0, 0.5, 1.0, 1.5)

    def test_range_rejects_bad_shapes(self):
        for payload in (
            {"field": "f", "range": {"start": 0}},
            {"field": "f", "range": {"start": 0, "stop": 2, "step": 0}},
            {"field": "f", "range": {"start": 3, "stop": 1}},
            {"field": "f", "range": {"start": 0, "stop": 2, "junk": 1}},
        ):
            with pytest.raises(SpecificationError):
                SweepAxis.from_dict(payload)

    def test_exactly_one_of_values_and_range(self):
        with pytest.raises(SpecificationError, match="exactly one"):
            SweepAxis.from_dict({"field": "f"})
        with pytest.raises(SpecificationError, match="exactly one"):
            SweepAxis.from_dict(
                {"field": "f", "values": [1], "range": {"start": 0,
                                                        "stop": 1}}
            )

    def test_empty_values_rejected(self):
        with pytest.raises(SpecificationError, match="at least one"):
            SweepAxis("f", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(SpecificationError, match="duplicate values"):
            SweepAxis("faults.probability", (0.1, 0.2, 0.1))
        # Unhashable values deduplicate by content too.
        with pytest.raises(SpecificationError, match="duplicate values"):
            SweepAxis("scheduler_policy", (["greedy"], ["greedy"]))

    def test_bad_field_paths_rejected(self):
        for field in ("", "a..b", ".a", 7):
            with pytest.raises(SpecificationError):
                SweepAxis(field, (1,))


class TestDottedOverrides:
    def test_sets_nested_field(self):
        out = apply_overrides(
            base_scenario(), {"faults.kind": "bernoulli",
                              "faults.probability": 0.25}
        )
        assert out.faults.kind == "bernoulli"
        assert out.faults.probability == 0.25

    def test_creates_absent_intermediate_blocks(self):
        # The base has no traffic block; overriding through it builds
        # one with spec defaults for everything else.
        out = apply_overrides(base_scenario(), {"traffic.clients": 7})
        assert out.traffic is not None and out.traffic.clients == 7

    def test_list_index_segments(self):
        out = apply_overrides(base_scenario(), {"files.1.blocks": 4})
        assert out.files[1].blocks == 4
        with pytest.raises(SpecificationError, match="out of range"):
            apply_overrides(base_scenario(), {"files.9.blocks": 4})
        with pytest.raises(SpecificationError, match="list index"):
            apply_overrides(base_scenario(), {"files.map.blocks": 4})

    def test_scalar_intermediate_rejected(self):
        with pytest.raises(SpecificationError, match="is not an object"):
            apply_overrides(base_scenario(), {"name.x.y": 1})

    def test_bad_cell_value_fails_validation(self):
        with pytest.raises(SpecificationError):
            apply_overrides(
                base_scenario(), {"faults.kind": "cosmic-rays"}
            )

    def test_set_dotted_top_level(self):
        payload = {"a": 1}
        set_dotted(payload, "a", 2)
        set_dotted(payload, "b", 3)
        assert payload == {"a": 2, "b": 3}


class TestSweepSpec:
    def spec(self) -> SweepSpec:
        return SweepSpec(
            name="grid",
            base=base_scenario(),
            axes=(
                SweepAxis("faults.kind", ("none", "bernoulli")),
                SweepAxis("faults.probability", (0.0, 0.1, 0.2)),
            ),
        )

    def test_total_and_expansion_order(self):
        spec = self.spec()
        assert spec.total_cells == 6
        cells = spec.cells()
        assert len(cells) == 6
        # Row-major: the first axis varies slowest.
        kinds = [dict(cell.overrides)["faults.kind"] for cell in cells]
        assert kinds == ["none"] * 3 + ["bernoulli"] * 3
        assert [cell.index for cell in cells] == list(range(6))

    def test_cell_keys_are_stable_and_distinct(self):
        cells = self.spec().cells()
        keys = [cell.key for cell in cells]
        assert len(set(keys)) == 6
        assert keys == [cell.key for cell in self.spec().cells()]
        assert keys[1] == 'faults.kind="none";faults.probability=0.1'

    def test_cells_carry_validated_scenarios(self):
        for cell in self.spec().cells():
            overrides = dict(cell.overrides)
            assert cell.scenario.faults.kind == overrides["faults.kind"]

    def test_no_axes_is_a_single_cell(self):
        spec = SweepSpec(name="point", base=base_scenario())
        cells = spec.cells()
        assert spec.total_cells == 1 and len(cells) == 1
        assert cells[0].key == "" and cells[0].overrides == ()

    def test_duplicate_axis_fields_rejected(self):
        with pytest.raises(SpecificationError, match="duplicate axis"):
            SweepSpec(
                name="dup",
                base=base_scenario(),
                axes=(
                    SweepAxis("faults.probability", (0.0,)),
                    SweepAxis("faults.probability", (0.1,)),
                ),
            )

    def test_json_round_trip(self):
        spec = self.spec()
        again = SweepSpec.from_json(spec.to_json())
        assert again.to_dict() == spec.to_dict()
        assert again.base.to_dict() == spec.base.to_dict()

    def test_file_round_trip(self, tmp_path):
        spec = self.spec()
        path = tmp_path / "grid.json"
        spec.save(path)
        assert SweepSpec.from_file(path).to_dict() == spec.to_dict()

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecificationError, match="unknown keys"):
            SweepSpec.from_dict(
                {"name": "x", "base": base_scenario().to_dict(),
                 "grid": []}
            )

    def test_base_required(self):
        with pytest.raises(SpecificationError, match="'base' is required"):
            SweepSpec.from_dict({"name": "x"})

    def test_invalid_cell_fails_at_expansion(self):
        spec = SweepSpec(
            name="bad",
            base=base_scenario(),
            axes=(
                SweepAxis("faults.kind", ("bernoulli",)),
                SweepAxis("faults.probability", (0.0, 2.0)),
            ),
        )
        with pytest.raises(SpecificationError):
            spec.cells()
