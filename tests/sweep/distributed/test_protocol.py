"""Tests for the length-prefixed JSON wire protocol."""

import socket
import threading

import pytest

from repro.errors import SpecificationError
from repro.sweep.distributed.protocol import (
    MAX_FRAME_BYTES,
    FramedSocket,
    ProtocolError,
    connect,
    decode_payload,
    encode_frame,
    parse_address,
)


def pair():
    left, right = socket.socketpair()
    return FramedSocket(left), FramedSocket(right)


class TestFraming:
    def test_roundtrip(self):
        a, b = pair()
        try:
            message = {"type": "hello", "worker": "w0", "n": [1, 2, 3]}
            a.send(message)
            assert b.recv(timeout=1.0) == message
        finally:
            a.close()
            b.close()

    def test_many_messages_one_stream(self):
        a, b = pair()
        try:
            for index in range(50):
                a.send({"type": "tick", "index": index})
            got = [b.recv(timeout=1.0)["index"] for _ in range(50)]
            assert got == list(range(50))
        finally:
            a.close()
            b.close()

    def test_partial_delivery_survives(self):
        # Dribble one frame a byte at a time through a raw socket: the
        # reader must reassemble it across arbitrary segmentation.
        left, right = socket.socketpair()
        framed = FramedSocket(right)
        frame = encode_frame({"type": "result", "value": "x" * 300})
        try:

            def dribble():
                for offset in range(len(frame)):
                    left.sendall(frame[offset : offset + 1])

            thread = threading.Thread(target=dribble)
            thread.start()
            message = framed.recv(timeout=5.0)
            thread.join()
            assert message == {"type": "result", "value": "x" * 300}
        finally:
            left.close()
            framed.close()

    def test_timeout_mid_frame_preserves_buffer(self):
        # A timeout with half a frame buffered must return None and
        # then complete cleanly once the rest arrives.
        left, right = socket.socketpair()
        framed = FramedSocket(right)
        frame = encode_frame({"type": "grant", "units": []})
        try:
            left.sendall(frame[:5])
            assert framed.recv(timeout=0.05) is None
            left.sendall(frame[5:])
            assert framed.recv(timeout=1.0) == {
                "type": "grant",
                "units": [],
            }
        finally:
            left.close()
            framed.close()

    def test_eof_raises(self):
        a, b = pair()
        a.close()
        with pytest.raises(EOFError):
            b.recv(timeout=1.0)
        b.close()

    def test_oversize_header_rejected(self):
        left, right = socket.socketpair()
        framed = FramedSocket(right)
        try:
            left.sendall(
                (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
            )
            with pytest.raises(ProtocolError, match="exceeds"):
                framed.recv(timeout=1.0)
        finally:
            left.close()
            framed.close()

    def test_oversize_outgoing_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"type": "x", "blob": "y" * (MAX_FRAME_BYTES)})

    def test_non_serializable_rejected(self):
        with pytest.raises(ProtocolError, match="JSON"):
            encode_frame({"type": "x", "bad": object()})

    def test_nan_rejected(self):
        # allow_nan=False: NaN would not survive a JSON round trip.
        with pytest.raises(ProtocolError):
            encode_frame({"type": "x", "value": float("nan")})


class TestDecode:
    def test_requires_object_with_type(self):
        with pytest.raises(ProtocolError, match="string 'type'"):
            decode_payload(b"[1, 2]")
        with pytest.raises(ProtocolError, match="string 'type'"):
            decode_payload(b'{"no_type": 1}')

    def test_malformed_json(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_payload(b"{nope")


class TestParseAddress:
    def test_roundtrip(self):
        assert parse_address("127.0.0.1:8000") == ("127.0.0.1", 8000)

    @pytest.mark.parametrize(
        "raw", ["nohost", ":8000", "host:", "host:nan", "host:70000"]
    )
    def test_rejects(self, raw):
        with pytest.raises(SpecificationError):
            parse_address(raw)


class TestConnect:
    def test_connects_to_listener(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        framed = connect(host, port, timeout=5.0)
        conn, _ = listener.accept()
        try:
            framed.send({"type": "hello"})
            server = FramedSocket(conn)
            assert server.recv(timeout=1.0) == {"type": "hello"}
        finally:
            framed.close()
            conn.close()
            listener.close()

    def test_gives_up_after_timeout(self):
        # A port nothing listens on: bind-then-close reserves one.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        with pytest.raises(SpecificationError, match="cannot connect"):
            connect(host, port, timeout=0.3)
