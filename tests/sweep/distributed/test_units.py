"""Tests for content-addressed work units and lazy expansion."""

import pytest

from repro.api import Scenario
from repro.errors import SpecificationError
from repro.sweep import SweepAxis, SweepSpec
from repro.sweep.distributed import (
    WorkUnit,
    iter_units,
    strip_volatile,
    unit_fingerprint,
)


def grid_spec() -> SweepSpec:
    base = Scenario.from_dict(
        {
            "name": "base",
            "files": [
                {"name": "pos", "blocks": 2, "latency": 2,
                 "fault_budget": 1},
                {"name": "map", "blocks": 3, "latency": 6},
            ],
            "workload": {"requests": 10, "horizon": 60, "seed": 4},
        }
    )
    return SweepSpec(
        name="grid",
        base=base,
        axes=(
            SweepAxis("faults.kind", ("bernoulli",)),
            SweepAxis("faults.probability", (0.0, 0.05)),
            SweepAxis("faults.seed", (1, 2)),
        ),
    )


class TestLazyExpansion:
    def test_matches_eager_cells(self):
        """The core parity contract behind the coordinator's queue.

        Keys, indices, and overrides are exactly ``spec.cells()``'s;
        the payload is pre-normalization but must *validate to* the
        identical scenario.
        """
        spec = grid_spec()
        units = list(iter_units(spec))
        cells = spec.cells()
        assert len(units) == len(cells) == spec.total_cells
        for unit, cell in zip(units, cells):
            assert unit.key == cell.key
            assert unit.index == cell.index
            assert unit.overrides == cell.overrides
            assert (
                Scenario.from_dict(unit.scenario).to_dict()
                == cell.scenario.to_dict()
            )

    def test_uids_are_distinct_and_deterministic(self):
        spec = grid_spec()
        first = [unit.uid for unit in iter_units(spec)]
        second = [unit.uid for unit in iter_units(spec)]
        assert first == second
        assert len(set(first)) == len(first)

    def test_uid_covers_scenario_fingerprint(self):
        # The uid is the fingerprint of {key, scenario}: any payload
        # change moves the address.
        spec = grid_spec()
        unit = next(iter_units(spec))
        assert unit.uid == unit_fingerprint(unit.key, unit.scenario)
        tampered = dict(unit.scenario)
        tampered["name"] = "other"
        assert unit.uid != unit_fingerprint(unit.key, tampered)


class TestWireForm:
    def test_roundtrip(self):
        unit = next(iter_units(grid_spec()))
        assert WorkUnit.from_dict(unit.to_dict()) == unit

    def test_tampered_payload_rejected(self):
        unit = next(iter_units(grid_spec()))
        payload = unit.to_dict()
        payload["scenario"] = dict(payload["scenario"], name="evil")
        with pytest.raises(SpecificationError, match="content"):
            WorkUnit.from_dict(payload)

    def test_tampered_key_rejected(self):
        unit = next(iter_units(grid_spec()))
        payload = unit.to_dict()
        payload["key"] = "faults.seed=999"
        with pytest.raises(SpecificationError, match="content"):
            WorkUnit.from_dict(payload)

    def test_malformed_unit_rejected(self):
        with pytest.raises(SpecificationError, match="malformed"):
            WorkUnit.from_dict({"uid": "x"})


class TestScenarioFingerprint:
    def test_covers_runtime_knobs(self):
        # design_fingerprint is blind to fault knobs (that is the
        # solve-cache's whole point); scenario_fingerprint is not.
        a = Scenario.from_dict(
            {
                "name": "s",
                "files": [{"name": "pos", "blocks": 2, "latency": 4}],
                "faults": {"kind": "bernoulli", "probability": 0.1,
                           "seed": 1},
            }
        )
        b = Scenario.from_dict(
            {
                "name": "s",
                "files": [{"name": "pos", "blocks": 2, "latency": 4}],
                "faults": {"kind": "bernoulli", "probability": 0.1,
                           "seed": 2},
            }
        )
        assert a.design_fingerprint() == b.design_fingerprint()
        assert a.scenario_fingerprint() != b.scenario_fingerprint()

    def test_stable_across_instances(self):
        payload = {
            "name": "s",
            "files": [{"name": "pos", "blocks": 2, "latency": 4}],
        }
        assert (
            Scenario.from_dict(payload).scenario_fingerprint()
            == Scenario.from_dict(payload).scenario_fingerprint()
        )


class TestStripVolatile:
    def test_drops_exactly_the_wall_clock_fields(self):
        row = {
            "key": "k",
            "index": 0,
            "fingerprint": "fp",
            "cache_hit": True,
            "elapsed": 0.5,
            "result": {
                "scenario": {"name": "s"},
                "traffic": {
                    "miss_rate": 0.1,
                    "requests_per_sec": 1234.5,
                    "workers": 8,
                },
            },
        }
        stripped = strip_volatile(row)
        assert "elapsed" not in stripped
        assert "cache_hit" not in stripped
        assert stripped["result"]["traffic"] == {"miss_rate": 0.1}
        # The original is untouched (the copy is deep).
        assert row["result"]["traffic"]["workers"] == 8

    def test_no_traffic_block(self):
        row = {"key": "k", "elapsed": 1.0, "result": {"scenario": {}}}
        assert strip_volatile(row) == {
            "key": "k",
            "result": {"scenario": {}},
        }
