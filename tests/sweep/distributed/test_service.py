"""Integration tests for the distributed sweep service.

The core invariant under test: for any worker count and any kill
schedule, the distributed row set is identical to serial ``run_sweep``
modulo wall-clock fields.  Workers here are *real* subprocesses running
the real ``repro sweep work`` CLI - a SIGKILL is an actual SIGKILL.
"""

import json
import socket
import threading
import time

import pytest

from repro.api import Scenario
from repro.obs import telemetry as obs
from repro.sweep import RunStore, SweepAxis, SweepSpec, run_sweep
from repro.sweep.distributed import (
    PROTOCOL_VERSION,
    FramedSocket,
    SweepCoordinator,
    connect,
    run_distributed_sweep,
    run_worker,
    spawn_worker,
    strip_volatile,
    wait_for_workers,
)


def multichannel_base(**overrides) -> Scenario:
    payload = {
        "name": "mc-dist",
        "files": [
            {"name": f"f{i}", "blocks": 2 + (i % 2), "latency": 12 + 4 * i}
            for i in range(4)
        ],
        "channels": {"count": 2},
        "workload": {"requests": 20, "horizon": 150, "seed": 4},
        "traffic": {
            "clients": 6, "duration": 120, "requests_per_client": 1,
            "seed": 5,
        },
    }
    payload.update(overrides)
    return Scenario.from_dict(payload)


def multichannel_grid(seeds=(1, 2)) -> SweepSpec:
    # channels.tuning_cost is a runtime knob (designs shared per
    # count), faults.* are runtime-only: 2 channel counts => exactly
    # 2 distinct designs however many cells run.
    return SweepSpec(
        name="mc-grid",
        base=multichannel_base(),
        axes=(
            SweepAxis("channels.count", (1, 2)),
            SweepAxis("faults.kind", ("bernoulli",)),
            SweepAxis("faults.probability", (0.0, 0.05, 0.1)),
            SweepAxis("faults.seed", tuple(seeds)),
        ),
    )


def rows_by_key(rows):
    return {row["key"]: strip_volatile(row) for row in rows}


def assert_identical(serial_rows, dist_rows):
    serial = rows_by_key(serial_rows)
    dist = rows_by_key(dist_rows)
    assert set(serial) == set(dist)
    for key, row in serial.items():
        assert dist[key] == row, f"row mismatch at {key}"


@pytest.fixture(scope="module")
def serial_baseline(tmp_path_factory):
    """One serial run of the shared grid, reused across this module."""
    tmp = tmp_path_factory.mktemp("serial")
    spec = multichannel_grid()
    result = run_sweep(
        spec, store_path=tmp / "runs.jsonl", cache_dir=tmp / "cache"
    )
    return spec, result


class TestIdentityAcrossWorkerCounts:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_row_set_identical_to_serial(
        self, tmp_path, serial_baseline, workers
    ):
        spec, serial = serial_baseline
        dist = run_distributed_sweep(
            spec,
            workers=workers,
            store_path=tmp_path / "dist.jsonl",
            lease_seconds=10.0,
            batch=3,
        )
        assert dist.executed == spec.total_cells
        assert_identical(serial.rows, dist.rows)
        # The shared cache + single-flight: one solve per distinct
        # design across every worker process.
        assert dist.distinct_designs == 2
        assert dist.solves == 2
        # The store holds every key (what a resume would read).
        stored = {
            row["key"] for row in RunStore(tmp_path / "dist.jsonl").rows()
        }
        assert stored == {row["key"] for row in serial.rows}


class TestKillSchedules:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sigkill_one_worker_loses_nothing(
        self, tmp_path, workers
    ):
        # A longer grid so the kill reliably lands mid-run.
        spec = multichannel_grid(seeds=(1, 2, 3, 4))
        serial = run_sweep(
            spec,
            store_path=tmp_path / "serial.jsonl",
            cache_dir=tmp_path / "serial-cache",
        )
        coordinator = SweepCoordinator(
            spec,
            store_path=tmp_path / "dist.jsonl",
            lease_seconds=1.0,
            batch=2,
        )
        cache = tmp_path / "cache"
        children = [
            spawn_worker(
                coordinator.address, cache_dir=cache, name=f"w{i}"
            )
            for i in range(workers)
        ]
        state = {}

        def killer():
            # SIGKILL the first worker once the grid is mid-flight,
            # then add a replacement (required when workers == 1).
            while coordinator.completed_count < 3:
                time.sleep(0.005)
            children[0].kill()
            state["killed_at"] = coordinator.completed_count
            children.append(
                spawn_worker(
                    coordinator.address, cache_dir=cache, name="spare"
                )
            )

        thread = threading.Thread(target=killer, daemon=True)
        thread.start()
        result = coordinator.serve()
        thread.join(timeout=10.0)
        wait_for_workers(children)

        assert state["killed_at"] < spec.total_cells
        assert result.executed == spec.total_cells
        assert not result.failures
        assert_identical(serial.rows, result.rows)
        # Exactly-once solving survives the crash: the worker stats
        # ride on every result batch, not just the goodbye.
        assert result.solves == result.distinct_designs == 2

    def test_hung_worker_leases_expire_and_requeue(self, tmp_path):
        # Deterministic variant: a fake worker leases cells and then
        # goes *silent without closing* - no EOF, so only the
        # heartbeat deadline can reclaim its cells.
        spec = multichannel_grid(seeds=(1, 2, 3))
        coordinator = SweepCoordinator(
            spec,
            store_path=tmp_path / "dist.jsonl",
            lease_seconds=0.5,
            batch=4,
        )
        host, port = coordinator.address
        outcome = {}

        def serve():
            outcome["result"] = coordinator.serve()

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        victim = connect(host, port, timeout=5.0)
        victim.send(
            {
                "type": "hello",
                "worker": "victim",
                "pid": 0,
                "protocol": PROTOCOL_VERSION,
                "cache_dir": None,
            }
        )
        assert victim.recv(timeout=5.0)["type"] == "welcome"
        victim.send({"type": "request", "max_units": 4})
        grant = victim.recv(timeout=5.0)
        assert grant["type"] == "grant" and len(grant["units"]) == 4
        # Silence.  The rescuer must end up computing everything.
        children = [
            spawn_worker(
                coordinator.address,
                cache_dir=tmp_path / "cache",
                name="rescuer",
            )
        ]
        server.join(timeout=120.0)
        victim.close()
        wait_for_workers(children)
        result = outcome["result"]
        assert result.executed == spec.total_cells
        assert result.requeued >= 4
        assert result.lease_expiries >= 4


class TestCoordinatorRestart:
    def test_resume_after_restart_reuses_stored_rows(self, tmp_path):
        spec = multichannel_grid()
        store = tmp_path / "dist.jsonl"
        cache = tmp_path / "cache"
        first = run_distributed_sweep(
            spec, workers=2, store_path=store, cache_dir=cache
        )
        assert first.executed == spec.total_cells

        # "Coordinator restart": a fresh coordinator over the same
        # store resumes every row without needing a single worker.
        second = SweepCoordinator(
            spec, store_path=store, resume=True
        ).serve()
        assert second.resumed == spec.total_cells
        assert second.executed == 0
        assert second.rerun_drift == 0
        assert second.rerun_missing == 0
        assert_identical(first.rows, second.rows)

    def test_resume_classifies_reruns(self, tmp_path):
        spec = multichannel_grid()
        store = tmp_path / "dist.jsonl"
        run_distributed_sweep(spec, workers=2, store_path=store)

        # Drop one row (missing key) and corrupt another's stored
        # scenario (fingerprint drift); both must re-run, for the
        # right reported reasons.
        rows = RunStore(store).rows()
        dropped = rows[0]["key"]
        drifted = rows[1]["key"]
        rewritten = []
        for row in rows:
            if row["key"] == dropped:
                continue
            if row["key"] == drifted:
                row = json.loads(json.dumps(row))
                row["result"]["scenario"]["name"] = "stale-base"
            rewritten.append(row)
        store.unlink()
        fresh = RunStore(store)
        fresh.append_many(rewritten)

        coordinator = SweepCoordinator(
            spec,
            store_path=store,
            resume=True,
            lease_seconds=5.0,
        )
        children = [
            spawn_worker(
                coordinator.address,
                cache_dir=tmp_path / "cache2",
                name="w0",
            )
        ]
        result = coordinator.serve()
        wait_for_workers(children)
        assert result.resumed == spec.total_cells - 2
        assert result.executed == 2
        assert result.rerun_drift == 1
        assert result.rerun_missing == 1
        assert result.summary()["rerun"] == {
            "fingerprint_drift": 1,
            "missing_key": 1,
        }


class TestWorkerEdges:
    def test_max_units_worker_departs_politely(self, tmp_path):
        spec = multichannel_grid()
        coordinator = SweepCoordinator(
            spec, store_path=tmp_path / "dist.jsonl", batch=2
        )
        host, port = coordinator.address
        results = {}

        def partial():
            results["partial"] = run_worker(
                host, port, cache_dir=tmp_path / "cache",
                name="partial", max_units=3,
            )

        def finisher():
            results["finisher"] = run_worker(
                host, port, cache_dir=tmp_path / "cache",
                name="finisher",
            )

        threads = [
            threading.Thread(target=partial, daemon=True),
            threading.Thread(target=finisher, daemon=True),
        ]
        for thread in threads:
            thread.start()
        result = coordinator.serve()
        for thread in threads:
            thread.join(timeout=10.0)
        assert results["partial"]["cells"] == 3
        assert result.executed == spec.total_cells
        assert (
            results["partial"]["cells"] + results["finisher"]["cells"]
            == spec.total_cells
        )

    def test_failed_cell_is_reported_not_fatal(self, tmp_path):
        # An axis value the validator rejects at the worker: that one
        # cell fails, every other cell still completes.
        spec = SweepSpec(
            name="bad-grid",
            base=multichannel_base(),
            axes=(SweepAxis("faults.kind", ("bernoulli", "nope")),),
        )
        coordinator = SweepCoordinator(
            spec, store_path=tmp_path / "dist.jsonl"
        )
        children = [
            spawn_worker(
                coordinator.address,
                cache_dir=tmp_path / "cache",
                name="w0",
            )
        ]
        result = coordinator.serve()
        wait_for_workers(children)
        assert result.executed == 1
        assert len(result.failures) == 1
        assert 'faults.kind="nope"' in result.failures[0]["key"]
        assert "nope" in result.failures[0]["error"]

    def test_protocol_mismatch_rejected(self, tmp_path):
        spec = multichannel_grid()
        coordinator = SweepCoordinator(spec)
        host, port = coordinator.address
        server = threading.Thread(
            target=coordinator.serve, daemon=True
        )
        server.start()
        framed = connect(host, port, timeout=5.0)
        try:
            framed.send(
                {
                    "type": "hello",
                    "worker": "old",
                    "pid": 0,
                    "protocol": PROTOCOL_VERSION + 1,
                    "cache_dir": None,
                }
            )
            answer = framed.recv(timeout=5.0)
            assert answer["type"] == "error"
            assert "protocol mismatch" in answer["reason"]
        finally:
            framed.close()
            coordinator.close()
            server.join(timeout=10.0)


class TestTelemetry:
    def test_counters_and_worker_merge(self, tmp_path):
        spec = multichannel_grid()
        with obs.capture() as tel:
            result = run_distributed_sweep(
                spec,
                workers=2,
                store_path=tmp_path / "dist.jsonl",
                lease_seconds=10.0,
            )
        payload = tel.to_dict()
        metrics = payload["metrics"]
        names = {metric["name"] for metric in metrics}
        assert "sweep.dist.cells.completed" in names
        assert "sweep.dist.leases.granted" in names
        assert "sweep.dist.queue_depth" in names
        assert "sweep.dist.workers" in names
        assert "sweep.dist.worker_utilization" in names
        completed = sum(
            metric["value"]
            for metric in metrics
            if metric["name"] == "sweep.dist.cells.completed"
        )
        assert completed == spec.total_cells
        # Worker registries merged in via the goodbye payload: spans
        # recorded inside the worker *processes* appear in the
        # coordinator's trace ring.
        span_names = {span["name"] for span in payload["spans"]}
        assert "sweep.dist.worker" in span_names
        assert "sweep.cell" in span_names
        assert result.worker_stats
        for stats in result.worker_stats.values():
            assert stats["utilization"] is not None
