"""Tests for the lease table (injected clock, no sockets)."""

import pytest

from repro.api import Scenario
from repro.sweep import SweepAxis, SweepSpec
from repro.sweep.distributed import LeaseTable, iter_units


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


@pytest.fixture
def units():
    base = Scenario.from_dict(
        {
            "name": "base",
            "files": [{"name": "pos", "blocks": 2, "latency": 4}],
        }
    )
    spec = SweepSpec(
        name="grid",
        base=base,
        axes=(SweepAxis("faults.seed", (1, 2, 3, 4)),),
    )
    return list(iter_units(spec))


class TestLeaseTable:
    def test_grant_and_complete(self, units):
        clock = FakeClock()
        table = LeaseTable(lease_seconds=10.0, clock=clock)
        lease = table.grant(units[0], "w0")
        assert lease.deadline == 110.0
        assert units[0].uid in table
        assert table.complete(units[0].uid) is lease
        assert len(table) == 0
        assert table.stats()["completed"] == 1

    def test_complete_unknown_is_none(self, units):
        table = LeaseTable()
        assert table.complete(units[0].uid) is None

    def test_expiry_returns_overdue_units_only(self, units):
        clock = FakeClock()
        table = LeaseTable(lease_seconds=10.0, clock=clock)
        table.grant(units[0], "w0")
        clock.now += 6.0
        table.grant(units[1], "w1")
        clock.now += 5.0  # w0's lease is 1s overdue, w1 has 5s left
        expired = table.expire()
        assert [unit.key for unit in expired] == [units[0].key]
        assert units[1].uid in table
        assert table.stats()["expired"] == 1

    def test_renew_extends_all_of_a_workers_leases(self, units):
        clock = FakeClock()
        table = LeaseTable(lease_seconds=10.0, clock=clock)
        table.grant(units[0], "w0")
        table.grant(units[1], "w0")
        table.grant(units[2], "w1")
        clock.now += 9.0
        assert table.renew("w0") == 2
        clock.now += 2.0  # w1's original deadline has now passed
        expired = table.expire()
        assert [unit.key for unit in expired] == [units[2].key]
        assert len(table) == 2

    def test_release_worker_takes_everything_back(self, units):
        table = LeaseTable(clock=FakeClock())
        table.grant(units[0], "w0")
        table.grant(units[1], "w0")
        table.grant(units[2], "w1")
        released = table.release_worker("w0")
        assert {unit.key for unit in released} == {
            units[0].key,
            units[1].key,
        }
        assert table.workers() == {"w1"}
        assert table.stats()["released"] == 2

    def test_double_grant_asserts(self, units):
        table = LeaseTable(clock=FakeClock())
        table.grant(units[0], "w0")
        with pytest.raises(AssertionError):
            table.grant(units[0], "w1")

    def test_stats_shape(self, units):
        table = LeaseTable(clock=FakeClock())
        table.grant(units[0], "w0")
        assert table.stats() == {
            "outstanding": 1,
            "granted": 1,
            "completed": 0,
            "expired": 0,
            "released": 0,
        }
