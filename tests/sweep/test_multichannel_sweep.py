"""Sweeps over channel axes: dotted paths, solve-cache reuse, columns."""

import pytest

from repro.api import Scenario
from repro.bdisk.multichannel import design_multichannel_program
from repro.api.scenario import ChannelSpec
from repro.bdisk.file import FileSpec
from repro.errors import SpecificationError
from repro.sweep import SweepAxis, SweepSpec, run_sweep, tidy_rows
from repro.sweep.cache import SolveCache


def base_scenario(**overrides) -> Scenario:
    payload = {
        "name": "mc-sweep",
        "files": [
            {"name": f"f{i}", "blocks": 2 + (i % 2), "latency": 12 + 4 * i}
            for i in range(6)
        ],
        "channels": {"count": 2},
        "workload": {"requests": 10, "horizon": 100, "seed": 4},
        "traffic": {
            "clients": 8, "duration": 120, "requests_per_client": 1,
            "seed": 5,
        },
    }
    payload.update(overrides)
    return Scenario.from_dict(payload)


class TestChannelAxes:
    def test_runtime_knob_axis_reuses_the_solved_design(self, tmp_path):
        spec = SweepSpec(
            name="knob-grid",
            base=base_scenario(),
            axes=(
                SweepAxis("channels.tuning_cost", (0, 3)),
                SweepAxis("channels.count", (1, 2)),
            ),
        )
        result = run_sweep(
            spec,
            store_path=tmp_path / "runs.jsonl",
            cache_dir=tmp_path / "cache",
        )
        # tuning_cost is a runtime knob: both values of it share one
        # design per channel count, so 4 cells need only 2 solves.
        assert result.cells == 4 and result.executed == 4
        assert result.distinct_designs == 2
        assert result.solves == 2
        assert result.cache_hits == 2
        assert len({row["fingerprint"] for row in result.rows}) == 2

    def test_topology_axis_changes_the_fingerprint(self, tmp_path):
        spec = SweepSpec(
            name="topo-grid",
            base=base_scenario(),
            axes=(SweepAxis("channels.assignment",
                            ("striped", "replicated")),),
        )
        result = run_sweep(
            spec,
            store_path=tmp_path / "runs.jsonl",
            cache_dir=tmp_path / "cache",
        )
        assert result.distinct_designs == 2
        assert result.solves == 2

    def test_tidy_rows_carry_channel_columns(self, tmp_path):
        spec = SweepSpec(
            name="tidy-grid",
            base=base_scenario(),
            axes=(SweepAxis("channels.count", (1, 2)),),
        )
        result = run_sweep(
            spec,
            store_path=tmp_path / "runs.jsonl",
            cache_dir=tmp_path / "cache",
        )
        records = tidy_rows(result.rows)
        by_k = {record["channels.count"]: record for record in records}
        assert by_k[1]["channels_k"] == 1
        assert by_k[2]["channels_k"] == 2
        for record in records:
            assert record["channel_util_max"] is not None
            assert record["channel_util_max"] > 0
            assert record["channel_switches"] is not None


class TestSolveCacheStorage:
    def test_put_accepts_multichannel_designs(self, tmp_path):
        files = [FileSpec("a", 2, 10), FileSpec("b", 3, 15)]
        design = design_multichannel_program(files, ChannelSpec(count=2))
        cache = SolveCache(tmp_path / "cache")
        cache.put("some-fingerprint", design)
        hit = cache.get("some-fingerprint")
        assert hit is not None
        assert hit.count == 2

    def test_put_still_rejects_foreign_types(self, tmp_path):
        cache = SolveCache(tmp_path / "cache")
        with pytest.raises(SpecificationError, match="MultiChannelDesign"):
            cache.put("junk", object())
