"""Tests for the sweep orchestrator: cache, resume, shared pool."""

import json

import pytest

from repro.api import Scenario
from repro.errors import SpecificationError
from repro.sweep import RunStore, SweepAxis, SweepSpec, run_sweep


def base_scenario(**overrides) -> Scenario:
    payload = {
        "name": "base",
        "files": [
            {"name": "pos", "blocks": 2, "latency": 2, "fault_budget": 1},
            {"name": "map", "blocks": 3, "latency": 6},
        ],
        "workload": {"requests": 10, "horizon": 60, "seed": 4},
    }
    payload.update(overrides)
    return Scenario.from_dict(payload)


def fault_grid(**base_overrides) -> SweepSpec:
    base = base_scenario(**base_overrides)
    return SweepSpec(
        name="fault-grid",
        base=base,
        axes=(
            SweepAxis("faults.kind", ("bernoulli",)),
            SweepAxis("faults.probability", (0.0, 0.05, 0.1)),
            SweepAxis("faults.seed", (1, 2)),
        ),
    )


def strip_timing(row):
    out = dict(row)
    out.pop("elapsed")
    result = json.loads(json.dumps(out["result"]))
    traffic = result.get("traffic")
    if traffic:
        traffic.pop("requests_per_sec", None)
        traffic.pop("workers", None)
    out["result"] = result
    return out


class TestSerial:
    def test_counters_and_rows(self, tmp_path):
        spec = fault_grid()
        result = run_sweep(
            spec,
            store_path=tmp_path / "runs.jsonl",
            cache_dir=tmp_path / "cache",
        )
        assert result.cells == 6 and result.executed == 6
        assert result.resumed == 0
        # One distinct design over the whole fault grid: solved once,
        # every other cell a cache hit.
        assert result.distinct_designs == 1
        assert result.solves == 1
        assert result.cache_hits == 5
        assert [row["index"] for row in result.rows] == list(range(6))
        assert len({row["fingerprint"] for row in result.rows}) == 1

    def test_store_streams_rows(self, tmp_path):
        store_path = tmp_path / "runs.jsonl"
        result = run_sweep(
            spec := fault_grid(),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
        )
        stored = RunStore(store_path).rows()
        assert [row["key"] for row in stored] == [
            cell.key for cell in spec.cells()
        ]
        assert stored == list(result.rows)

    def test_no_store_keeps_rows_in_memory(self):
        result = run_sweep(fault_grid())
        assert result.cells == 6 and result.store_path is None

    def test_memory_only_cache_still_memoizes(self):
        result = run_sweep(fault_grid())
        assert result.solves == 1 and result.cache_hits == 5

    def test_no_cache_solves_every_cell(self, tmp_path):
        result = run_sweep(
            fault_grid(),
            store_path=tmp_path / "runs.jsonl",
            use_cache=False,
        )
        assert result.solves == 6 and result.cache_hits == 0

    def test_rerun_without_resume_starts_fresh_but_keeps_a_backup(
        self, tmp_path
    ):
        store_path = tmp_path / "runs.jsonl"
        run_sweep(fault_grid(), store_path=store_path)
        second = run_sweep(fault_grid(), store_path=store_path)
        assert second.executed == 6 and second.resumed == 0
        assert len(RunStore(store_path).rows()) == 6
        # Forgetting --resume must not destroy finished rows: the old
        # store survives as one .bak generation.
        backup = tmp_path / "runs.jsonl.bak"
        assert len(RunStore(backup).rows()) == 6


class TestResume:
    def test_complete_store_skips_everything(self, tmp_path):
        store_path = tmp_path / "runs.jsonl"
        first = run_sweep(
            fault_grid(),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
        )
        second = run_sweep(
            fault_grid(),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
            resume=True,
        )
        assert second.executed == 0 and second.resumed == 6
        assert [strip_timing(r) for r in second.rows] == [
            strip_timing(r) for r in first.rows
        ]

    def test_killed_run_resumes_without_rerunning_finished_cells(
        self, tmp_path
    ):
        store_path = tmp_path / "runs.jsonl"
        first = run_sweep(
            fault_grid(),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
        )
        # Simulate a mid-run kill: only the first two rows survive,
        # the third is torn mid-append.
        rows = RunStore(store_path).rows()
        with open(store_path, "w", encoding="utf-8") as handle:
            for row in rows[:2]:
                handle.write(json.dumps(row) + "\n")
            handle.write(json.dumps(rows[2])[:25])
        resumed = run_sweep(
            fault_grid(),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
            resume=True,
        )
        assert resumed.resumed == 2 and resumed.executed == 4
        # The design was already cached: no new solves.
        assert resumed.solves == 0
        # The store converged to one row per cell, and the final rows
        # match an uninterrupted run bit-for-bit (minus timing).
        final = RunStore(store_path).rows()
        assert sorted(r["key"] for r in final) == sorted(
            r["key"] for r in first.rows
        )
        assert [strip_timing(r) for r in resumed.rows] == [
            strip_timing(r) for r in first.rows
        ]

    def test_resume_reruns_cells_when_the_base_scenario_changed(
        self, tmp_path
    ):
        # Rows match on the cell key, but a key only names the axis
        # values - if the base scenario changed in any other field, the
        # stored rows are stale and must not be resurrected.
        store_path = tmp_path / "runs.jsonl"
        run_sweep(
            fault_grid(),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
        )
        changed = fault_grid(
            workload={"requests": 10, "horizon": 60, "seed": 99}
        )
        resumed = run_sweep(
            changed,
            store_path=store_path,
            cache_dir=tmp_path / "cache",
            resume=True,
        )
        assert resumed.resumed == 0 and resumed.executed == 6
        for row in resumed.rows:
            seed = row["result"]["scenario"]["workload"]["seed"]
            assert seed == 99

    def test_resume_rewrites_indices_when_the_grid_grew(self, tmp_path):
        # Adding an axis value shifts later cells' positions; reused
        # rows must take their index from the current expansion so the
        # 'cell' column stays collision-free.
        def grid(probabilities):
            return SweepSpec(
                name="growing",
                base=base_scenario(),
                axes=(
                    SweepAxis("faults.kind", ("bernoulli",)),
                    SweepAxis("faults.probability", probabilities),
                ),
            )

        store_path = tmp_path / "runs.jsonl"
        run_sweep(
            grid((0.0, 0.1)),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
        )
        grown = run_sweep(
            grid((0.0, 0.05, 0.1)),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
            resume=True,
        )
        assert grown.resumed == 2 and grown.executed == 1
        assert [row["index"] for row in grown.rows] == [0, 1, 2]
        assert [
            dict(row["overrides"])["faults.probability"]
            for row in grown.rows
        ] == [0.0, 0.05, 0.1]

    def test_resume_requires_a_store(self):
        with pytest.raises(SpecificationError, match="store"):
            run_sweep(fault_grid(), resume=True)


class TestParallel:
    def test_pool_matches_serial_bit_for_bit(self, tmp_path):
        serial = run_sweep(
            fault_grid(),
            store_path=tmp_path / "a.jsonl",
            cache_dir=tmp_path / "cache",
        )
        pooled = run_sweep(
            fault_grid(),
            max_workers=3,
            store_path=tmp_path / "b.jsonl",
            cache_dir=tmp_path / "cache",
        )
        assert [r["result"] for r in pooled.rows] == [
            r["result"] for r in serial.rows
        ]
        assert pooled.workers == 3
        # The warm cache meant zero solver runs in the second sweep.
        assert pooled.solves == 0 and pooled.cache_hits == 6

    def test_cold_parallel_solves_each_design_once(self, tmp_path):
        pooled = run_sweep(
            fault_grid(),
            max_workers=4,
            store_path=tmp_path / "runs.jsonl",
            cache_dir=tmp_path / "cache",
        )
        assert pooled.solves == 1 and pooled.distinct_designs == 1

    def test_traffic_shards_on_the_shared_pool(self, tmp_path):
        spec = SweepSpec(
            name="traffic-grid",
            base=base_scenario(
                workload=None,
                traffic={"clients": 24, "duration": 200, "seed": 7},
            ),
            axes=(
                SweepAxis("faults.kind", ("bernoulli",)),
                SweepAxis("faults.probability", (0.0, 0.08)),
            ),
        )
        serial = run_sweep(
            spec,
            store_path=tmp_path / "a.jsonl",
            cache_dir=tmp_path / "cache",
        )
        pooled = run_sweep(
            spec,
            max_workers=6,
            store_path=tmp_path / "b.jsonl",
            cache_dir=tmp_path / "cache",
        )
        # With 6 workers over 2 cells, each population split 3 ways.
        assert all(
            row["result"]["traffic"]["workers"] == 3
            for row in pooled.rows
        )
        # The cell's traffic wall spans submission to merge, so the
        # stored sustained rate stays plausible (not requests/~0s).
        for row in pooled.rows:
            traffic = row["result"]["traffic"]
            assert traffic["requests_per_sec"] <= (
                traffic["requests"] / row["elapsed"] * 1.01
            )
        assert [strip_timing(r)["result"] for r in pooled.rows] == [
            strip_timing(r)["result"] for r in serial.rows
        ]


    def test_no_cache_never_shards_traffic(self, tmp_path):
        # With the cache off, a shard task would re-solve the design;
        # the control arm must stay at one solve per cell.
        spec = SweepSpec(
            name="traffic-no-cache",
            base=base_scenario(
                workload=None,
                traffic={"clients": 24, "duration": 200, "seed": 7},
            ),
            axes=(SweepAxis("faults.probability", (0.0, 0.08)),),
        )
        result = run_sweep(
            spec,
            max_workers=6,
            store_path=tmp_path / "runs.jsonl",
            use_cache=False,
        )
        assert result.solves == 2
        assert all(
            row["result"]["traffic"]["workers"] == 1
            for row in result.rows
        )


class TestValidation:
    def test_bad_max_workers_rejected(self):
        for bad in (0, -2, True, 1.5):
            with pytest.raises(SpecificationError):
                run_sweep(fault_grid(), max_workers=bad)

    def test_non_spec_rejected(self):
        with pytest.raises(SpecificationError, match="SweepSpec"):
            run_sweep({"name": "x"})


class TestResumeRerunReasons:
    """``--resume`` must say *why* a stored row re-ran: the scenario
    payload drifted (stored row from a different base) vs. the key was
    simply never completed."""

    def test_missing_key_is_classified(self, tmp_path):
        store_path = tmp_path / "runs.jsonl"
        run_sweep(
            fault_grid(),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
        )
        rows = RunStore(store_path).rows()
        with open(store_path, "w", encoding="utf-8") as handle:
            for row in rows[:4]:
                handle.write(json.dumps(row) + "\n")
        resumed = run_sweep(
            fault_grid(),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
            resume=True,
        )
        assert resumed.resumed == 4 and resumed.executed == 2
        assert resumed.rerun_missing == 2
        assert resumed.rerun_drift == 0
        assert resumed.summary()["rerun"] == {
            "fingerprint_drift": 0,
            "missing_key": 2,
        }

    def test_fingerprint_drift_is_classified(self, tmp_path):
        store_path = tmp_path / "runs.jsonl"
        run_sweep(
            fault_grid(),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
        )
        # Same keys, different base scenario: every stored row is
        # stale by drift, none by absence.
        resumed = run_sweep(
            fault_grid(workload={"requests": 12, "horizon": 60,
                                 "seed": 4}),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
            resume=True,
        )
        assert resumed.resumed == 0 and resumed.executed == 6
        assert resumed.rerun_drift == 6
        assert resumed.rerun_missing == 0
        assert resumed.summary()["rerun"] == {
            "fingerprint_drift": 6,
            "missing_key": 0,
        }

    def test_mixed_reasons(self, tmp_path):
        store_path = tmp_path / "runs.jsonl"
        run_sweep(
            fault_grid(),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
        )
        rows = RunStore(store_path).rows()
        # Drop one row entirely; corrupt another's stored scenario.
        dropped, drifted = rows[0]["key"], rows[1]["key"]
        with open(store_path, "w", encoding="utf-8") as handle:
            for row in rows:
                if row["key"] == dropped:
                    continue
                if row["key"] == drifted:
                    row = json.loads(json.dumps(row))
                    row["result"]["scenario"]["name"] = "stale"
                handle.write(json.dumps(row) + "\n")
        resumed = run_sweep(
            fault_grid(),
            store_path=store_path,
            cache_dir=tmp_path / "cache",
            resume=True,
        )
        assert resumed.resumed == 4 and resumed.executed == 2
        assert resumed.rerun_drift == 1
        assert resumed.rerun_missing == 1

    def test_no_resume_reports_zero(self, tmp_path):
        result = run_sweep(
            fault_grid(),
            store_path=tmp_path / "runs.jsonl",
            cache_dir=tmp_path / "cache",
        )
        assert result.rerun_drift == 0 and result.rerun_missing == 0
        assert result.summary()["rerun"] == {
            "fingerprint_drift": 0,
            "missing_key": 0,
        }
