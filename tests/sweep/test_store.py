"""Tests for the resumable JSONL run store."""

import json
from pathlib import Path

import pytest

from repro.errors import SimulationError
from repro.sweep import RunStore


def row(key, value=0):
    return {"key": key, "index": value, "result": {"x": value}}


class TestRoundTrip:
    def test_append_and_read(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        assert store.rows() == [] and not store.exists()
        store.append(row("a"))
        store.append(row("b", 1))
        assert store.exists()
        assert store.rows() == [row("a"), row("b", 1)]
        assert store.completed_keys() == {"a", "b"}

    def test_parent_directories_created(self, tmp_path):
        store = RunStore(tmp_path / "deep" / "down" / "runs.jsonl")
        store.append(row("a"))
        assert store.rows() == [row("a")]

    def test_clear(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append(row("a"))
        store.clear()
        assert store.rows() == [] and not store.exists()
        store.clear()  # idempotent

class TestRobustness:
    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(row("a"))
        store.append(row("b"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "c", "res')  # killed mid-append
        assert store.completed_keys() == {"a", "b"}

    def test_unterminated_final_line_is_torn_even_when_parseable(
        self, tmp_path
    ):
        # Reader and healer must agree: a complete JSON final row
        # missing only its newline would be truncated by the next
        # append, so rows() must not count it either - otherwise a
        # resumed sweep skips a cell whose record is about to vanish.
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(row("a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(row("b")))  # no trailing newline
        assert store.completed_keys() == {"a"}
        store.append(row("c"))
        assert store.rows() == [row("a"), row("c")]

    def test_append_after_torn_tail_heals_the_file(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(row("a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "b", "res')  # killed mid-append
        store.append(row("c"))
        # The torn fragment was truncated, not stranded mid-file.
        assert store.rows() == [row("a"), row("c")]
        assert store.completed_keys() == {"a", "c"}

    def test_terminated_malformed_final_line_raises(self, tmp_path):
        # A kill cannot produce a newline-terminated malformed line
        # (rows are single line+newline writes), so this is external
        # corruption: raise loudly instead of silently skipping a line
        # the next append would strand mid-file.
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(row("a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("corrupted but terminated\n")
        with pytest.raises(SimulationError, match="malformed run-store"):
            store.rows()

    def test_malformed_interior_line_raises(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(
            json.dumps(row("a")) + "\nnot json\n" + json.dumps(row("b"))
            + "\n",
            encoding="utf-8",
        )
        with pytest.raises(SimulationError, match="malformed run-store"):
            RunStore(path).rows()

    def test_non_object_row_raises(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("[1, 2]\n", encoding="utf-8")
        with pytest.raises(SimulationError, match="must be +objects"):
            RunStore(path).rows()

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(
            json.dumps(row("a")) + "\n\n" + json.dumps(row("b")) + "\n",
            encoding="utf-8",
        )
        assert RunStore(path).completed_keys() == {"a", "b"}


class TestAppendMany:
    def test_group_commit_roundtrip(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append_many([row("a"), row("b", 1), row("c", 2)])
        assert store.rows() == [row("a"), row("b", 1), row("c", 2)]

    def test_empty_batch_is_a_noop(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append_many([])
        assert not store.exists()

    def test_heals_torn_tail_before_the_batch(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(row("a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "torn')  # no newline: a killed writer
        store.append_many([row("b", 1)])
        assert store.rows() == [row("a"), row("b", 1)]

    def test_batch_is_serialized_before_any_write(self, tmp_path):
        # A non-serializable row late in the batch must not leave the
        # earlier rows half-committed.
        store = RunStore(tmp_path / "runs.jsonl")
        with pytest.raises(TypeError):
            store.append_many([row("a"), {"key": "bad", "x": object()}])
        assert store.rows() == []


class TestConcurrentAppenders:
    def test_two_processes_interleave_without_loss(self, tmp_path):
        """Satellite regression: the advisory flock means two local
        writers (e.g. a coordinator and a stray serial run) can append
        to one store with zero torn or lost rows."""
        import subprocess
        import sys

        path = tmp_path / "runs.jsonl"
        count = 150
        script = (
            "import sys, time\n"
            "from repro.sweep import RunStore\n"
            "store = RunStore(sys.argv[1])\n"
            "who = sys.argv[2]\n"
            # Long values force multi-kilobyte lines: without locking,
            # interleaved buffered writes would tear visibly.
            "pad = 'x' * 2048\n"
            f"for i in range({count}):\n"
            "    store.append("
            "{'key': f'{who}-{i}', 'index': i, 'pad': pad})\n"
        )
        children = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path), who],
                env={
                    **__import__("os").environ,
                    "PYTHONPATH": str(
                        Path(__file__).resolve().parents[2] / "src"
                    ),
                },
            )
            for who in ("alpha", "beta")
        ]
        for child in children:
            assert child.wait(timeout=120) == 0
        rows = RunStore(path).rows()
        assert len(rows) == 2 * count
        keys = {entry["key"] for entry in rows}
        assert keys == {
            f"{who}-{i}"
            for who in ("alpha", "beta")
            for i in range(count)
        }
        # Per-writer order is preserved even under interleaving.
        for who in ("alpha", "beta"):
            indices = [
                entry["index"] for entry in rows
                if entry["key"].startswith(who)
            ]
            assert indices == sorted(indices)
