"""Tests for the content-addressed solve-cache."""

import os

import pytest

from repro.api import BroadcastEngine, Scenario
from repro.bdisk.file import FileSpec
from repro.errors import SpecificationError
from repro.sweep import SolveCache


def scenario(**overrides) -> Scenario:
    params = dict(
        name="cached",
        files=(
            FileSpec("pos", 2, 2, fault_budget=1),
            FileSpec("map", 3, 6),
        ),
    )
    params.update(overrides)
    return Scenario(**params)


class TestMemoryTier:
    def test_miss_solve_hit(self):
        cache = SolveCache()
        design, hit = cache.design_for(scenario())
        assert not hit and cache.solves == 1
        again, hit = cache.design_for(scenario())
        assert hit and again is design
        assert cache.hits == 1 and cache.misses == 1 and cache.solves == 1

    def test_downstream_knobs_share_an_entry(self):
        cache = SolveCache()
        cache.design_for(scenario())
        _, hit = cache.design_for(scenario(block_size=512, name="other"))
        assert hit and cache.solves == 1

    def test_design_inputs_get_their_own_entries(self):
        cache = SolveCache()
        cache.design_for(scenario())
        _, hit = cache.design_for(scenario(bandwidth=4))
        assert not hit and cache.solves == 2

    def test_put_rejects_non_designs(self):
        with pytest.raises(SpecificationError, match="ProgramDesign"):
            SolveCache().put("abc", "nope")


class TestDirectoryTier:
    def test_entries_survive_instances(self, tmp_path):
        first = SolveCache(tmp_path / "cache")
        design, hit = first.design_for(scenario())
        assert not hit
        second = SolveCache(tmp_path / "cache")
        cached, hit = second.design_for(scenario())
        assert hit and second.solves == 0
        # The cached design round-trips to an equivalent program.
        assert cached.program.render() == design.program.render()
        assert cached.report.method == design.report.method

    def test_cached_design_drives_an_identical_run(self, tmp_path):
        cache = SolveCache(tmp_path / "cache")
        cache.design_for(scenario())
        fresh = SolveCache(tmp_path / "cache")
        design, hit = fresh.design_for(scenario())
        assert hit
        injected = BroadcastEngine(scenario(), design=design).run()
        direct = BroadcastEngine(scenario()).run()
        assert injected.to_dict() == direct.to_dict()

    def test_corrupt_entry_is_a_miss_and_rewritten(self, tmp_path):
        cache = SolveCache(tmp_path / "cache")
        fingerprint = scenario().design_fingerprint()
        cache.design_for(scenario())
        path = tmp_path / "cache" / f"{fingerprint}.pkl"
        path.write_bytes(b"torn write")
        recovered = SolveCache(tmp_path / "cache")
        design, hit = recovered.design_for(scenario())
        assert not hit and recovered.solves == 1
        # The rewrite healed the entry for the next reader.
        healed = SolveCache(tmp_path / "cache")
        _, hit = healed.design_for(scenario())
        assert hit

    def test_len_counts_disk_entries(self, tmp_path):
        cache = SolveCache(tmp_path / "cache")
        assert len(cache) == 0
        cache.design_for(scenario())
        cache.design_for(scenario(bandwidth=4))
        assert len(cache) == 2
        assert len(SolveCache(tmp_path / "cache")) == 2


class TestStats:
    def test_stats_tracks_hits_misses_solves_entries(self):
        cache = SolveCache()
        assert cache.stats() == {
            "hits": 0, "misses": 0, "solves": 0, "lock_waits": 0,
            "entries": 0,
        }
        cache.design_for(scenario())
        cache.design_for(scenario())
        cache.design_for(scenario(bandwidth=4))
        assert cache.stats() == {
            "hits": 1, "misses": 2, "solves": 2, "lock_waits": 0,
            "entries": 2,
        }

    def test_stats_are_per_instance_on_a_shared_directory(self, tmp_path):
        # Disk hits count as hits, not solves: a warm cache proves the
        # second process never re-ran the designer.
        warm = SolveCache(tmp_path / "cache")
        warm.design_for(scenario())
        reader = SolveCache(tmp_path / "cache")
        _, hit = reader.design_for(scenario())
        assert hit
        assert reader.stats()["solves"] == 0
        assert reader.stats()["hits"] == 1
        assert warm.stats()["entries"] == reader.stats()["entries"] == 1


class TestSingleFlight:
    def test_dead_owner_lock_is_broken(self, tmp_path):
        """A lock left by a killed process must not wedge the fleet."""
        import subprocess
        import sys

        cache = SolveCache(tmp_path)
        fp = scenario().design_fingerprint()
        # A real pid that is provably gone: a subprocess that exited.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait(timeout=30)
        lock = cache._lock_path(fp)
        lock.write_text(str(child.pid), encoding="utf-8")
        design, hit = cache.design_for(scenario())
        assert hit is False and cache.solves == 1
        assert not lock.exists()

    def test_live_owner_lock_is_respected_until_entry_appears(
        self, tmp_path
    ):
        """A waiter behind a live owner polls until the entry appears,
        then returns it as a disk hit with one lock_wait episode."""
        import threading

        waiter = SolveCache(tmp_path)
        fp = scenario().design_fingerprint()
        lock = waiter._lock_path(fp)
        # This test process *is* the live owner.
        lock.write_text(str(os.getpid()), encoding="utf-8")
        solved = BroadcastEngine(scenario()).design()

        def publish():
            # The "owner" finishes its solve mid-wait: entry lands,
            # lock is released.
            import time

            time.sleep(0.1)
            SolveCache(tmp_path).put(fp, solved)
            lock.unlink()

        thread = threading.Thread(target=publish)
        thread.start()
        design, hit = waiter.design_for(scenario())
        thread.join(timeout=10.0)
        assert hit is True
        assert waiter.solves == 0
        assert waiter.lock_waits == 1
        assert waiter.stats()["lock_waits"] == 1
        assert design.program.render() == solved.program.render()

    def test_two_processes_race_one_solve(self, tmp_path):
        """Satellite regression: two processes racing the same cold
        fingerprint perform exactly one solve between them; the loser
        waits (lock_waits) and comes back with a disk hit."""
        import json as json_mod
        import subprocess
        import sys
        from pathlib import Path as _Path

        script = tmp_path / "racer.py"
        script.write_text(
            """
import json, sys, time
import repro.sweep.cache as cache_mod
from repro.api import Scenario
from repro.bdisk.file import FileSpec
from repro.sweep import SolveCache

cache_dir, go_file = sys.argv[1], sys.argv[2]

real = cache_mod.BroadcastEngine
class SlowEngine(real):
    def design(self):
        time.sleep(0.4)  # hold the lock long enough to be raced
        return super().design()
cache_mod.BroadcastEngine = SlowEngine

scenario = Scenario(
    name="raced",
    files=(FileSpec("pos", 2, 2, fault_budget=1), FileSpec("map", 3, 6)),
)
cache = SolveCache(cache_dir)
deadline = time.monotonic() + 30.0
while time.monotonic() < deadline:  # start barrier
    try:
        open(go_file)
        break
    except OSError:
        time.sleep(0.002)
design, hit = cache.design_for(scenario)
print(json.dumps({"hit": hit, **cache.stats()}))
""",
            encoding="utf-8",
        )
        go_file = tmp_path / "go"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            _Path(__file__).resolve().parents[2] / "src"
        )
        children = [
            subprocess.Popen(
                [sys.executable, str(script), str(tmp_path / "cache"),
                 str(go_file)],
                stdout=subprocess.PIPE,
                env=env,
            )
            for _ in range(2)
        ]
        import time as time_mod

        time_mod.sleep(0.5)  # both waiting at the barrier
        go_file.write_text("go", encoding="utf-8")
        outputs = []
        for child in children:
            out, _ = child.communicate(timeout=120)
            assert child.returncode == 0
            outputs.append(json_mod.loads(out))
        total_solves = sum(o["solves"] for o in outputs)
        assert total_solves == 1, outputs
        hits = sorted(o["hit"] for o in outputs)
        assert hits == [False, True], outputs
        waits = sum(o["lock_waits"] for o in outputs)
        assert waits >= 1, outputs
