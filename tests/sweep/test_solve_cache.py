"""Tests for the content-addressed solve-cache."""

import pytest

from repro.api import BroadcastEngine, Scenario
from repro.bdisk.file import FileSpec
from repro.errors import SpecificationError
from repro.sweep import SolveCache


def scenario(**overrides) -> Scenario:
    params = dict(
        name="cached",
        files=(
            FileSpec("pos", 2, 2, fault_budget=1),
            FileSpec("map", 3, 6),
        ),
    )
    params.update(overrides)
    return Scenario(**params)


class TestMemoryTier:
    def test_miss_solve_hit(self):
        cache = SolveCache()
        design, hit = cache.design_for(scenario())
        assert not hit and cache.solves == 1
        again, hit = cache.design_for(scenario())
        assert hit and again is design
        assert cache.hits == 1 and cache.misses == 1 and cache.solves == 1

    def test_downstream_knobs_share_an_entry(self):
        cache = SolveCache()
        cache.design_for(scenario())
        _, hit = cache.design_for(scenario(block_size=512, name="other"))
        assert hit and cache.solves == 1

    def test_design_inputs_get_their_own_entries(self):
        cache = SolveCache()
        cache.design_for(scenario())
        _, hit = cache.design_for(scenario(bandwidth=4))
        assert not hit and cache.solves == 2

    def test_put_rejects_non_designs(self):
        with pytest.raises(SpecificationError, match="ProgramDesign"):
            SolveCache().put("abc", "nope")


class TestDirectoryTier:
    def test_entries_survive_instances(self, tmp_path):
        first = SolveCache(tmp_path / "cache")
        design, hit = first.design_for(scenario())
        assert not hit
        second = SolveCache(tmp_path / "cache")
        cached, hit = second.design_for(scenario())
        assert hit and second.solves == 0
        # The cached design round-trips to an equivalent program.
        assert cached.program.render() == design.program.render()
        assert cached.report.method == design.report.method

    def test_cached_design_drives_an_identical_run(self, tmp_path):
        cache = SolveCache(tmp_path / "cache")
        cache.design_for(scenario())
        fresh = SolveCache(tmp_path / "cache")
        design, hit = fresh.design_for(scenario())
        assert hit
        injected = BroadcastEngine(scenario(), design=design).run()
        direct = BroadcastEngine(scenario()).run()
        assert injected.to_dict() == direct.to_dict()

    def test_corrupt_entry_is_a_miss_and_rewritten(self, tmp_path):
        cache = SolveCache(tmp_path / "cache")
        fingerprint = scenario().design_fingerprint()
        cache.design_for(scenario())
        path = tmp_path / "cache" / f"{fingerprint}.pkl"
        path.write_bytes(b"torn write")
        recovered = SolveCache(tmp_path / "cache")
        design, hit = recovered.design_for(scenario())
        assert not hit and recovered.solves == 1
        # The rewrite healed the entry for the next reader.
        healed = SolveCache(tmp_path / "cache")
        _, hit = healed.design_for(scenario())
        assert hit

    def test_len_counts_disk_entries(self, tmp_path):
        cache = SolveCache(tmp_path / "cache")
        assert len(cache) == 0
        cache.design_for(scenario())
        cache.design_for(scenario(bandwidth=4))
        assert len(cache) == 2
        assert len(SolveCache(tmp_path / "cache")) == 2


class TestStats:
    def test_stats_tracks_hits_misses_solves_entries(self):
        cache = SolveCache()
        assert cache.stats() == {
            "hits": 0, "misses": 0, "solves": 0, "entries": 0,
        }
        cache.design_for(scenario())
        cache.design_for(scenario())
        cache.design_for(scenario(bandwidth=4))
        assert cache.stats() == {
            "hits": 1, "misses": 2, "solves": 2, "entries": 2,
        }

    def test_stats_are_per_instance_on_a_shared_directory(self, tmp_path):
        # Disk hits count as hits, not solves: a warm cache proves the
        # second process never re-ran the designer.
        warm = SolveCache(tmp_path / "cache")
        warm.design_for(scenario())
        reader = SolveCache(tmp_path / "cache")
        _, hit = reader.design_for(scenario())
        assert hit
        assert reader.stats()["solves"] == 0
        assert reader.stats()["hits"] == 1
        assert warm.stats()["entries"] == reader.stats()["entries"] == 1
