"""Sweeps over the temporal (rtdb) layer: axes, columns, solve-cache."""

from repro.api import (
    Scenario,
    TemporalItemSpec,
    TemporalSpec,
    TrafficSpec,
)
from repro.sweep import SweepAxis, SweepSpec, run_sweep
from repro.sweep.aggregate import marginals


def make_base():
    return Scenario(
        name="temporal-sweep",
        temporal=TemporalSpec(
            slot_ms=10,
            items=(
                TemporalItemSpec(
                    "air", blocks=2, velocity_kmh=900, accuracy_m=100,
                    criticality={"combat": 4, "patrol": 2},
                ),
                TemporalItemSpec("map", blocks=3, max_age_ms=6000),
            ),
            update_periods={"air": 24, "map": 300},
            mode="combat",
            modes=("combat", "patrol"),
        ),
        traffic=TrafficSpec(
            clients=12, duration=200, requests_per_client=1, seed=3
        ),
    )


class TestTemporalAxes:
    def test_update_period_axis_is_one_solve(self, tmp_path):
        """A sweep varying only update periods is a pure runtime sweep:
        every cell shares the one designed program (solves == 1)."""
        spec = SweepSpec(
            name="periods",
            base=make_base(),
            axes=(
                SweepAxis("temporal.update_periods.air", (24, 48, 96)),
                SweepAxis("temporal.update_periods.map", (300, 600)),
            ),
        )
        result = run_sweep(
            spec,
            store_path=tmp_path / "runs.jsonl",
            cache_dir=tmp_path / "cache",
        )
        assert result.cells == 6
        assert result.distinct_designs == 1
        assert result.solves == 1
        assert result.cache_hits == 5

    def test_mode_axis_solves_per_mode(self, tmp_path):
        spec = SweepSpec(
            name="modes",
            base=make_base(),
            axes=(SweepAxis("temporal.mode", ("combat", "patrol")),),
        )
        result = run_sweep(
            spec,
            store_path=tmp_path / "runs.jsonl",
            cache_dir=tmp_path / "cache",
        )
        assert result.distinct_designs == 2
        assert result.solves == 2

    def test_consistency_columns_in_tidy_records(self, tmp_path):
        spec = SweepSpec(
            name="periods",
            base=make_base(),
            axes=(
                SweepAxis("temporal.update_periods.air", (24, 96)),
            ),
        )
        result = run_sweep(
            spec,
            store_path=tmp_path / "runs.jsonl",
            cache_dir=tmp_path / "cache",
        )
        records = result.records()
        assert len(records) == 2
        for record in records:
            assert 0.0 <= record["traffic_consistency"] <= 1.0
            assert 0.0 <= record["traffic_deadline_miss"] <= 1.0
            assert record["traffic_mean_age"] >= 0.0
        assert "traffic_consistency" in result.table()
        by_period = marginals(
            records,
            "temporal.update_periods.air",
            ["traffic_consistency", "traffic_deadline_miss"],
        )
        assert [row["temporal.update_periods.air"] for row in by_period] \
            == [24, 96]
        for row in by_period:
            assert row["mean_traffic_consistency"] is not None
