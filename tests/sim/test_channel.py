"""Tests for the byte-level channel and end-to-end frame retrieval."""

import pytest

from repro.bdisk.flat import build_aida_flat_program
from repro.errors import SimulationError, SpecificationError
from repro.ida.dispersal import disperse
from repro.sim.channel import ByteChannel, broadcast_retrieve


def make_world():
    program = build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])
    payload_a = b"alpha block content " * 13
    payload_b = b"bravo " * 23
    on_air = {
        "A": disperse(payload_a, 5, 10, file_id="A"),
        "B": disperse(payload_b, 3, 6, file_id="B"),
    }
    return program, on_air, payload_a, payload_b


class TestByteChannel:
    def test_validation(self):
        with pytest.raises(SpecificationError):
            ByteChannel(-0.1)
        with pytest.raises(SpecificationError):
            ByteChannel(1.5)

    def test_clean_channel_delivers(self):
        _, on_air, _, _ = make_world()
        channel = ByteChannel(0.0)
        result = channel.transmit(on_air["A"][0], slot=0)
        assert not result.lost
        assert result.delivered == on_air["A"][0]
        assert result.corrupted_bytes == 0

    def test_fully_noisy_channel_loses(self):
        _, on_air, _, _ = make_world()
        channel = ByteChannel(1.0)
        result = channel.transmit(on_air["A"][0], slot=0)
        assert result.lost
        assert result.corrupted_bytes > 0

    def test_corruption_deterministic_per_slot(self):
        _, on_air, _, _ = make_world()
        a = ByteChannel(0.05, seed=3).transmit(on_air["A"][0], slot=9)
        b = ByteChannel(0.05, seed=3).transmit(on_air["A"][0], slot=9)
        assert a == b

    def test_corruption_is_detected_never_silent(self):
        """Any delivered block must equal the transmitted one - CRC
        catches every corruption the channel injects."""
        _, on_air, _, _ = make_world()
        channel = ByteChannel(0.02, seed=11)
        for slot in range(200):
            result = channel.transmit(on_air["B"][slot % 6], slot)
            if result.delivered is not None:
                assert result.delivered == on_air["B"][slot % 6]

    def test_survival_probability(self):
        channel = ByteChannel(0.01)
        assert channel.survival_probability(0) == 1.0
        assert channel.survival_probability(100) == pytest.approx(
            0.99**100
        )
        with pytest.raises(SpecificationError):
            channel.survival_probability(-1)

    def test_bigger_frames_are_more_fragile(self):
        channel = ByteChannel(0.01)
        assert channel.survival_probability(2_000) < (
            channel.survival_probability(200)
        )


class TestBroadcastRetrieve:
    def test_clean_end_to_end(self):
        program, on_air, payload_a, payload_b = make_world()
        channel = ByteChannel(0.0)
        restored, log = broadcast_retrieve(
            program, on_air, "A", 5, channel
        )
        assert restored == payload_a
        assert all(not frame.lost for frame in log)

    def test_noisy_end_to_end_still_reconstructs(self):
        """With block rotation, losses cost gaps, not periods - and the
        payload always comes back intact (CRC + IDA)."""
        program, on_air, payload_a, payload_b = make_world()
        channel = ByteChannel(0.001, seed=5)
        restored, log = broadcast_retrieve(
            program, on_air, "B", 3, channel
        )
        assert restored == payload_b

    def test_blackout_returns_none(self):
        program, on_air, *_ = make_world()
        channel = ByteChannel(1.0)
        restored, log = broadcast_retrieve(
            program, on_air, "A", 5, channel, max_slots=64
        )
        assert restored is None
        assert all(frame.lost for frame in log)

    def test_unknown_file_rejected(self):
        program, on_air, *_ = make_world()
        with pytest.raises(SimulationError):
            broadcast_retrieve(
                program, on_air, "Z", 1, ByteChannel(0.0)
            )

    def test_underprovisioned_dispersal_detected(self):
        program, on_air, *_ = make_world()
        on_air = dict(on_air)
        on_air["A"] = on_air["A"][:4]  # program rotates through 10
        # Needing 5 distinct blocks forces the walk past index 4, which
        # the truncated supply cannot provide.
        with pytest.raises(SimulationError, match="dispersed"):
            broadcast_retrieve(
                program, on_air, "A", 5, ByteChannel(0.0)
            )

    def test_start_phase_respected(self):
        program, on_air, payload_a, _ = make_world()
        restored, log = broadcast_retrieve(
            program, on_air, "A", 5, ByteChannel(0.0), start=6
        )
        assert restored == payload_a
        assert log[0].slot >= 6
