"""Tests for client-side retrieval."""

import pytest

from repro.sim.client import retrieve
from repro.sim.faults import AdversarialFaults, BernoulliFaults
from repro.errors import SimulationError


class TestFaultFree:
    def test_figure6_phase0_file_a(self, figure6_program):
        result = retrieve(figure6_program, "A", 5)
        assert result.completed
        assert result.latency == 8  # collects at slots 0,2,3,5,7
        assert len(result.received) == 5

    def test_figure6_phase0_file_b(self, figure6_program):
        result = retrieve(figure6_program, "B", 3)
        assert result.completed
        assert result.latency == 7  # B at slots 1, 4, 6

    def test_phase_shifts_latency(self, figure6_program):
        latencies = {
            phase: retrieve(figure6_program, "B", 3, start=phase).latency
            for phase in range(16)
        }
        assert min(latencies.values()) >= 3
        assert max(latencies.values()) <= 7 + figure6_program.max_gap("B")

    def test_unknown_file_rejected(self, figure6_program):
        with pytest.raises(SimulationError):
            retrieve(figure6_program, "Z", 1)


class TestWithFaults:
    def test_adversarial_loss_delays(self, figure6_program):
        # B appears at slots 1, 4, 6; kill slot 6 -> next B at 9.
        result = retrieve(
            figure6_program, "B", 3, faults=AdversarialFaults([6])
        )
        assert result.completed
        assert result.latency == 10
        assert result.lost_slots == (6,)

    def test_ida_any_distinct_blocks_suffice(self, figure6_program):
        # Killing B's first two appearances still completes with
        # the rotated blocks - no full-period wait.
        result = retrieve(
            figure6_program, "B", 3, faults=AdversarialFaults([1, 4])
        )
        assert result.completed
        assert result.latency <= 7 + 2 * figure6_program.max_gap("B")

    def test_without_ida_waits_full_period(self, figure5_program):
        # Flat program: B'2 lost at slot 4 -> same block only at 4 + 8.
        result = retrieve(
            figure5_program,
            "B",
            3,
            faults=AdversarialFaults([4]),
            need_distinct=False,
        )
        assert result.completed
        assert result.latency == 4 + 8 + 1

    def test_specific_mode_needs_every_block(self, figure5_program):
        result = retrieve(figure5_program, "A", 5, need_distinct=False)
        assert result.completed
        assert set(result.received) == set(range(5))

    def test_total_loss_never_completes(self, figure6_program):
        result = retrieve(
            figure6_program,
            "B",
            3,
            faults=BernoulliFaults(1.0),
            max_slots=100,
        )
        assert not result.completed
        assert result.latency is None
        assert result.finish_slot is None

    def test_deadline_predicate(self, figure6_program):
        result = retrieve(figure6_program, "B", 3)
        assert result.met_deadline(7)
        assert not result.met_deadline(6)

    def test_incomplete_never_meets_deadline(self, figure6_program):
        result = retrieve(
            figure6_program, "B", 3,
            faults=BernoulliFaults(1.0), max_slots=50,
        )
        assert not result.met_deadline(10_000)
