"""Tests for the end-to-end simulation runner."""

import pytest

from repro.bdisk.builder import design_program
from repro.bdisk.file import FileSpec
from repro.errors import SimulationError
from repro.sim.faults import BernoulliFaults
from repro.sim.runner import simulate_requests
from repro.sim.workload import Request, request_stream


def make_design():
    files = [
        FileSpec("hot", 2, 6, fault_budget=1),
        FileSpec("warm", 3, 12),
        FileSpec("cold", 4, 20),
    ]
    return files, design_program(files)


class TestSimulateRequests:
    def test_fault_free_all_meet_deadlines(self, rng):
        files, design = make_design()
        bandwidth = design.bandwidth_plan.bandwidth
        requests = request_stream(
            rng, files, count=60, horizon=300, bandwidth=bandwidth
        )
        result = simulate_requests(
            design.program,
            requests,
            file_sizes={f.name: f.blocks for f in files},
        )
        assert result.deadline_misses == 0
        assert result.deadline_miss_rate == 0.0
        assert result.summary.count == 60

    def test_fault_budgeted_file_survives_noise(self, rng):
        """The fault-budgeted file keeps meeting deadlines under light
        Bernoulli loss (its windows carry m + r distinct blocks)."""
        files, design = make_design()
        bandwidth = design.bandwidth_plan.bandwidth
        requests = [
            Request(time=t, file="hot", deadline=6 * bandwidth)
            for t in range(0, 120, 7)
        ]
        result = simulate_requests(
            design.program,
            requests,
            file_sizes={f.name: f.blocks for f in files},
            faults=BernoulliFaults(0.02, seed=5),
        )
        assert result.deadline_miss_rate <= 0.1

    def test_heavy_loss_causes_misses(self, rng):
        files, design = make_design()
        requests = [
            Request(time=t, file="cold", deadline=5) for t in range(0, 50, 5)
        ]
        result = simulate_requests(
            design.program,
            requests,
            file_sizes={f.name: f.blocks for f in files},
            faults=BernoulliFaults(0.8, seed=6),
            max_slots=400,
        )
        assert result.deadline_misses > 0

    def test_unknown_file_rejected(self):
        files, design = make_design()
        with pytest.raises(SimulationError):
            simulate_requests(
                design.program,
                [Request(time=0, file="nope", deadline=5)],
                file_sizes={f.name: f.blocks for f in files},
            )

    def test_empty_requests_rejected(self):
        files, design = make_design()
        with pytest.raises(SimulationError):
            simulate_requests(
                design.program, [], file_sizes={}
            )

    def test_retrievals_align_with_requests(self, rng):
        files, design = make_design()
        requests = request_stream(rng, files, count=10, horizon=50)
        result = simulate_requests(
            design.program,
            requests,
            file_sizes={f.name: f.blocks for f in files},
        )
        for request, retrieval in zip(result.requests, result.retrievals):
            assert retrieval.file == request.file
            assert retrieval.start == request.time
