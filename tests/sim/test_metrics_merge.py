"""Tests for exact latency-summary merging across shards."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import LatencySummary, summarize_latencies


class TestCounts:
    def test_summaries_carry_their_histogram(self):
        summary = summarize_latencies([3, 1, 3, None])
        assert summary.counts == ((1.0, 1), (3.0, 2))

    def test_all_failed_summary_has_no_histogram(self):
        summary = summarize_latencies([None, None])
        assert summary.counts == ()
        assert summary.mean == float("inf")


class TestMerge:
    def test_merged_shards_equal_single_run(self):
        rng = random.Random(99)
        latencies = [
            rng.randrange(1, 200) if rng.random() > 0.03 else None
            for _ in range(5000)
        ]
        whole = summarize_latencies(latencies, deadline=150)
        shards = [
            summarize_latencies(latencies[lo:lo + 1250], deadline=150)
            for lo in range(0, 5000, 1250)
        ]
        merged = LatencySummary.merge(shards)
        assert merged == whole

    def test_percentiles_recomputed_not_averaged(self):
        # One shard all-small, one all-large: naive percentile averaging
        # would land mid-way; the exact merge ranks over the union.
        small = summarize_latencies([1] * 99)
        large = summarize_latencies([100])
        merged = LatencySummary.merge([small, large])
        assert merged.p50 == 1
        assert merged.p99 == 1
        assert merged.worst == 100

    def test_misses_and_deadline_carry_over(self):
        parts = [
            summarize_latencies([5, None, 30], deadline=10),
            summarize_latencies([7, 40], deadline=10),
        ]
        merged = LatencySummary.merge(parts)
        assert merged.count == 5
        assert merged.misses == 3  # one failure, two late completions
        assert merged.deadline == 10

    def test_single_summary_is_identity(self):
        summary = summarize_latencies(range(1, 50))
        assert LatencySummary.merge([summary]) == summary

    def test_all_failed_parts_merge(self):
        merged = LatencySummary.merge(
            [summarize_latencies([None]), summarize_latencies([None, None])]
        )
        assert merged.count == 3
        assert merged.misses == 3
        assert merged.mean == float("inf")

    def test_mixed_deadlines_rejected(self):
        with pytest.raises(SimulationError):
            LatencySummary.merge(
                [
                    summarize_latencies([1], deadline=5),
                    summarize_latencies([1], deadline=6),
                ]
            )

    def test_empty_merge_rejected(self):
        with pytest.raises(SimulationError):
            LatencySummary.merge([])

    def test_summary_without_counts_rejected(self):
        legacy = LatencySummary(
            count=3, mean=2.0, p50=2, p95=3, p99=3, worst=3, misses=0
        )
        with pytest.raises(SimulationError):
            LatencySummary.merge([legacy, summarize_latencies([1])])
