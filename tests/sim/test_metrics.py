"""Tests for latency metrics."""

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import summarize_latencies


class TestSummaries:
    def test_basic_statistics(self):
        summary = summarize_latencies([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.p50 == 3
        assert summary.worst == 5
        assert summary.misses == 0

    def test_percentiles_nearest_rank(self):
        summary = summarize_latencies(range(1, 101))
        assert summary.p50 == 50
        assert summary.p95 == 95
        assert summary.p99 == 99

    def test_none_counts_as_miss(self):
        summary = summarize_latencies([1, None, 3])
        assert summary.count == 3
        assert summary.misses == 1
        assert summary.mean == 2.0

    def test_deadline_misses(self):
        summary = summarize_latencies([5, 10, 15], deadline=10)
        assert summary.misses == 1
        assert summary.miss_rate == pytest.approx(1 / 3)

    def test_all_failed(self):
        summary = summarize_latencies([None, None])
        assert summary.miss_rate == 1.0
        assert summary.mean == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            summarize_latencies([])

    def test_str_contains_key_numbers(self):
        summary = summarize_latencies([1, 2], deadline=5)
        rendered = str(summary)
        assert "mean" in rendered and "miss_rate" in rendered

    def test_single_sample(self):
        summary = summarize_latencies([7])
        assert summary.p50 == summary.p99 == summary.worst == 7
