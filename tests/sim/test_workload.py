"""Tests for workload generators."""

import random
from fractions import Fraction

import pytest

from repro.errors import SpecificationError
from repro.sim.workload import (
    random_file_set,
    random_pinwheel_system,
    request_stream,
)


class TestRandomFileSet:
    def test_respects_bounds(self, rng):
        specs = random_file_set(
            rng, 20, max_blocks=5, max_latency=40, max_fault_budget=2
        )
        assert len(specs) == 20
        for spec in specs:
            assert 1 <= spec.blocks <= 5
            assert spec.blocks <= spec.latency <= 40
            assert 0 <= spec.fault_budget <= 2

    def test_unique_names(self, rng):
        specs = random_file_set(rng, 10)
        assert len({s.name for s in specs}) == 10

    def test_reproducible(self):
        a = random_file_set(random.Random(3), 5)
        b = random_file_set(random.Random(3), 5)
        assert a == b

    def test_rejects_zero_count(self, rng):
        with pytest.raises(SpecificationError):
            random_file_set(rng, 0)


class TestRandomPinwheelSystem:
    @pytest.mark.parametrize("target", [0.3, 0.5, 0.7, 0.9])
    def test_hits_target_from_below(self, rng, target):
        system = random_pinwheel_system(rng, 6, target)
        assert system.density <= Fraction(target).limit_denominator(10**6)
        assert target - float(system.density) <= 0.02

    def test_rejects_unreachable_target(self, rng):
        with pytest.raises(SpecificationError):
            random_pinwheel_system(rng, 2, 0.9, min_window=4)

    def test_rejects_bad_target(self, rng):
        with pytest.raises(SpecificationError):
            random_pinwheel_system(rng, 3, 0.0)
        with pytest.raises(SpecificationError):
            random_pinwheel_system(rng, 3, 1.5)

    def test_unit_demands(self, rng):
        system = random_pinwheel_system(rng, 5, 0.6)
        assert all(t.a == 1 for t in system.tasks)


class TestRequestStream:
    def make_files(self, rng):
        return random_file_set(rng, 5)

    def test_sorted_by_time(self, rng):
        files = self.make_files(rng)
        requests = request_stream(rng, files, count=30, horizon=100)
        times = [r.time for r in requests]
        assert times == sorted(times)

    def test_deadlines_follow_latency(self, rng):
        files = self.make_files(rng)
        by_name = {f.name: f for f in files}
        requests = request_stream(
            rng, files, count=30, horizon=100, bandwidth=3
        )
        for request in requests:
            assert request.deadline == by_name[request.file].latency * 3

    def test_zipf_skews_toward_first_files(self, rng):
        files = self.make_files(rng)
        requests = request_stream(
            rng, files, count=500, horizon=1000, zipf_skew=2.0
        )
        first = sum(1 for r in requests if r.file == files[0].name)
        last = sum(1 for r in requests if r.file == files[-1].name)
        assert first > last

    def test_validation(self, rng):
        files = self.make_files(rng)
        with pytest.raises(SpecificationError):
            request_stream(rng, files, count=0, horizon=10)
        with pytest.raises(SpecificationError):
            request_stream(rng, [], count=5, horizon=10)
