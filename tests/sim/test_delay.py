"""Tests for worst-case delay analysis (Lemmas 1-2, Figure 7)."""

import pytest

from repro.bdisk.flat import build_aida_flat_program, build_flat_program
from repro.sim.delay import (
    MAX_EXACT_WIDTH,
    fault_free_latency,
    greedy_adversary_delay,
    lemma1_bound,
    lemma2_bound,
    worst_case_delay,
    worst_case_delay_table,
    worst_case_latency,
)
from repro.errors import SimulationError


class TestBounds:
    def test_lemma1(self):
        assert lemma1_bound(8, 3) == 24

    def test_lemma2(self):
        assert lemma2_bound(3, 5) == 15


class TestFaultFreeLatency:
    def test_figure6_values(self, figure6_program):
        assert fault_free_latency(figure6_program, "A", 5) == 8
        assert fault_free_latency(figure6_program, "B", 3) == 7

    def test_specific_mode_latency(self, figure5_program):
        assert fault_free_latency(
            figure5_program, "A", 5, need_distinct=False
        ) == 8

    def test_unknown_file(self, figure6_program):
        with pytest.raises(SimulationError):
            fault_free_latency(figure6_program, "Z", 1)


class TestWorstCaseDelay:
    def test_zero_errors_zero_delay(self, figure6_program):
        assert worst_case_delay(figure6_program, "A", 5, 0) == 0

    def test_figure7_with_ida_file_a(self, figure6_program):
        """Exact adversarial delays for file A (paper estimates:
        3, 4, 6, 7, 8 for r = 1..5; exact: 2, 4, 5, 7, 8)."""
        delays = [
            worst_case_delay(figure6_program, "A", 5, r) for r in range(6)
        ]
        assert delays == [0, 2, 4, 5, 7, 8]

    def test_figure7_with_ida_file_b_within_capacity(self, figure6_program):
        """File B (3-of-6) tolerates r <= 3 within the Lemma 2 bound."""
        delta = figure6_program.max_gap("B")
        for r in range(4):
            delay = worst_case_delay(figure6_program, "B", 3, r)
            assert delay <= lemma2_bound(delta, r)

    def test_capacity_exceeded_breaks_linear_bound(self, figure6_program):
        """Beyond r = N - m the adversary forces duplicate indices and
        the delay jumps past r * Delta - AIDA must be provisioned with
        n >= m + r (the library's designers enforce this)."""
        delta = figure6_program.max_gap("B")
        delay = worst_case_delay(figure6_program, "B", 3, 4)
        assert delay > lemma2_bound(delta, 4)

    def test_lemma2_bound_holds_within_capacity(self, figure6_program):
        delta = figure6_program.max_gap("A")
        for r in range(6):  # A is 5-of-10: capacity 5
            delay = worst_case_delay(figure6_program, "A", 5, r)
            assert delay <= lemma2_bound(delta, r)

    def test_figure7_without_ida_is_linear_in_period(self, figure5_program):
        """Lemma 1 is tight: r errors cost exactly r periods."""
        period = figure5_program.broadcast_period
        for r in range(6):
            for file, m in (("A", 5), ("B", 3)):
                delay = worst_case_delay(
                    figure5_program, file, m, r, need_distinct=False
                )
                assert delay == lemma1_bound(period, r)

    def test_negative_errors_rejected(self, figure6_program):
        with pytest.raises(SimulationError):
            worst_case_delay(figure6_program, "A", 5, -1)

    def test_impossible_requirement_detected(self, figure6_program):
        with pytest.raises(SimulationError, match="useful"):
            worst_case_delay(figure6_program, "B", 7, 1)


class TestExactWidthCap:
    """The exact adversary game refuses blow-up searches eagerly."""

    def wide_program(self, m, width):
        # One file rotating through `width` dispersed blocks, any `m`
        # of which reconstruct it.
        return build_aida_flat_program([("W", m, width)])

    def test_over_budget_raises_clear_simulation_error(self):
        # 22-of-24: ~2^24 partial-retrieval states, far past the
        # 2^MAX_EXACT_WIDTH budget.
        width = MAX_EXACT_WIDTH + 4
        program = self.wide_program(width - 2, width)
        with pytest.raises(SimulationError) as excinfo:
            worst_case_delay(program, "W", width - 2, 1)
        message = str(excinfo.value)
        assert "dispersal width" in message
        assert str(MAX_EXACT_WIDTH) in message
        assert "greedy_adversary_delay" in message

    def test_worst_case_latency_is_capped_too(self):
        width = MAX_EXACT_WIDTH + 4
        program = self.wide_program(width - 2, width)
        with pytest.raises(SimulationError):
            worst_case_latency(program, "W", width - 2, 1)

    def test_at_width_cap_always_runs(self):
        program = self.wide_program(2, MAX_EXACT_WIDTH)
        delta = program.max_gap("W")
        delay = worst_case_delay(program, "W", 2, 1)
        assert 0 <= delay <= lemma2_bound(delta, 1)

    def test_wide_but_cheap_search_is_permitted(self):
        # The budget tracks state count, not width alone: any-2-of-40
        # spans just 41 partial-retrieval states.
        program = self.wide_program(2, MAX_EXACT_WIDTH * 2)
        delta = program.max_gap("W")
        delay = worst_case_delay(program, "W", 2, 1)
        assert 0 <= delay <= lemma2_bound(delta, 1)

    def test_without_ida_mode_caps_on_collectible_width(self):
        # need_distinct=False clients only collect indices < m_needed,
        # so a wide rotation with a small m stays a tiny search.
        program = self.wide_program(10, MAX_EXACT_WIDTH * 2)
        delay = worst_case_delay(
            program, "W", 10, 1, need_distinct=False
        )
        assert delay >= 0

    def test_zero_errors_stay_uncapped(self):
        # The errors == 0 game never branches, so any width is fine -
        # and the delay is zero by definition.
        width = MAX_EXACT_WIDTH + 4
        program = self.wide_program(width - 2, width)
        assert worst_case_delay(program, "W", width - 2, 0) == 0
        assert fault_free_latency(program, "W", width - 2) > 0

    def test_unknown_file_stays_a_simulation_error(self):
        # The width guard must not leak a KeyError ahead of the
        # file-is-broadcast check.
        program = self.wide_program(2, 4)
        with pytest.raises(SimulationError, match="not broadcast"):
            worst_case_delay(program, "ghost", 2, 1)
        with pytest.raises(SimulationError, match="not broadcast"):
            worst_case_latency(program, "ghost", 2, 1)

    def test_negative_errors_rejected_by_latency_too(self):
        program = self.wide_program(2, 4)
        with pytest.raises(SimulationError, match=">= 0"):
            worst_case_latency(program, "W", 2, -1)

    def test_greedy_adversary_handles_wide_files(self):
        width = MAX_EXACT_WIDTH + 4
        program = self.wide_program(width - 2, width)
        delta = program.max_gap("W")
        delay = greedy_adversary_delay(program, "W", width - 2, 2)
        assert 0 <= delay <= lemma2_bound(delta, 2)


class TestWorstCaseLatency:
    def test_latency_at_least_fault_free(self, figure6_program):
        worst0 = worst_case_latency(figure6_program, "B", 3, 0)
        assert worst0 >= fault_free_latency(figure6_program, "B", 3)

    def test_monotone_in_errors(self, figure6_program):
        values = [
            worst_case_latency(figure6_program, "B", 3, r)
            for r in range(4)
        ]
        assert values == sorted(values)


class TestGreedyAdversary:
    def test_lower_bounds_exact(self, figure6_program):
        for r in range(4):
            greedy = max(
                greedy_adversary_delay(
                    figure6_program, "B", 3, r, phase=phase
                )
                for phase in range(figure6_program.data_cycle_length)
            )
            exact = worst_case_delay(figure6_program, "B", 3, r)
            assert greedy <= exact

    def test_strictly_weaker_on_flat_without_ida(self, figure5_program):
        """Kill-first is a *lower* bound: the optimal adversary re-kills
        the same block on flat programs (a full period per error), which
        greedy never does.  This gap is why the exact game exists."""
        for r in range(1, 4):
            greedy = max(
                greedy_adversary_delay(
                    figure5_program, "A", 5, r,
                    phase=phase, need_distinct=False,
                )
                for phase in range(figure5_program.data_cycle_length)
            )
            exact = worst_case_delay(
                figure5_program, "A", 5, r, need_distinct=False
            )
            assert greedy <= exact
            assert exact == 8 * r  # Lemma 1 tightness


class TestDelayTable:
    def test_figure7_shape(self, figure5_program, figure6_program):
        rows = worst_case_delay_table(
            figure6_program, figure5_program, {"A": 5, "B": 3}, 5
        )
        assert [row.errors for row in rows] == list(range(6))
        # Without IDA: exactly r periods.
        assert [row.without_ida for row in rows] == [
            8 * r for r in range(6)
        ]
        # With IDA beats without IDA at every positive error count.
        for row in rows[1:]:
            assert row.with_ida < row.without_ida

    def test_row_rendering(self, figure5_program, figure6_program):
        rows = worst_case_delay_table(
            figure6_program, figure5_program, {"A": 5, "B": 3}, 1
        )
        assert "|" in str(rows[1])
