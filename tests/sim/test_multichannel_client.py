"""Multi-channel retrieval: choice rule, tuning cost, reference parity."""

import pytest

from repro.errors import SimulationError
from repro.bdisk.file import FileSpec
from repro.bdisk.multichannel import design_multichannel_program
from repro.api.scenario import ChannelSpec
from repro.sim import reference
from repro.sim.client import (
    choose_channel,
    retrieve,
    retrieve_multichannel,
)
from repro.sim.faults import BernoulliFaults, NoFaults


def channel_set(count, *, assignment="striped", tuning_cost=0, quorum=1):
    files = [
        FileSpec("a", 2, 10),
        FileSpec("b", 3, 15),
        FileSpec("c", 2, 20),
        FileSpec("d", 4, 30),
    ]
    return design_multichannel_program(
        files,
        ChannelSpec(
            count=count,
            assignment=assignment,
            tuning_cost=tuning_cost,
            quorum=quorum,
        ),
    ).channel_set


def same_outcome(fast, slow):
    return (
        fast.file == slow.file
        and fast.start == slow.start
        and fast.completed == slow.completed
        and fast.channel == slow.channel
        and fast.switched == slow.switched
        and fast.finish_slot == slow.finish_slot
        and fast.latency == slow.latency
    )


class TestChoiceRule:
    def test_choice_is_deterministic_and_fault_blind(self):
        channels = channel_set(3, assignment="replicated", tuning_cost=2)
        for start in range(0, 30):
            for tuned in range(3):
                first = choose_channel(
                    channels, "a", 2, start=start, tuned=tuned
                )
                again = choose_channel(
                    channels, "a", 2, start=start, tuned=tuned
                )
                assert first[:3] == again[:3]

    def test_prohibitive_tuning_cost_pins_the_tuned_channel(self):
        # A tuning cost longer than any data cycle makes re-tuning
        # strictly worse than waiting out a full rotation in place, so
        # a rational client never leaves a channel that carries the
        # file.
        channels = channel_set(3, assignment="replicated", tuning_cost=100)
        for tuned in range(3):
            channel, listen, _, _ = choose_channel(
                channels, "b", 3, start=5, tuned=tuned
            )
            assert channel == tuned
            assert listen == 5

    def test_zero_cost_ties_go_to_lowest_channel(self):
        channels = channel_set(2, assignment="replicated", tuning_cost=0)
        channel, _, _, _ = choose_channel(
            channels, "b", 3, start=7, tuned=1
        )
        assert channel == 0

    def test_among_restricts_candidates(self):
        channels = channel_set(3, assignment="replicated")
        channel, _, _, _ = choose_channel(
            channels, "a", 2, start=0, tuned=0, among=(2,)
        )
        assert channel == 2


class TestRetrieveMultichannel:
    def test_k1_is_bit_identical_to_single_channel_retrieve(self):
        channels = channel_set(1)
        program = channels.programs[0]
        for file, m in (("a", 2), ("b", 3), ("c", 2), ("d", 4)):
            for start in range(0, 2 * program.data_cycle_length, 7):
                single = retrieve(program, file, m, start=start)
                multi = retrieve_multichannel(
                    channels, file, m, start=start
                )
                assert multi.completed == single.completed
                assert multi.latency == single.latency
                assert multi.finish_slot == single.finish_slot
                assert multi.received == single.received
                assert multi.channel == 0
                assert not multi.switched

    def test_k1_faulty_is_bit_identical_too(self):
        channels = channel_set(1)
        program = channels.programs[0]
        for seed in (1, 7):
            fault = lambda: BernoulliFaults(0.3, seed=seed)  # noqa: E731
            for start in (0, 5, 11):
                single = retrieve(
                    program, "b", 3, start=start, faults=fault()
                )
                multi = retrieve_multichannel(
                    channels, "b", 3, start=start, faults=[fault()]
                )
                assert multi.completed == single.completed
                assert multi.latency == single.latency
                assert multi.finish_slot == single.finish_slot

    def test_tuning_cost_is_paid_exactly_on_switch(self):
        channels = channel_set(2, tuning_cost=3)
        for file in ("a", "b", "c", "d"):
            home = channels.channels_for(file)[0]
            away = 1 - home
            stayed = retrieve_multichannel(
                channels, file, 2, start=0, tuned=home
            )
            moved = retrieve_multichannel(
                channels, file, 2, start=0, tuned=away
            )
            assert not stayed.switched
            assert moved.switched
            assert moved.channel == home

    def test_fault_length_mismatch_rejected(self):
        channels = channel_set(2)
        with pytest.raises(SimulationError, match="per channel"):
            retrieve_multichannel(
                channels, "a", 2, faults=[NoFaults()]
            )


class TestReferenceParity:
    """The fast walker and the slot-walking seed must agree bit-for-bit."""

    @pytest.mark.parametrize("count,assignment,tuning_cost", [
        (1, "striped", 0),
        (2, "striped", 2),
        (3, "replicated", 1),
    ])
    def test_clean_channels(self, count, assignment, tuning_cost):
        channels = channel_set(
            count, assignment=assignment, tuning_cost=tuning_cost
        )
        for file, m in (("a", 2), ("b", 3), ("d", 4)):
            for start in range(0, 40, 3):
                for tuned in range(count):
                    fast = retrieve_multichannel(
                        channels, file, m, start=start, tuned=tuned
                    )
                    slow = reference.retrieve_multichannel(
                        channels, file, m, start=start, tuned=tuned
                    )
                    assert same_outcome(fast, slow), (file, start, tuned)

    def test_faulty_channels(self):
        channels = channel_set(2, assignment="replicated", tuning_cost=1)
        faults = lambda: [  # noqa: E731
            BernoulliFaults(0.3, seed=11),
            BernoulliFaults(0.3, seed=12),
        ]
        for start in range(0, 30, 2):
            for tuned in range(2):
                fast = retrieve_multichannel(
                    channels, "c", 2, start=start, tuned=tuned,
                    faults=faults(),
                )
                slow = reference.retrieve_multichannel(
                    channels, "c", 2, start=start, tuned=tuned,
                    faults=faults(),
                )
                assert same_outcome(fast, slow), (start, tuned)
