"""Tests for client-side caching (LRU vs PIX)."""

import random

import pytest

from repro.bdisk.flat import build_flat_program
from repro.errors import SimulationError, SpecificationError
from repro.sim.cache import CachingClient, LruCache, PixCache
from repro.sim.faults import BernoulliFaults


def make_program():
    return build_flat_program(
        [("hot", 1), ("warm", 2), ("cold", 3)]
    )


SIZES = {"hot": 1, "warm": 2, "cold": 3}


class TestLru:
    def test_evicts_least_recent(self):
        policy = LruCache()
        policy.on_access("a", 1)
        policy.on_access("b", 2)
        policy.on_access("a", 3)
        assert policy.victim({"a", "b"}) == "b"

    def test_never_seen_evicted_first(self):
        policy = LruCache()
        policy.on_access("a", 5)
        assert policy.victim({"a", "ghost"}) == "ghost"


class TestPix:
    def test_high_frequency_items_go_first(self):
        """Equal interest: the frequently-rebroadcast file is evicted."""
        policy = PixCache(
            {"hot": 0.5, "cold": 0.5}, {"hot": 0.5, "cold": 0.1}
        )
        assert policy.victim({"hot", "cold"}) == "hot"

    def test_interest_counters_frequency(self):
        policy = PixCache(
            {"hot": 0.9, "cold": 0.01}, {"hot": 0.5, "cold": 0.1}
        )
        # PIX(hot) = 1.8, PIX(cold) = 0.1 -> cold evicted.
        assert policy.victim({"hot", "cold"}) == "cold"

    def test_for_program_uses_full_file_rate(self):
        """In a flat program every file is broadcast once per period, so
        at equal interest all PIX scores tie - size must not leak in."""
        program = make_program()
        policy = PixCache.for_program(
            program, {"hot": 0.5, "cold": 0.5}, SIZES
        )
        assert policy.pix("cold") == pytest.approx(policy.pix("hot"))

    def test_for_program_detects_fast_disks(self):
        """On a multidisk layout the fast disk's file really is cheaper
        to re-fetch, so PIX ranks it first for eviction."""
        from repro.bdisk.multidisk import (
            MultidiskConfig,
            build_multidisk_program,
        )

        program = build_multidisk_program(
            MultidiskConfig([(2, [("hot", 1)]), (1, [("cold", 1)])])
        )
        policy = PixCache.for_program(
            program, {"hot": 0.5, "cold": 0.5}, {"hot": 1, "cold": 1}
        )
        assert policy.victim({"hot", "cold"}) == "hot"

    def test_validation(self):
        with pytest.raises(SpecificationError):
            PixCache({"a": -0.1}, {"a": 1.0})
        with pytest.raises(SpecificationError):
            PixCache({"a": 0.1}, {"a": 0.0})

    def test_unknown_frequency_rejected(self):
        policy = PixCache({"a": 0.5}, {"a": 1.0})
        with pytest.raises(SimulationError):
            policy.pix("b")


class TestCachingClient:
    def test_hit_after_miss(self):
        client = CachingClient(
            make_program(), SIZES, capacity=2, policy=LruCache()
        )
        first = client.access("hot", 0)
        assert first is not None and first.completed
        second = client.access("hot", 10)
        assert second is None
        assert client.stats.hits == 1
        assert client.stats.misses == 1

    def test_eviction_at_capacity(self):
        client = CachingClient(
            make_program(), SIZES, capacity=1, policy=LruCache()
        )
        client.access("hot", 0)
        client.access("warm", 10)
        assert client.stats.evictions == 1
        assert client.resident == frozenset({"warm"})

    def test_incomplete_retrievals_not_cached(self):
        client = CachingClient(
            make_program(),
            SIZES,
            capacity=2,
            policy=LruCache(),
            faults=BernoulliFaults(1.0),
        )
        result = client.access("hot", 0)
        assert result is not None and not result.completed
        assert client.resident == frozenset()

    def test_unknown_file_rejected(self):
        client = CachingClient(
            make_program(), SIZES, capacity=1, policy=LruCache()
        )
        with pytest.raises(SimulationError):
            client.access("ghost", 0)

    def test_capacity_validation(self):
        with pytest.raises(SpecificationError):
            CachingClient(
                make_program(), SIZES, capacity=0, policy=LruCache()
            )

    def test_pix_beats_lru_on_skewed_rebroadcast(self):
        """The Acharya scenario: LRU keeps the hot item (always about to
        be rebroadcast anyway); PIX keeps the rare ones.  With interest
        split between one frequent and several rare files, PIX's mean
        latency is no worse than LRU's."""
        program = build_flat_program(
            [("hot", 1)] * 1 + [("rare-1", 4), ("rare-2", 4)]
        )
        sizes = {"hot": 1, "rare-1": 4, "rare-2": 4}
        interest = {"hot": 0.5, "rare-1": 0.25, "rare-2": 0.25}
        rng = random.Random(9)
        stream = rng.choices(
            list(interest), weights=list(interest.values()), k=200
        )

        def run(policy):
            client = CachingClient(
                program, sizes, capacity=1, policy=policy
            )
            now = 0
            for name in stream:
                result = client.access(name, now)
                now += 1 + (result.latency if result else 0)
            return client.stats

        lru_stats = run(LruCache())
        pix_stats = run(
            PixCache.for_program(program, interest, sizes)
        )
        assert pix_stats.mean_latency <= lru_stats.mean_latency

    def test_stats_accounting(self):
        client = CachingClient(
            make_program(), SIZES, capacity=3, policy=LruCache()
        )
        client.access("hot", 0)
        client.access("warm", 5)
        client.access("hot", 9)
        stats = client.stats
        assert stats.accesses == 3
        assert stats.hit_ratio == pytest.approx(1 / 3)
        assert stats.mean_latency > 0
