"""Distribution-shape tests for the seeded access-pattern generators."""

import random

import pytest

from repro.errors import SpecificationError
from repro.sim.workload import (
    hot_cold_weights,
    sample_accesses,
    zipf_weights,
)


class TestZipfWeights:
    def test_monotone_decreasing(self):
        weights = zipf_weights(20, 1.2)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_skew_sets_the_ratio(self):
        weights = zipf_weights(4, 2.0)
        assert weights[0] / weights[1] == pytest.approx(4.0)
        assert weights[0] / weights[3] == pytest.approx(16.0)

    def test_zero_skew_is_uniform(self):
        assert zipf_weights(5, 0.0) == [1.0] * 5

    def test_validation(self):
        with pytest.raises(SpecificationError):
            zipf_weights(0, 1.0)
        with pytest.raises(SpecificationError):
            zipf_weights(3, -0.1)


class TestHotColdWeights:
    def test_hot_set_draws_its_share(self):
        weights = hot_cold_weights(100, hot_fraction=0.1, hot_weight=0.9)
        assert sum(weights[:10]) == pytest.approx(0.9)
        assert sum(weights[10:]) == pytest.approx(0.1)
        assert len(set(weights[:10])) == 1  # uniform within the hot set
        assert len(set(weights[10:])) == 1  # uniform within the cold set

    def test_at_least_one_file_is_hot(self):
        weights = hot_cold_weights(5, hot_fraction=0.01, hot_weight=0.8)
        assert weights[0] == pytest.approx(0.8)

    def test_everything_hot_collapses_to_uniform(self):
        assert hot_cold_weights(4, hot_fraction=1.0) == [0.25] * 4

    def test_extreme_hot_weight_starves_cold_files(self):
        weights = hot_cold_weights(10, hot_fraction=0.2, hot_weight=1.0)
        assert sum(weights[2:]) == 0.0

    def test_validation(self):
        with pytest.raises(SpecificationError):
            hot_cold_weights(0)
        with pytest.raises(SpecificationError):
            hot_cold_weights(5, hot_fraction=0.0)
        with pytest.raises(SpecificationError):
            hot_cold_weights(5, hot_fraction=1.5)
        with pytest.raises(SpecificationError):
            hot_cold_weights(5, hot_weight=-0.1)


class TestSampling:
    def test_seeded_and_reproducible(self):
        weights = zipf_weights(10, 1.0)
        first = sample_accesses(random.Random(7), weights, 100)
        second = sample_accesses(random.Random(7), weights, 100)
        assert first == second

    def test_frequencies_track_weights(self):
        """The generator's empirical law matches the requested shape."""
        weights = hot_cold_weights(10, hot_fraction=0.2, hot_weight=0.8)
        draws = sample_accesses(random.Random(3), weights, 50_000)
        hot_share = sum(1 for d in draws if d < 2) / len(draws)
        assert hot_share == pytest.approx(0.8, abs=0.02)

    def test_zipf_rank_frequencies_decrease(self):
        weights = zipf_weights(6, 1.3)
        draws = sample_accesses(random.Random(11), weights, 30_000)
        counts = [draws.count(rank) for rank in range(6)]
        assert all(a > b for a, b in zip(counts, counts[1:]))

    def test_cum_weights_draws_are_bit_identical(self):
        from itertools import accumulate

        weights = zipf_weights(8, 1.1)
        direct = sample_accesses(random.Random(4), weights, 200)
        cumulative = sample_accesses(
            random.Random(4), None, 200,
            cum_weights=list(accumulate(weights)),
        )
        assert direct == cumulative

    def test_validation(self):
        with pytest.raises(SpecificationError):
            sample_accesses(random.Random(0), [], 5)
        with pytest.raises(SpecificationError):
            sample_accesses(random.Random(0), [1.0], 0)
        with pytest.raises(SpecificationError):
            sample_accesses(random.Random(0), None, 5)
        with pytest.raises(SpecificationError):
            sample_accesses(
                random.Random(0), [1.0], 5, cum_weights=[1.0]
            )
