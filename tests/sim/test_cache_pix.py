"""PIX eviction edge cases: tie-breaking, zero-frequency / zero-interest
files, and behaviour under the traffic subsystem's session clients."""

import pytest

from repro.bdisk.flat import build_aida_flat_program
from repro.errors import SimulationError, SpecificationError
from repro.sim.cache import LruCache, PixCache
from repro.traffic import TrafficSpec, simulate_traffic


class TestPixTieBreaking:
    def test_equal_scores_evict_lexicographically_smallest(self):
        policy = PixCache(
            {"aa": 0.4, "zz": 0.4}, {"aa": 0.2, "zz": 0.2}
        )
        # Identical PIX: the victim must not depend on set iteration
        # order (string hashing is randomized per process).
        assert policy.victim({"zz", "aa"}) == "aa"
        assert policy.victim({"aa", "zz"}) == "aa"

    def test_tie_break_is_stable_across_many_orderings(self):
        names = [f"file-{i}" for i in range(8)]
        policy = PixCache(
            {name: 0.5 for name in names},
            {name: 0.25 for name in names},
        )
        for rotation in range(8):
            resident = set(names[rotation:] + names[:rotation])
            assert policy.victim(resident) == "file-0"

    def test_score_still_dominates_the_name(self):
        policy = PixCache({"aa": 0.9, "zz": 0.1}, {"aa": 0.1, "zz": 0.1})
        assert policy.victim({"aa", "zz"}) == "zz"


class TestLruTieBreaking:
    def test_never_seen_residents_tie_break_on_name(self):
        policy = LruCache()
        assert policy.victim({"zeta", "beta", "alpha"}) == "alpha"

    def test_equal_timestamps_tie_break_on_name(self):
        policy = LruCache()
        policy.on_access("b", 5)
        policy.on_access("a", 5)
        assert policy.victim({"a", "b"}) == "a"


class TestZeroFrequency:
    def test_zero_frequency_rejected_at_construction(self):
        with pytest.raises(SpecificationError):
            PixCache({"a": 0.5}, {"a": 0.0})
        with pytest.raises(SpecificationError):
            PixCache({"a": 0.5}, {"a": -1.0})

    def test_negative_probability_rejected(self):
        with pytest.raises(SpecificationError):
            PixCache({"a": -0.1}, {"a": 1.0})

    def test_unknown_file_raises_at_eviction_time(self):
        policy = PixCache({"a": 0.5}, {"a": 0.2})
        with pytest.raises(SimulationError):
            policy.victim({"a", "phantom"})

    def test_zero_interest_files_go_first(self):
        """Probability 0 is legal: PIX 0 makes the file the first victim
        even against high-frequency hot items."""
        policy = PixCache(
            {"hot": 0.9, "stale": 0.0}, {"hot": 5.0, "stale": 0.001}
        )
        assert policy.pix("stale") == 0.0
        assert policy.victim({"hot", "stale"}) == "stale"

    def test_for_program_never_produces_zero_frequency(self):
        program = build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])
        cache = PixCache.for_program(
            program, {"A": 0.7, "B": 0.3}, {"A": 5, "B": 3}
        )
        assert cache.pix("A") > 0 and cache.pix("B") > 0


class TestUnderSessionClients:
    """The traffic layer drives PIX through whole session populations."""

    def make_world(self):
        program = build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])
        return program, ["A", "B"], {"A": 5, "B": 3}, {"A": 200, "B": 200}

    def test_pix_population_runs_and_hits(self):
        program, catalogue, sizes, deadlines = self.make_world()
        result = simulate_traffic(
            program,
            catalogue,
            TrafficSpec(
                clients=30, duration=300, requests_per_client=6,
                cache="pix", cache_capacity=1, popularity="zipf",
                zipf_skew=1.5, seed=41,
            ),
            file_sizes=sizes,
            deadlines=deadlines,
        )
        metrics = result.metrics
        assert metrics.cache_hits > 0
        assert metrics.cache_evictions > 0
        assert metrics.cache_hits + metrics.cache_misses == result.requests

    def test_zero_weight_file_never_cached_never_requested(self):
        """hotcold with hot_weight=1.0 gives the cold file probability 0:
        sessions never draw it, and PIX would evict it instantly anyway."""
        program, catalogue, sizes, deadlines = self.make_world()
        result = simulate_traffic(
            program,
            catalogue,
            TrafficSpec(
                clients=25, duration=250, requests_per_client=4,
                cache="pix", cache_capacity=1, popularity="hotcold",
                hot_fraction=0.5, hot_weight=1.0, seed=13,
            ),
            file_sizes=sizes,
            deadlines=deadlines,
        )
        assert result.metrics.requests_by_file.get("B", 0) == 0
        assert result.metrics.requests_by_file["A"] == result.requests

    def test_session_pix_eviction_is_reproducible(self):
        program, catalogue, sizes, deadlines = self.make_world()
        spec = TrafficSpec(
            clients=20, duration=200, requests_per_client=5,
            cache="pix", cache_capacity=1, seed=7,
        )
        runs = [
            simulate_traffic(
                program, catalogue, spec,
                file_sizes=sizes, deadlines=deadlines, trace=True,
            )
            for _ in range(2)
        ]
        assert runs[0].trace == runs[1].trace
        assert runs[0].metrics.cache_evictions \
            == runs[1].metrics.cache_evictions
