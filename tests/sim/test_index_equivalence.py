"""Property tests: indexed fast paths vs the seed slot-walking spec.

The occurrence-indexed simulation core (``ProgramIndex`` + the
occurrence-walking ``retrieve``/``broadcast_retrieve``, the phase-
memoizing runner, the index-backed delay search) must be *bit-identical*
to the seed implementations preserved in :mod:`repro.sim.reference`.
These properties pin that down on randomized programs, phases, fault
models, and requirements.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.bdisk.flat import build_aida_flat_program
from repro.bdisk.program import BroadcastProgram
from repro.core.schedule import IDLE, Schedule
from repro.ida.dispersal import disperse
from repro.sim import reference
from repro.sim.channel import ByteChannel, broadcast_retrieve
from repro.sim.client import retrieve
from repro.sim.delay import worst_case_delay
from repro.sim.faults import (
    AdversarialFaults,
    BernoulliFaults,
    BurstFaults,
    NoFaults,
)
from repro.sim.runner import simulate_requests
from repro.sim.workload import Request


@st.composite
def programs(draw, max_files=3, max_length=12, max_blocks=8):
    """Random small programs: idle slots, shared slots, rotation."""
    n_files = draw(st.integers(1, max_files))
    names = [f"f{i}" for i in range(n_files)]
    length = draw(st.integers(n_files, max_length))
    cycle = [
        draw(st.sampled_from(names + [IDLE])) for _ in range(length)
    ]
    for index, name in enumerate(names):
        cycle[index % length] = name
    block_counts = {
        name: draw(st.integers(1, max_blocks)) for name in names
    }
    return BroadcastProgram(Schedule(cycle), block_counts)


@st.composite
def fault_models(draw):
    """One fault model of each kind, freshly constructed per use."""
    kind = draw(st.sampled_from(["none", "bernoulli", "burst", "adversarial"]))
    seed = draw(st.integers(0, 2**16))
    if kind == "none":
        return lambda: NoFaults()
    if kind == "bernoulli":
        p = draw(st.floats(0.0, 1.0))
        return lambda: BernoulliFaults(p, seed=seed)
    if kind == "burst":
        p_enter = draw(st.floats(0.0, 0.5))
        p_exit = draw(st.floats(0.1, 1.0))
        return lambda: BurstFaults(p_enter, p_exit, seed=seed)
    slots = draw(st.sets(st.integers(0, 200), max_size=20))
    return lambda: AdversarialFaults(slots)


class TestSlotContent:
    @given(program=programs())
    @settings(max_examples=60, deadline=None)
    def test_table_matches_naive_formula(self, program):
        """O(1) table lookups == the seed prefix-count arithmetic."""
        for t in range(2 * program.data_cycle_length):
            assert program.slot_content(t) == reference.slot_content(
                program, t
            )
            assert program.index.content(t) == program.slot_content(t)


class TestRetrieveEquivalence:
    @given(
        program=programs(),
        faults=fault_models(),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_retrievals(self, program, faults, data):
        file = data.draw(st.sampled_from(program.files))
        m_needed = data.draw(
            st.integers(1, program.block_count(file) + 1)
        )
        start = data.draw(st.integers(0, 3 * program.data_cycle_length))
        need_distinct = data.draw(st.booleans())
        max_slots = data.draw(
            st.one_of(
                st.none(),
                st.integers(0, 4 * program.data_cycle_length),
            )
        )
        expected = reference.retrieve(
            program, file, m_needed,
            start=start, faults=faults(),
            need_distinct=need_distinct, max_slots=max_slots,
        )
        actual = retrieve(
            program, file, m_needed,
            start=start, faults=faults(),
            need_distinct=need_distinct, max_slots=max_slots,
        )
        assert actual == expected

    @given(program=programs(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_shared_model_instance_is_safe(self, program, data):
        """Both paths may share one (stateful) fault model instance."""
        file = data.draw(st.sampled_from(program.files))
        model = BurstFaults(0.2, 0.5, seed=data.draw(st.integers(0, 99)))
        expected = reference.retrieve(
            program, file, 1, start=5, faults=model
        )
        actual = retrieve(program, file, 1, start=5, faults=model)
        assert actual == expected


class TestWindowEquivalence:
    @given(program=programs(max_length=10), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_min_distinct_in_window(self, program, data):
        # The seed implementation crashes on window=0 (it slides out
        # slots it never primed); the indexed one returns 0 there, so
        # the equivalence claim starts at window=1.
        file = data.draw(st.sampled_from(program.files))
        window = data.draw(
            st.integers(1, 2 * program.data_cycle_length + 1)
        )
        assert program.min_distinct_in_window(
            file, window
        ) == reference.min_distinct_in_window(program, file, window)

    @given(program=programs())
    @settings(max_examples=20, deadline=None)
    def test_empty_window_holds_nothing(self, program):
        for file in program.files:
            assert program.min_distinct_in_window(file, 0) == 0

    @given(program=programs())
    @settings(max_examples=40, deadline=None)
    def test_count_in_window(self, program):
        index = program.index
        cycle = program.data_cycle_length
        for file in program.files:
            for start in range(0, 2 * cycle, 3):
                for length in (0, 1, cycle // 2 + 1, cycle, cycle + 3):
                    naive = sum(
                        1
                        for t in range(start, start + length)
                        if (c := reference.slot_content(program, t))
                        is not None and c.file == file
                    )
                    assert index.count_in_window(
                        file, start, length
                    ) == naive


class TestDelayEquivalence:
    @given(
        program=programs(max_files=2, max_length=8, max_blocks=4),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_worst_case_delay(self, program, data):
        file = data.draw(st.sampled_from(program.files))
        m_needed = data.draw(
            st.integers(1, program.block_count(file))
        )
        errors = data.draw(st.integers(0, 2))
        need_distinct = data.draw(st.booleans())
        assert worst_case_delay(
            program, file, m_needed, errors, need_distinct=need_distinct
        ) == reference.worst_case_delay(
            program, file, m_needed, errors, need_distinct=need_distinct
        )


class TestRunnerEquivalence:
    def _requests(self, rng, program, count, horizon):
        files = list(program.files)
        return [
            Request(
                time=rng.randrange(horizon),
                file=rng.choice(files),
                deadline=rng.randint(1, 4 * program.data_cycle_length),
            )
            for _ in range(count)
        ]

    @given(
        program=programs(),
        faults=fault_models(),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_per_request_reference(self, program, faults, seed):
        """Grouping by file and phase memoization change nothing."""
        rng = random.Random(seed)
        requests = sorted(
            self._requests(
                rng, program, count=25,
                horizon=3 * program.data_cycle_length,
            ),
            key=lambda r: r.time,
        )
        sizes = {f: program.block_count(f) for f in program.files}
        model = faults()
        expected = [
            reference.retrieve(
                program, r.file, sizes[r.file],
                start=r.time, faults=model,
            )
            for r in requests
        ]
        result = simulate_requests(
            program, requests, file_sizes=sizes, faults=faults()
        )
        assert list(result.retrievals) == expected
        misses = sum(
            1
            for r, q in zip(expected, requests)
            if not r.met_deadline(q.deadline)
        )
        assert result.deadline_misses == misses


class TestChannelEquivalence:
    @given(
        error_rate=st.floats(0.0, 0.02),
        seed=st.integers(0, 2**16),
        start=st.integers(0, 30),
    )
    @settings(max_examples=20, deadline=None)
    def test_occurrence_walk_matches_slot_scan(
        self, error_rate, seed, start
    ):
        program = build_aida_flat_program([("A", 3, 6), ("B", 2, 4)])
        payload = b"payload bytes for equivalence " * 4
        on_air = {"A": disperse(payload, 3, 6, file_id="A")}
        channel = ByteChannel(error_rate, seed=seed)

        # The seed loop: scan every slot, transmit on A's slots only.
        horizon = 5 * program.data_cycle_length
        naive_log = []
        naive_payload = None
        held = {}
        for t in range(start, start + horizon):
            content = reference.slot_content(program, t)
            if content is None or content.file != "A":
                continue
            frame = channel.transmit(on_air["A"][content.block_index], t)
            naive_log.append(frame)
            if frame.delivered is not None:
                held.setdefault(frame.delivered.index, frame.delivered)
                if len(held) >= 3:
                    from repro.ida.dispersal import reconstruct

                    naive_payload = reconstruct(list(held.values()))
                    break

        restored, log = broadcast_retrieve(
            program, on_air, "A", 3, channel,
            start=start, max_slots=horizon,
        )
        assert restored == naive_payload
        assert log == naive_log
