"""Tests for channel fault models."""

import pytest

from repro.errors import SpecificationError
from repro.sim.faults import (
    AdversarialFaults,
    BernoulliFaults,
    BurstFaults,
    NoFaults,
)


class TestNoFaults:
    def test_never_loses(self):
        model = NoFaults()
        assert not any(model.is_lost(t) for t in range(100))


class TestBernoulli:
    def test_validation(self):
        with pytest.raises(SpecificationError):
            BernoulliFaults(-0.1)
        with pytest.raises(SpecificationError):
            BernoulliFaults(1.1)

    def test_extremes(self):
        assert not BernoulliFaults(0.0).is_lost(5)
        assert BernoulliFaults(1.0).is_lost(5)

    def test_deterministic_per_slot(self):
        model = BernoulliFaults(0.5, seed=7)
        decisions = [model.is_lost(t) for t in range(50)]
        again = [model.is_lost(t) for t in range(50)]
        assert decisions == again

    def test_order_independent(self):
        model = BernoulliFaults(0.5, seed=7)
        forward = [model.is_lost(t) for t in range(20)]
        fresh = BernoulliFaults(0.5, seed=7)
        backward = [fresh.is_lost(t) for t in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_seed_changes_pattern(self):
        a = [BernoulliFaults(0.5, seed=1).is_lost(t) for t in range(64)]
        b = [BernoulliFaults(0.5, seed=2).is_lost(t) for t in range(64)]
        assert a != b

    def test_loss_rate_approximates_p(self):
        model = BernoulliFaults(0.3, seed=3)
        losses = sum(model.is_lost(t) for t in range(5000))
        assert 0.25 < losses / 5000 < 0.35


class TestBurst:
    def test_validation(self):
        with pytest.raises(SpecificationError):
            BurstFaults(-0.1, 0.5)
        with pytest.raises(SpecificationError):
            BurstFaults(0.1, 1.5)

    def test_deterministic(self):
        a = BurstFaults(0.05, 0.5, seed=9)
        b = BurstFaults(0.05, 0.5, seed=9)
        assert [a.is_lost(t) for t in range(200)] == [
            b.is_lost(t) for t in range(200)
        ]

    def test_out_of_order_queries_consistent(self):
        model = BurstFaults(0.05, 0.5, seed=9)
        late = model.is_lost(150)
        early = model.is_lost(3)
        fresh = BurstFaults(0.05, 0.5, seed=9)
        assert early == fresh.is_lost(3)
        assert late == fresh.is_lost(150)

    def test_losses_cluster(self):
        """Bursty losses have longer runs than Bernoulli at equal rate."""
        model = BurstFaults(0.02, 0.25, seed=4)
        states = [model.is_lost(t) for t in range(20_000)]
        loss_rate = sum(states) / len(states)
        runs = []
        current = 0
        for lost in states:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert loss_rate > 0
        assert runs and sum(runs) / len(runs) > 1.5

    def test_never_lost_when_enter_zero(self):
        model = BurstFaults(0.0, 0.5, seed=1)
        assert not any(model.is_lost(t) for t in range(500))


class TestAdversarial:
    def test_explicit_slots(self):
        model = AdversarialFaults([3, 7])
        assert model.is_lost(3)
        assert model.is_lost(7)
        assert not model.is_lost(5)
        assert model.budget == 2

    def test_rejects_negative_slots(self):
        with pytest.raises(SpecificationError):
            AdversarialFaults([-1])

    def test_empty_adversary(self):
        assert AdversarialFaults([]).budget == 0
