"""Tests for channel fault models."""

import pytest

from repro.errors import SimulationError, SpecificationError
from repro.sim.faults import (
    AdversarialFaults,
    BernoulliFaults,
    BurstFaults,
    NoFaults,
    lost_in,
)


class TestNoFaults:
    def test_never_loses(self):
        model = NoFaults()
        assert not any(model.is_lost(t) for t in range(100))


class TestBernoulli:
    def test_validation(self):
        with pytest.raises(SpecificationError):
            BernoulliFaults(-0.1)
        with pytest.raises(SpecificationError):
            BernoulliFaults(1.1)

    def test_extremes(self):
        assert not BernoulliFaults(0.0).is_lost(5)
        assert BernoulliFaults(1.0).is_lost(5)

    def test_deterministic_per_slot(self):
        model = BernoulliFaults(0.5, seed=7)
        decisions = [model.is_lost(t) for t in range(50)]
        again = [model.is_lost(t) for t in range(50)]
        assert decisions == again

    def test_order_independent(self):
        model = BernoulliFaults(0.5, seed=7)
        forward = [model.is_lost(t) for t in range(20)]
        fresh = BernoulliFaults(0.5, seed=7)
        backward = [fresh.is_lost(t) for t in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_seed_changes_pattern(self):
        a = [BernoulliFaults(0.5, seed=1).is_lost(t) for t in range(64)]
        b = [BernoulliFaults(0.5, seed=2).is_lost(t) for t in range(64)]
        assert a != b

    def test_loss_rate_approximates_p(self):
        model = BernoulliFaults(0.3, seed=3)
        losses = sum(model.is_lost(t) for t in range(5000))
        assert 0.25 < losses / 5000 < 0.35


class TestBurst:
    def test_validation(self):
        with pytest.raises(SpecificationError):
            BurstFaults(-0.1, 0.5)
        with pytest.raises(SpecificationError):
            BurstFaults(0.1, 1.5)

    def test_deterministic(self):
        a = BurstFaults(0.05, 0.5, seed=9)
        b = BurstFaults(0.05, 0.5, seed=9)
        assert [a.is_lost(t) for t in range(200)] == [
            b.is_lost(t) for t in range(200)
        ]

    def test_out_of_order_queries_consistent(self):
        model = BurstFaults(0.05, 0.5, seed=9)
        late = model.is_lost(150)
        early = model.is_lost(3)
        fresh = BurstFaults(0.05, 0.5, seed=9)
        assert early == fresh.is_lost(3)
        assert late == fresh.is_lost(150)

    def test_losses_cluster(self):
        """Bursty losses have longer runs than Bernoulli at equal rate."""
        model = BurstFaults(0.02, 0.25, seed=4)
        states = [model.is_lost(t) for t in range(20_000)]
        loss_rate = sum(states) / len(states)
        runs = []
        current = 0
        for lost in states:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert loss_rate > 0
        assert runs and sum(runs) / len(runs) > 1.5

    def test_never_lost_when_enter_zero(self):
        model = BurstFaults(0.0, 0.5, seed=1)
        assert not any(model.is_lost(t) for t in range(500))


class TestAdversarial:
    def test_explicit_slots(self):
        model = AdversarialFaults([3, 7])
        assert model.is_lost(3)
        assert model.is_lost(7)
        assert not model.is_lost(5)
        assert model.budget == 2

    def test_rejects_negative_slots(self):
        with pytest.raises(SpecificationError):
            AdversarialFaults([-1])

    def test_empty_adversary(self):
        assert AdversarialFaults([]).budget == 0


class TestBatchedDecisions:
    """lost_in(slots) must agree, slot by slot, with is_lost."""

    MODELS = [
        lambda: NoFaults(),
        lambda: BernoulliFaults(0.3, seed=11),
        lambda: BurstFaults(0.05, 0.4, seed=11),
        lambda: AdversarialFaults([2, 3, 50, 51]),
    ]

    def test_batch_matches_pointwise(self):
        slots = [40, 3, 3, 17, 0, 99, 63]
        for factory in self.MODELS:
            batch = factory().lost_in(slots)
            pointwise = [factory().is_lost(t) for t in slots]
            assert batch == pointwise

    def test_helper_uses_model_batch(self):
        model = AdversarialFaults([1])
        assert lost_in(model, [0, 1, 2]) == [False, True, False]

    def test_helper_falls_back_to_pointwise(self):
        class OddLoses:
            def is_lost(self, t: int) -> bool:
                return t % 2 == 1

        assert lost_in(OddLoses(), [1, 2, 3]) == [True, False, True]

    def test_empty_batch(self):
        for factory in self.MODELS:
            assert factory().lost_in([]) == []


class TestBernoulliCache:
    def test_decisions_bit_identical_to_fresh_seeding(self):
        """The reused-RNG fast path must reproduce the documented
        contract: hash random.Random(f"{seed}:{t}") per slot."""
        import random as _random

        model = BernoulliFaults(0.4, seed=9)
        for t in [5, 0, 5, 123, 7, 123]:
            expected = _random.Random(f"9:{t}").random() < 0.4
            assert model.is_lost(t) == expected

    def test_batch_then_pointwise_consistent(self):
        model = BernoulliFaults(0.5, seed=21)
        slots = list(range(64))
        batch = model.lost_in(slots)
        assert [model.is_lost(t) for t in slots] == batch


class TestBurstBounds:
    def test_chunked_states_match_seed_markov_chain(self):
        """The chunked byte table replays the seed Markov chain: one RNG
        draw per slot, transition before recording."""
        import random as _random

        model = BurstFaults(0.1, 0.3, seed=13)
        rng = _random.Random(13)
        bad = False
        expected = []
        for _ in range(500):
            if bad:
                if rng.random() < 0.3:
                    bad = False
            else:
                if rng.random() < 0.1:
                    bad = True
            expected.append(bad)
        assert model.lost_in(list(range(500))) == expected

    def test_query_beyond_max_horizon_rejected(self):
        model = BurstFaults(0.1, 0.5, seed=1, max_horizon=100)
        assert model.is_lost(99) in (True, False)
        with pytest.raises(SimulationError):
            model.is_lost(100)
        with pytest.raises(SimulationError):
            model.lost_in([5, 100])

    def test_growth_capped_at_max_horizon(self):
        model = BurstFaults(0.1, 0.5, seed=1, max_horizon=10)
        model.is_lost(9)
        assert len(model._states) == 10

    def test_bad_max_horizon_rejected(self):
        with pytest.raises(SpecificationError):
            BurstFaults(0.1, 0.5, max_horizon=0)
