"""Shared fixtures: the paper's toy programs and seeded RNGs."""

from __future__ import annotations

import random

import pytest

from repro.bdisk.flat import build_aida_flat_program, build_flat_program


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xB0CA)


@pytest.fixture
def figure5_program():
    """The paper's Figure 5 flat program: A (5 blocks), B (3 blocks)."""
    return build_flat_program([("A", 5), ("B", 3)])


@pytest.fixture
def figure6_program():
    """The paper's Figure 6 AIDA program: A 5-of-10, B 3-of-6."""
    return build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])
