"""Tests for the ``repro sweep`` subcommand."""

import json
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


def sweep_path(tmp_path, **spec_overrides) -> str:
    payload = {
        "name": "cli-grid",
        "base": {
            "name": "cli-base",
            "files": [
                {"name": "pos", "blocks": 2, "latency": 2,
                 "fault_budget": 1},
                {"name": "map", "blocks": 3, "latency": 6},
            ],
            "workload": {"requests": 8, "horizon": 50, "seed": 3},
        },
        "axes": [
            {"field": "faults.kind", "values": ["bernoulli"]},
            {"field": "faults.probability",
             "values": [0.0, 0.05, 0.1]},
        ],
    }
    payload.update(spec_overrides)
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestSweep:
    def test_summary_and_table(self, tmp_path, capsys):
        status = main(["sweep", sweep_path(tmp_path)])
        out = capsys.readouterr().out
        assert status == 0
        assert "sweep     : cli-grid (3 cells" in out
        assert "designs   : 1 distinct, 1 solved, 2 cell cache hits" in out
        assert "faults.probability" in out  # the tidy table

    def test_default_store_and_cache_paths(self, tmp_path, capsys):
        status = main(["sweep", sweep_path(tmp_path)])
        assert status == 0
        assert (tmp_path / "sweep.runs.jsonl").exists()
        assert list((tmp_path / "sweep.solve-cache").glob("*.pkl"))

    def test_json_record(self, tmp_path, capsys):
        status = main(["sweep", sweep_path(tmp_path), "--json"])
        assert status == 0
        record = json.loads(capsys.readouterr().out)
        assert record["summary"]["cells"] == 3
        assert record["summary"]["solves"] == 1
        assert len(record["records"]) == 3
        assert record["records"][2]["faults.probability"] == 0.1

    def test_second_run_is_all_cache_hits(self, tmp_path, capsys):
        main(["sweep", sweep_path(tmp_path), "--json"])
        capsys.readouterr()
        # Fresh store, same cache: every design comes from the cache.
        status = main(
            ["sweep", sweep_path(tmp_path), "--json",
             "--store", str(tmp_path / "second.runs.jsonl")]
        )
        assert status == 0
        record = json.loads(capsys.readouterr().out)
        assert record["summary"]["solves"] == 0
        assert record["summary"]["cache_hits"] == 3

    def test_resume_skips_completed_cells(self, tmp_path, capsys):
        path = sweep_path(tmp_path)
        main(["sweep", path, "--json"])
        capsys.readouterr()
        status = main(["sweep", path, "--resume", "--json"])
        assert status == 0
        record = json.loads(capsys.readouterr().out)
        assert record["summary"]["executed"] == 0
        assert record["summary"]["resumed"] == 3

    def test_workers_flag_runs_pool(self, tmp_path, capsys):
        status = main(["sweep", sweep_path(tmp_path), "--workers", "2",
                       "--json"])
        assert status == 0
        record = json.loads(capsys.readouterr().out)
        assert record["summary"]["workers"] == 2

    def test_no_cache_flag(self, tmp_path, capsys):
        status = main(
            ["sweep", sweep_path(tmp_path), "--no-cache", "--json"]
        )
        assert status == 0
        record = json.loads(capsys.readouterr().out)
        assert record["summary"]["solves"] == 3
        assert not (tmp_path / "sweep.solve-cache").exists()

    def test_bad_workers_is_a_usage_error(self, tmp_path, capsys):
        for raw in ("0", "-3", "two"):
            with pytest.raises(SystemExit) as excinfo:
                main(["sweep", sweep_path(tmp_path), "--workers", raw])
            assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "worker count must be >= 1" in err or "positive" in err

    def test_traffic_workers_rejected_too(self, tmp_path, capsys):
        # The same guard covers repro traffic.
        scenario = tmp_path / "scenario.json"
        scenario.write_text(
            json.dumps(
                {
                    "name": "t",
                    "files": [{"name": "pos", "blocks": 2, "latency": 2}],
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["traffic", str(scenario), "--workers", "-1"])
        assert excinfo.value.code == 2
        assert "worker count must be >= 1" in capsys.readouterr().err

    def test_invalid_spec_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x"}', encoding="utf-8")
        status = main(["sweep", str(path)])
        captured = capsys.readouterr()
        assert status == 1
        assert "error:" in captured.err

    def test_checked_in_example_sweep(self, tmp_path, capsys):
        spec = EXAMPLES_DIR / "sweep_fault_grid.json"
        status = main(
            ["sweep", str(spec),
             "--store", str(tmp_path / "runs.jsonl"),
             "--cache-dir", str(tmp_path / "cache")]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "sweep     : fault-grid" in out


class TestSweepServe:
    def test_serve_with_local_workers(self, tmp_path, capsys):
        status = main(
            [
                "sweep", "serve", sweep_path(tmp_path),
                "--workers", "2",
                "--lease-seconds", "10",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "serving   : cli-grid on 127.0.0.1:" in out
        assert "cells     : 3 executed, 0 resumed" in out
        assert "1 solved cluster-wide" in out
        assert (tmp_path / "sweep.runs.jsonl").exists()

    def test_port_file_and_external_worker(self, tmp_path, capsys):
        import threading

        port_file = tmp_path / "port.txt"
        outcome = {}

        def serve():
            outcome["status"] = main(
                [
                    "sweep", "serve", sweep_path(tmp_path),
                    "--port-file", str(port_file),
                    "--json",
                ]
            )

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        deadline = 50
        while not port_file.exists() and deadline:
            import time

            time.sleep(0.1)
            deadline -= 1
        address = port_file.read_text().strip()
        status = main(
            [
                "sweep", "work",
                "--connect", address,
                "--cache-dir", str(tmp_path / "cache"),
                "--json",
            ]
        )
        server.join(timeout=60.0)
        assert status == 0
        assert outcome["status"] == 0
        out = capsys.readouterr().out
        # Both JSON payloads landed (print order between the serve
        # thread and the worker is not guaranteed): the worker's
        # stats and the coordinator's summary.
        assert '"cells": 3' in out
        assert '"solves": 1' in out

    def test_serve_resume_reports_reasons(self, tmp_path, capsys):
        spec = sweep_path(tmp_path)
        assert main(["sweep", "serve", spec, "--workers", "1"]) == 0
        capsys.readouterr()
        status = main(["sweep", "serve", spec, "--resume"])
        out = capsys.readouterr().out
        assert status == 0
        assert "cells     : 0 executed, 3 resumed" in out
        assert (
            "re-run    : 0 fingerprint drift (stored scenario "
            "changed), 0 missing key (never completed)" in out
        )

    def test_no_rows_prints_marginals(self, tmp_path, capsys):
        status = main(
            [
                "sweep", "serve", sweep_path(tmp_path),
                "--workers", "1",
                "--no-rows",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "marginal over faults.probability:" in out

    def test_work_bad_address_fails_cleanly(self, capsys):
        status = main(
            [
                "sweep", "work",
                "--connect", "127.0.0.1:1",
                "--connect-timeout", "0.3",
            ]
        )
        assert status == 1
        assert "error:" in capsys.readouterr().err

    def test_positional_sweep_form_still_works(self, tmp_path, capsys):
        # The verb routing must not shadow 'repro sweep spec.json'.
        status = main(["sweep", sweep_path(tmp_path)])
        assert status == 0
        assert "sweep     : cli-grid" in capsys.readouterr().out
