"""Tests for the ``repro traffic`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.api import Scenario, TrafficSpec

EXAMPLE = "examples/scenario_awacs.json"


def write_scenario(tmp_path, scenario, name="scenario.json"):
    path = tmp_path / name
    scenario.save(path)
    return str(path)


class TestTrafficCommand:
    def test_example_scenario_with_flag_overrides(self, capsys):
        code = main(
            [
                "traffic", EXAMPLE,
                "--clients", "40", "--duration", "400", "--seed", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario  : awacs" in out
        assert "40 clients over 400 slots" in out
        assert "req/s sustained" in out

    def test_json_record(self, capsys):
        code = main(
            [
                "traffic", EXAMPLE,
                "--clients", "25", "--duration", "250", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "awacs"
        assert payload["requests"] == 25
        assert payload["spec"]["clients"] == 25
        assert payload["latency"]["p99"] >= payload["latency"]["p50"]

    def test_scenario_traffic_block_is_the_baseline(self, tmp_path, capsys):
        scenario = Scenario.from_file(EXAMPLE)
        from dataclasses import replace

        scenario = replace(
            scenario,
            traffic=TrafficSpec(
                clients=15, duration=150, arrival="deterministic", seed=5
            ),
        )
        path = write_scenario(tmp_path, scenario)
        code = main(["traffic", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "15 clients over 150 slots" in out
        assert "deterministic arrivals" in out

    def test_flags_override_the_block(self, tmp_path, capsys):
        scenario = Scenario.from_file(EXAMPLE)
        from dataclasses import replace

        scenario = replace(
            scenario, traffic=TrafficSpec(clients=15, duration=150)
        )
        path = write_scenario(tmp_path, scenario)
        code = main(["traffic", path, "--clients", "33"])
        out = capsys.readouterr().out
        assert code == 0
        assert "33 clients over 150 slots" in out

    def test_workers_match_serial_json(self, capsys):
        args = [
            "traffic", EXAMPLE,
            "--clients", "30", "--duration", "300", "--json",
        ]
        assert main(args) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(args + ["--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["workers"] == 2
        for key in ("requests", "completions", "aborts",
                    "deadline_misses", "latency", "requests_by_file"):
            assert serial[key] == parallel[key]

    def test_missing_file_is_clean_error(self, capsys):
        code = main(["traffic", "no-such-scenario.json"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_flag_value_is_clean_error(self, capsys):
        code = main(
            ["traffic", EXAMPLE, "--clients", "0"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_arrival_choice_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["traffic", EXAMPLE, "--arrival", "tidal"])
        assert excinfo.value.code == 2


class TestTemporalTrafficCommand:
    EXAMPLE = "examples/scenario_awacs_temporal.json"

    def test_report_includes_freshness(self, capsys):
        code = main(
            [
                "traffic", self.EXAMPLE,
                "--clients", "30", "--duration", "2000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "freshness : consistency" in out
        assert "torn" in out

    def test_json_includes_consistency_metrics(self, capsys):
        code = main(
            [
                "traffic", self.EXAMPLE,
                "--clients", "25", "--duration", "2000", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        temporal = payload["temporal"]
        assert temporal is not None
        assert 0.0 <= temporal["consistency_rate"] <= 1.0
        assert temporal["item_reads"] > 0
        assert temporal["age"]["worst"] >= temporal["age"]["p50"]
        assert 0.0 <= payload["deadline_miss_rate"] <= 1.0

    def test_workers_match_serial_json(self, capsys):
        args = [
            "traffic", self.EXAMPLE,
            "--clients", "30", "--duration", "2000", "--json",
        ]
        assert main(args) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(args + ["--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        for key in ("requests", "completions", "aborts",
                    "deadline_misses", "deadline_miss_rate", "latency",
                    "temporal", "requests_by_file"):
            assert serial[key] == parallel[key]
