"""Tests for the declarative Scenario specification."""

import json

import pytest

from repro.api import FaultSpec, Scenario, WorkloadSpec
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.ida.aida import RedundancyPolicy
from repro.sim.faults import (
    AdversarialFaults,
    BernoulliFaults,
    BurstFaults,
    NoFaults,
)
from repro.errors import SpecificationError


def regular_scenario(**overrides) -> Scenario:
    params = dict(
        name="demo",
        files=(
            FileSpec("pos", 4, 2, fault_budget=2),
            FileSpec("map", 6, 5, fault_budget=1),
        ),
        faults=FaultSpec(kind="bernoulli", probability=0.1, seed=3),
        workload=WorkloadSpec(requests=30, horizon=150, zipf_skew=1.0, seed=5),
        delay_errors=1,
    )
    params.update(overrides)
    return Scenario(**params)


class TestFaultSpec:
    @pytest.mark.parametrize(
        "spec, model_type",
        [
            (FaultSpec(), NoFaults),
            (FaultSpec(kind="bernoulli", probability=0.2), BernoulliFaults),
            (FaultSpec(kind="burst", p_enter=0.1, p_exit=0.5), BurstFaults),
            (
                FaultSpec(kind="adversarial", lost_slots=(1, 5)),
                AdversarialFaults,
            ),
        ],
    )
    def test_build_dispatch(self, spec, model_type):
        assert isinstance(spec.build(), model_type)

    def test_round_trip(self):
        spec = FaultSpec(kind="burst", p_enter=0.05, p_exit=0.3, seed=9)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_only_active_parameters(self):
        assert set(FaultSpec().to_dict()) == {"kind"}
        assert "p_enter" not in FaultSpec(
            kind="bernoulli", probability=0.5
        ).to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError, match="fault kind"):
            FaultSpec(kind="cosmic-rays")

    def test_bad_probability_rejected_eagerly(self):
        with pytest.raises(SpecificationError):
            FaultSpec(kind="bernoulli", probability=1.5)

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecificationError, match="unknown keys"):
            FaultSpec.from_dict({"kind": "none", "probabilty": 0.1})

    def test_non_iterable_lost_slots_rejected_from_dict(self):
        with pytest.raises(SpecificationError, match="lost_slots"):
            FaultSpec.from_dict({"kind": "adversarial", "lost_slots": 5})


class TestWorkloadSpec:
    def test_round_trip(self):
        spec = WorkloadSpec(requests=10, horizon=50, zipf_skew=0.5, seed=2)
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"requests": 0},
            {"horizon": 0},
            {"zipf_skew": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SpecificationError):
            WorkloadSpec(**kwargs)


class TestScenarioValidation:
    def test_empty_files_rejected(self):
        with pytest.raises(SpecificationError, match="at least one file"):
            Scenario(name="x", files=())

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError, match="name"):
            Scenario(name="", files=(FileSpec("a", 1, 2),))

    def test_mixed_models_rejected(self):
        with pytest.raises(SpecificationError, match="mix"):
            Scenario(
                name="x",
                files=(
                    FileSpec("a", 1, 2),
                    GeneralizedFileSpec("b", 1, (4,)),
                ),
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecificationError, match="duplicate"):
            Scenario(
                name="x",
                files=(FileSpec("a", 1, 2), FileSpec("a", 2, 4)),
            )

    def test_bandwidth_on_generalized_rejected(self):
        with pytest.raises(SpecificationError, match="bandwidth"):
            Scenario(
                name="x",
                files=(GeneralizedFileSpec("a", 1, (4,)),),
                bandwidth=3,
            )

    def test_mode_requires_redundancy(self):
        with pytest.raises(SpecificationError, match="together"):
            regular_scenario(mode="combat")

    def test_redundancy_requires_mode(self):
        with pytest.raises(SpecificationError, match="together"):
            regular_scenario(
                redundancy=RedundancyPolicy({"combat": {"pos": 1}})
            )

    def test_redundancy_on_generalized_rejected(self):
        with pytest.raises(SpecificationError, match="regular files"):
            Scenario(
                name="x",
                files=(GeneralizedFileSpec("a", 1, (4,)),),
                mode="combat",
                redundancy=RedundancyPolicy({"combat": {"a": 1}}),
            )

    def test_unknown_policy_string_rejected(self):
        with pytest.raises(SpecificationError, match="policy"):
            regular_scenario(scheduler_policy="fastest")

    def test_unknown_policy_name_rejected(self):
        with pytest.raises(SpecificationError, match="unknown scheduler"):
            regular_scenario(scheduler_policy=("greedy", "nope"))

    def test_negative_delay_errors_rejected(self):
        with pytest.raises(SpecificationError, match="delay_errors"):
            regular_scenario(delay_errors=-1)

    def test_bad_block_size_rejected(self):
        with pytest.raises(SpecificationError, match="block_size"):
            regular_scenario(block_size=0)


class TestRoundTrip:
    def test_dict_round_trip_regular(self):
        scenario = regular_scenario(
            mode="combat",
            redundancy=RedundancyPolicy(
                {"combat": {"pos": 3}}, default=1
            ),
            scheduler_policy=("greedy", "exact"),
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_dict_round_trip_generalized(self):
        scenario = Scenario(
            name="gen",
            files=(
                GeneralizedFileSpec("F", 2, (5, 6, 6)),
                GeneralizedFileSpec("H", 1, (9, 12)),
            ),
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_json_round_trip(self):
        scenario = regular_scenario()
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario

    def test_to_dict_is_json_serializable(self):
        json.dumps(regular_scenario().to_dict())

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "scenario.json"
        scenario = regular_scenario()
        scenario.save(path)
        assert Scenario.from_file(path) == scenario

    def test_missing_file_is_specification_error(self, tmp_path):
        with pytest.raises(SpecificationError, match="cannot read"):
            Scenario.from_file(tmp_path / "absent.json")

    def test_invalid_json_is_specification_error(self):
        with pytest.raises(SpecificationError, match="invalid scenario"):
            Scenario.from_json("{not json")

    def test_unknown_scenario_keys_rejected(self):
        payload = regular_scenario().to_dict()
        payload["bandwith"] = 4
        with pytest.raises(SpecificationError, match="unknown keys"):
            Scenario.from_dict(payload)

    def test_missing_required_file_keys_rejected(self):
        with pytest.raises(SpecificationError, match="missing required"):
            Scenario.from_dict(
                {"name": "x", "files": [{"name": "a", "blocks": 2}]}
            )

    def test_non_iterable_latency_vector_rejected(self):
        with pytest.raises(SpecificationError, match="latency_vector"):
            Scenario.from_dict(
                {"name": "x", "files": [{"name": "a", "blocks": 2,
                                         "latency_vector": 5}]}
            )

    def test_non_object_file_entry_rejected(self):
        with pytest.raises(SpecificationError, match="must be an object"):
            Scenario.from_dict({"name": "x", "files": ["a:2:4"]})

    def test_non_list_files_rejected(self):
        with pytest.raises(SpecificationError, match="list of file"):
            Scenario.from_dict({"name": "x", "files": 42})

    def test_data_payload_round_trips(self):
        scenario = Scenario(
            name="payload",
            files=(FileSpec("a", 2, 4, data=b"\x00secret\xff"),),
        )
        restored = Scenario.from_json(scenario.to_json())
        assert restored.files[0].data == b"\x00secret\xff"

    def test_bad_base64_data_rejected(self):
        with pytest.raises(SpecificationError, match="base64"):
            Scenario.from_dict(
                {"name": "x", "files": [{"name": "a", "blocks": 2,
                                         "latency": 4, "data": "%%%"}]}
            )

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"faults": 42}, "fault spec must be an object"),
            ({"workload": "lots"}, "workload spec must be an object"),
            ({"redundancy": 7}, "redundancy must be an object"),
            (
                {"redundancy": {"budgets": "oops", "default": 0}},
                "budgets must be an object",
            ),
            (
                {"redundancy": {"budgets": {"combat": {"a": "3"}},
                                "default": 0}},
                "integer fault budget",
            ),
        ],
    )
    def test_non_object_nested_payloads_rejected(self, payload, match):
        base = {"name": "x",
                "files": [{"name": "a", "blocks": 2, "latency": 4}]}
        with pytest.raises(SpecificationError, match=match):
            Scenario.from_dict({**base, **payload})

    def test_defaults_applied_for_omitted_keys(self):
        scenario = Scenario.from_dict(
            {"name": "tiny", "files": [{"name": "a", "blocks": 1,
                                        "latency": 2}]}
        )
        assert scenario.block_size == 64
        assert scenario.scheduler_policy == "auto"
        assert scenario.workload is None
        assert scenario.faults == FaultSpec()

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"block_size": None}, "block_size must be an integer"),
            ({"delay_errors": "two"}, "delay_errors must be an integer"),
            ({"scheduler_policy": 3}, "scheduler policy must be"),
            ({"workload": {"requests": None, "horizon": 10}},
             "requests must be an integer"),
            ({"faults": {"kind": "bernoulli", "probability": None}},
             "probability must be a number"),
        ],
    )
    def test_null_and_wrong_typed_scalars_rejected(self, payload, match):
        base = {"name": "x",
                "files": [{"name": "a", "blocks": 2, "latency": 4}]}
        with pytest.raises(SpecificationError, match=match):
            Scenario.from_dict({**base, **payload})

    def test_null_scheduler_policy_means_auto(self):
        scenario = Scenario.from_dict(
            {"name": "x", "scheduler_policy": None,
             "files": [{"name": "a", "blocks": 2, "latency": 4}]}
        )
        assert scenario.scheduler_policy == "auto"


class TestEffectiveFiles:
    def test_redundancy_overrides_budgets(self):
        scenario = regular_scenario(
            mode="combat",
            redundancy=RedundancyPolicy(
                {"combat": {"pos": 3}}, default=0
            ),
        )
        budgets = {
            spec.name: spec.fault_budget
            for spec in scenario.effective_files
        }
        assert budgets == {"pos": 3, "map": 0}

    def test_without_redundancy_files_unchanged(self):
        scenario = regular_scenario()
        assert scenario.effective_files == scenario.files
