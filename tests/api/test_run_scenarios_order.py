"""Regression test: run_scenarios returns results in input order.

The parallel path binds each result's position at submit time, so a
cheap scenario finishing long before an expensive one cannot surface
out of place.
"""

from repro.bdisk.file import FileSpec
from repro.api import Scenario, WorkloadSpec, run_scenarios


def cheap(name):
    return Scenario(
        name=name,
        files=[FileSpec("pos", 2, 4)],
    )


def expensive(name):
    # A heavy workload makes this scenario finish well after the cheap
    # ones on any worker layout.
    return Scenario(
        name=name,
        files=[
            FileSpec("pos", 4, 2, fault_budget=2),
            FileSpec("map", 6, 5, fault_budget=1),
            FileSpec("terrain", 8, 16),
        ],
        workload=WorkloadSpec(requests=4000, horizon=4000, seed=1),
        delay_errors=1,
    )


class TestInputOrder:
    def test_slow_first_scenario_does_not_reorder_results(self):
        scenarios = [
            expensive("slow-0"),
            cheap("fast-1"),
            cheap("fast-2"),
            expensive("slow-3"),
            cheap("fast-4"),
        ]
        results = run_scenarios(scenarios, max_workers=3)
        assert [r.scenario.name for r in results] == [
            "slow-0", "fast-1", "fast-2", "slow-3", "fast-4",
        ]

    def test_parallel_order_matches_serial_order(self):
        scenarios = [expensive("a"), cheap("b"), expensive("c"), cheap("d")]
        serial = run_scenarios(scenarios)
        parallel = run_scenarios(scenarios, max_workers=4)
        assert [r.scenario.name for r in serial] \
            == [r.scenario.name for r in parallel] \
            == ["a", "b", "c", "d"]
