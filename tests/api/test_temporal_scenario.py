"""Tests for temporal (rtdb) scenarios through the Scenario/engine API."""

import dataclasses
import json

import pytest

from repro.errors import SpecificationError
from repro.api import (
    BroadcastEngine,
    FaultSpec,
    Scenario,
    TemporalItemSpec,
    TemporalSpec,
    TrafficSpec,
    TransactionSpec,
    run_scenario,
)


def make_temporal(**overrides):
    payload = dict(
        slot_ms=10,
        items=(
            TemporalItemSpec(
                "air", blocks=2, velocity_kmh=900, accuracy_m=100,
                criticality={"combat": 4, "patrol": 2},
            ),
            TemporalItemSpec(
                "map", blocks=3, max_age_ms=6000,
                criticality={"combat": 3},
            ),
        ),
        update_periods={"air": 24, "map": 300},
        mode="combat",
        modes=("combat", "patrol"),
    )
    payload.update(overrides)
    return TemporalSpec(**payload)


def make_scenario(temporal=None, **overrides):
    return Scenario(
        name="temporal-test",
        temporal=temporal if temporal is not None else make_temporal(),
        **overrides,
    )


class TestTemporalScenario:
    def test_catalogue_is_derived(self):
        scenario = make_scenario()
        assert [f.name for f in scenario.files] == ["air", "map"]
        air = scenario.files[0]
        assert (air.blocks, air.latency, air.fault_budget) == (2, 40, 4)

    def test_files_and_temporal_are_mutually_exclusive(self):
        from repro.bdisk.file import FileSpec

        with pytest.raises(SpecificationError):
            Scenario(
                name="bad",
                files=(FileSpec("x", 1, 5),),
                temporal=make_temporal(),
            )

    def test_dataclasses_replace_keeps_working(self):
        scenario = make_scenario()
        bumped = dataclasses.replace(
            scenario, traffic=TrafficSpec(clients=5, duration=50)
        )
        assert bumped.files == scenario.files

    def test_bandwidth_mode_redundancy_rejected(self):
        with pytest.raises(SpecificationError):
            make_scenario(bandwidth=2)
        with pytest.raises(SpecificationError):
            from repro.ida.aida import RedundancyPolicy

            make_scenario(
                mode="combat",
                redundancy=RedundancyPolicy({"combat": {"air": 1}}),
            )

    def test_json_round_trip(self):
        scenario = make_scenario(
            temporal=make_temporal(
                transactions=(
                    TransactionSpec("engage", ["air", "map"], 700),
                ),
            ),
            traffic=TrafficSpec(clients=10, duration=100, seed=3),
            faults=FaultSpec(kind="bernoulli", probability=0.02, seed=9),
        )
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        # The serialized payload carries the temporal block, not the
        # derived files (they are re-derived on load).
        payload = json.loads(scenario.to_json())
        assert payload["files"] == []
        assert payload["temporal"]["mode"] == "combat"

    def test_design_fingerprint_ignores_runtime_knobs(self):
        """Update periods and transaction mixes are runtime knobs: a
        sweep over them must stay one solve-cache entry."""
        base = make_scenario()
        slow = make_scenario(
            temporal=make_temporal(
                update_periods={"air": 1000, "map": 2000}
            )
        )
        mixed = make_scenario(
            temporal=make_temporal(
                transactions=(
                    TransactionSpec("engage", ["air", "map"], 700),
                ),
            )
        )
        assert slow.design_fingerprint() == base.design_fingerprint()
        assert mixed.design_fingerprint() == base.design_fingerprint()

    def test_design_fingerprint_tracks_the_mode(self):
        base = make_scenario()
        patrol = make_scenario(temporal=make_temporal(mode="patrol"))
        assert patrol.design_fingerprint() != base.design_fingerprint()

    def test_design_fingerprint_tracks_slot_duration(self):
        base = make_scenario()
        finer = make_scenario(temporal=make_temporal(slot_ms=5))
        assert finer.design_fingerprint() != base.design_fingerprint()

    def test_designs_at_bandwidth_one(self):
        result = run_scenario(make_scenario())
        assert result.stats.bandwidth == 1
        # Budgets are slots: deadlines equal the file latencies.
        engine = BroadcastEngine(make_scenario())
        deadlines = engine._deadlines(engine.design())
        assert deadlines == {"air": 40, "map": 600}

    def test_summary_reports_the_temporal_layer(self):
        result = run_scenario(make_scenario())
        assert "temporal  :" in result.summary()
        assert "mode combat" in result.summary()


class TestTemporalTrafficThroughEngine:
    def _scenario(self, **traffic_overrides):
        traffic = dict(
            clients=40, duration=600, requests_per_client=2, seed=11
        )
        traffic.update(traffic_overrides)
        return make_scenario(
            temporal=make_temporal(
                transactions=(
                    TransactionSpec(
                        "engage", ["air", "map"], 700, weight=3.0
                    ),
                    TransactionSpec("peek", ["air"], 60),
                ),
            ),
            traffic=TrafficSpec(**traffic),
        )

    def test_traffic_reports_consistency_metrics(self):
        result = BroadcastEngine(self._scenario()).run()
        traffic = result.traffic
        assert traffic is not None
        assert traffic.metrics.item_reads > 0
        payload = traffic.to_dict()
        assert payload["temporal"] is not None
        assert 0.0 <= payload["temporal"]["consistency_rate"] <= 1.0
        assert payload["deadline_miss_rate"] == pytest.approx(
            traffic.metrics.deadline_misses / traffic.metrics.requests
        )
        assert "freshness" in traffic.report()
        # Requests are drawn from the named transaction mix.
        assert set(traffic.metrics.requests_by_file) <= {"engage", "peek"}

    def test_serial_and_sharded_runs_are_bit_identical(self):
        scenario = self._scenario(clients=60)
        serial = BroadcastEngine(scenario).run_traffic(max_workers=1)
        sharded = BroadcastEngine(scenario).run_traffic(max_workers=3)
        a, b = serial.metrics, sharded.metrics
        assert a.counts == b.counts
        assert a.ages == b.ages
        assert (
            a.requests, a.completions, a.aborts, a.deadline_misses,
            a.item_reads, a.stale_reads, a.torn_discards, a.age_sum,
            a.worst_age,
        ) == (
            b.requests, b.completions, b.aborts, b.deadline_misses,
            b.item_reads, b.stale_reads, b.torn_discards, b.age_sum,
            b.worst_age,
        )
        assert a.requests_by_file == b.requests_by_file
        assert serial.to_dict()["temporal"] == sharded.to_dict()["temporal"]

    def test_client_cache_rejected_for_temporal_runs(self):
        scenario = self._scenario(cache="lru")
        with pytest.raises(SpecificationError):
            BroadcastEngine(scenario).run_traffic()

    def test_faulty_channel_still_merges_exactly(self):
        scenario = dataclasses.replace(
            self._scenario(clients=30),
            files=(),
            faults=FaultSpec(kind="bernoulli", probability=0.1, seed=5),
        )
        serial = BroadcastEngine(scenario).run_traffic(max_workers=1)
        sharded = BroadcastEngine(scenario).run_traffic(max_workers=4)
        assert serial.metrics.counts == sharded.metrics.counts
        assert serial.metrics.ages == sharded.metrics.ages
        assert (
            serial.metrics.torn_discards == sharded.metrics.torn_discards
        )
