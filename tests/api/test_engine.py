"""End-to-end tests for the BroadcastEngine facade."""

import pytest

from repro.api import (
    BroadcastEngine,
    FaultSpec,
    Scenario,
    ScenarioResult,
    WorkloadSpec,
    run_scenario,
    run_scenarios,
)
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.errors import SpecificationError


def small_scenario(**overrides) -> Scenario:
    params = dict(
        name="small",
        files=(
            FileSpec("pos", 2, 2, fault_budget=1),
            FileSpec("map", 3, 6),
        ),
        workload=WorkloadSpec(requests=25, horizon=120, seed=7),
        delay_errors=1,
    )
    params.update(overrides)
    return Scenario(**params)


class TestEngineRegular:
    def test_full_pipeline(self):
        result = BroadcastEngine(small_scenario()).run()
        assert isinstance(result, ScenarioResult)
        # Design: bandwidth plan present, program verified on build.
        assert result.design.bandwidth_plan is not None
        assert result.stats.bandwidth == result.design.bandwidth_plan.bandwidth
        assert result.stats.broadcast_period == result.program.broadcast_period
        assert result.stats.method == result.report.method
        # Simulation ran the whole workload with no failed retrievals.
        assert len(result.simulation.requests) == 25
        assert result.simulation.summary.count == 25
        # Fault-free channel + verified program => no deadline misses.
        assert result.simulation.deadline_miss_rate == 0.0
        # Delay table covers every (file, errors<=1) pair.
        assert {(e.file, e.errors) for e in result.delay_table} == {
            ("pos", 0), ("pos", 1), ("map", 0), ("map", 1),
        }
        # Zero errors never adds delay.
        assert all(e.delay == 0 for e in result.delay_table if e.errors == 0)
        # Every file's payload survived dispersal -> channel -> rebuild.
        assert result.payload_checks == {"pos": True, "map": True}

    def test_design_cached(self):
        engine = BroadcastEngine(small_scenario())
        assert engine.design() is engine.design()

    def test_no_workload_skips_simulation(self):
        result = run_scenario(small_scenario(workload=None))
        assert result.simulation is None

    def test_no_delay_errors_skips_table(self):
        result = run_scenario(small_scenario(delay_errors=None))
        assert result.delay_table == ()

    def test_forced_bandwidth_respected(self):
        scenario = small_scenario(bandwidth=3, delay_errors=None)
        result = run_scenario(scenario)
        assert result.stats.bandwidth == 3

    def test_faulty_channel_still_meets_budgeted_deadlines(self):
        scenario = small_scenario(
            faults=FaultSpec(kind="adversarial", lost_slots=(3, 10)),
            delay_errors=None,
        )
        result = run_scenario(scenario)
        assert result.simulation.summary.count == 25

    def test_explicit_policy_changes_method(self):
        result = run_scenario(
            small_scenario(scheduler_policy=("greedy",), delay_errors=None)
        )
        assert result.stats.method == "greedy"
        assert result.stats.attempts == (("greedy", "ok"),)

    def test_summary_and_dict(self):
        result = run_scenario(small_scenario())
        text = result.summary()
        assert "scenario  : small" in text
        assert "deadline miss rate" in text
        record = result.to_dict()
        assert record["stats"]["method"] == result.stats.method
        assert record["simulation"]["requests"] == 25
        assert len(record["delay_table"]) == 4

    def test_engine_rejects_non_scenario(self):
        with pytest.raises(SpecificationError, match="expects a Scenario"):
            BroadcastEngine({"name": "x"})

    def test_block_size_flows_into_payload_checks(self):
        result = run_scenario(
            small_scenario(block_size=256, delay_errors=None)
        )
        assert result.payload_checks == {"pos": True, "map": True}

    def test_all_loss_channel_yields_null_latency_json(self):
        import json

        result = run_scenario(
            small_scenario(
                faults=FaultSpec(kind="bernoulli", probability=1.0),
                delay_errors=None,
            )
        )
        record = result.to_dict()
        # Nothing completed: stats are null (never bare Infinity, which
        # strict JSON consumers reject), and no payload check is possible.
        assert record["simulation"]["latency"]["mean"] is None
        assert record["simulation"]["payload_checks"] == {}
        assert "Infinity" not in json.dumps(record)
        assert result.simulation.deadline_miss_rate == 1.0

    def test_unbounded_delay_rows_survive_json_round_trip(self):
        import json

        # Regression: null-ing non-finite stats used to make an
        # unbounded-delay row indistinguishable from "not measured".
        # The bounded flag now carries that bit explicitly.
        unbounded = run_scenario(
            small_scenario(
                faults=FaultSpec(kind="bernoulli", probability=1.0),
                delay_errors=None,
            )
        ).to_dict()
        bounded = run_scenario(
            small_scenario(delay_errors=None)
        ).to_dict()
        after = json.loads(json.dumps(unbounded))
        assert after["simulation"]["latency"]["bounded"] is False
        assert after["simulation"]["latency"]["p99"] is None
        after = json.loads(json.dumps(bounded))
        assert after["simulation"]["latency"]["bounded"] is True
        assert after["simulation"]["latency"]["p99"] is not None


class TestDesignFingerprintAndInjection:
    def test_fingerprint_ignores_downstream_knobs(self):
        base = small_scenario()
        varied = [
            small_scenario(
                faults=FaultSpec(kind="bernoulli", probability=0.2)
            ),
            small_scenario(workload=WorkloadSpec(requests=9, horizon=50)),
            small_scenario(workload=None),
            small_scenario(block_size=512),
            small_scenario(delay_errors=None),
            small_scenario(name="renamed"),
        ]
        for scenario in varied:
            assert (
                scenario.design_fingerprint() == base.design_fingerprint()
            )

    def test_fingerprint_tracks_design_inputs(self):
        base = small_scenario()
        assert (
            small_scenario(bandwidth=4).design_fingerprint()
            != base.design_fingerprint()
        )
        assert (
            small_scenario(
                scheduler_policy=("greedy",)
            ).design_fingerprint()
            != base.design_fingerprint()
        )
        assert (
            small_scenario(
                files=(
                    FileSpec("pos", 2, 2, fault_budget=1),
                    FileSpec("map", 3, 7),
                )
            ).design_fingerprint()
            != base.design_fingerprint()
        )

    def test_injected_design_is_reused_and_equivalent(self):
        fresh = BroadcastEngine(small_scenario())
        design = fresh.design()
        injected = BroadcastEngine(small_scenario(), design=design)
        assert injected.design() is design
        assert (
            injected.run().to_dict()
            == BroadcastEngine(small_scenario()).run().to_dict()
        )

    def test_injected_design_must_be_a_program_design(self):
        with pytest.raises(SpecificationError, match="ProgramDesign"):
            BroadcastEngine(small_scenario(), design="nope")


class TestEngineGeneralized:
    def test_full_pipeline(self):
        scenario = Scenario(
            name="gen",
            files=(
                GeneralizedFileSpec("F", 2, (5, 6, 6)),
                GeneralizedFileSpec("H", 1, (9, 12)),
            ),
            workload=WorkloadSpec(requests=15, horizon=60, seed=3),
        )
        result = run_scenario(scenario)
        assert result.design.conjunct is not None
        assert result.stats.bandwidth is None
        assert result.simulation.deadline_miss_rate == 0.0
        # Deadlines use the weakest promise d(r).
        deadlines = {r.file: r.deadline for r in result.simulation.requests}
        assert all(
            deadlines[name] in {6, 12} for name in deadlines
        )


class TestBatch:
    def test_run_scenarios_order_and_dict_input(self):
        results = run_scenarios(
            [
                small_scenario(delay_errors=None),
                small_scenario(name="second", delay_errors=None).to_dict(),
            ]
        )
        assert [r.scenario.name for r in results] == ["small", "second"]

    def test_parallel_matches_serial(self):
        scenarios = [
            small_scenario(delay_errors=None),
            small_scenario(name="second", delay_errors=None),
            small_scenario(name="third", delay_errors=None),
        ]
        serial = run_scenarios(scenarios)
        parallel = run_scenarios(scenarios, max_workers=2)
        assert [r.scenario.name for r in parallel] == [
            "small", "second", "third",
        ]
        assert [r.to_dict() for r in parallel] == [
            r.to_dict() for r in serial
        ]

    def test_single_worker_stays_in_process(self):
        results = run_scenarios(
            [small_scenario(delay_errors=None)], max_workers=1
        )
        assert results[0].scenario.name == "small"

    def test_bad_max_workers_rejected(self):
        for bad in (0, -1, 1.5, True):
            with pytest.raises(SpecificationError):
                run_scenarios(
                    [small_scenario(delay_errors=None)], max_workers=bad
                )

    def test_invalid_dict_fails_before_dispatch(self):
        with pytest.raises(SpecificationError):
            run_scenarios(
                [{"name": "broken", "files": []}], max_workers=4
            )

    def test_seeded_runs_reproduce(self):
        first = run_scenario(small_scenario(delay_errors=None))
        second = run_scenario(small_scenario(delay_errors=None))
        assert first.simulation.requests == second.simulation.requests
        assert first.simulation.summary == second.simulation.summary
