"""Traffic through the declarative API: TrafficSpec on Scenario,
BroadcastEngine.run_traffic, and batch sweeps."""

import json

import pytest

from repro.errors import SpecificationError
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.api import (
    BroadcastEngine,
    FaultSpec,
    Scenario,
    TrafficSpec,
    run_scenario,
    run_scenarios,
)


def make_scenario(**kwargs):
    defaults = dict(
        name="traffic-test",
        files=[
            FileSpec("pos", 4, 2, fault_budget=2),
            FileSpec("map", 6, 5, fault_budget=1),
        ],
        traffic=TrafficSpec(clients=50, duration=500, seed=3),
    )
    defaults.update(kwargs)
    return Scenario(**defaults)


class TestSpecRoundTrip:
    def test_scenario_json_round_trip(self):
        scenario = make_scenario(
            traffic=TrafficSpec(
                clients=200, duration=4000, arrival="bursty",
                popularity="hotcold", hot_fraction=0.25, hot_weight=0.75,
                bursts=4, burst_width=100, requests_per_client=3,
                think_time=12, cache="pix", cache_capacity=2, seed=9,
            )
        )
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario
        assert again.traffic == scenario.traffic

    def test_inactive_parameters_are_not_serialized(self):
        payload = TrafficSpec().to_dict()  # poisson + zipf defaults
        assert "bursts" not in payload
        assert "hot_fraction" not in payload
        assert "cache" not in payload
        assert payload["zipf_skew"] == 1.0

    def test_scenario_without_traffic_round_trips_as_null(self):
        scenario = make_scenario(traffic=None)
        payload = scenario.to_dict()
        assert payload["traffic"] is None
        assert Scenario.from_dict(payload).traffic is None

    def test_unknown_traffic_key_rejected(self):
        payload = make_scenario().to_dict()
        payload["traffic"]["surprise"] = 1
        with pytest.raises(SpecificationError):
            Scenario.from_dict(payload)

    @pytest.mark.parametrize(
        "bad",
        [
            {"clients": 0},
            {"duration": 0},
            {"arrival": "tidal"},
            {"popularity": "lava"},
            {"zipf_skew": -1.0},
            {"hot_fraction": 0.0},
            {"hot_weight": 2.0},
            {"requests_per_client": 0},
            {"think_time": -1},
            {"cache": "fifo"},
            {"cache_capacity": 0},
            {"max_slots": 0},
            {"clients": True},
        ],
    )
    def test_invalid_values_rejected_eagerly(self, bad):
        with pytest.raises(SpecificationError):
            TrafficSpec(**bad)


class TestEngine:
    def test_run_traffic_produces_a_result(self):
        engine = BroadcastEngine(make_scenario())
        result = engine.run_traffic()
        assert result is not None
        assert result.requests == 50
        assert result.aborts == 0

    def test_run_includes_traffic(self):
        outcome = run_scenario(make_scenario())
        assert outcome.traffic is not None
        assert outcome.traffic.requests == 50
        assert "traffic" in outcome.summary()
        payload = outcome.to_dict()
        assert payload["traffic"]["requests"] == 50
        json.dumps(payload)

    def test_no_traffic_block_skips_the_phase(self):
        outcome = run_scenario(make_scenario(traffic=None))
        assert outcome.traffic is None
        assert outcome.to_dict()["traffic"] is None

    def test_traffic_respects_the_fault_channel(self):
        clean = BroadcastEngine(make_scenario()).run_traffic()
        noisy = BroadcastEngine(
            make_scenario(
                faults=FaultSpec(
                    kind="bernoulli", probability=0.3, seed=2
                )
            )
        ).run_traffic()
        assert noisy.summary.mean > clean.summary.mean

    def test_generalized_files_use_vector_deadlines(self):
        scenario = Scenario(
            name="generalized-traffic",
            files=[
                GeneralizedFileSpec("F", 2, (5, 6, 6)),
                GeneralizedFileSpec("H", 1, (9, 12)),
            ],
            traffic=TrafficSpec(clients=20, duration=200, seed=1),
        )
        result = BroadcastEngine(scenario).run_traffic(trace=True)
        assert result.requests == 20
        deadlines = {"F": 6, "H": 12}
        for record in result.trace:
            assert record.deadline == deadlines[record.file]

    def test_engine_parallel_traffic_matches_serial(self):
        scenario = make_scenario(
            traffic=TrafficSpec(
                clients=60, duration=600, requests_per_client=2, seed=4
            )
        )
        serial = BroadcastEngine(scenario).run_traffic(trace=True)
        parallel = BroadcastEngine(scenario).run_traffic(
            max_workers=2, trace=True
        )
        assert serial.trace == parallel.trace
        assert serial.summary == parallel.summary

    def test_batch_sweep_carries_traffic_results(self):
        results = run_scenarios(
            [make_scenario(), make_scenario(name="second")],
            max_workers=2,
        )
        assert [r.scenario.name for r in results] \
            == ["traffic-test", "second"]
        assert all(r.traffic is not None for r in results)
