"""ChannelSpec plumbing through Scenario, fingerprints, and the engine."""

import json
from pathlib import Path

import pytest

from repro.errors import SpecificationError
from repro.bdisk.builder import ProgramDesign
from repro.bdisk.multichannel import MultiChannelDesign
from repro.api.engine import BroadcastEngine, run_scenario
from repro.api.scenario import ChannelSpec, Scenario

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

#: Pinned pre-multichannel fingerprint: adding the channels feature must
#: not move the fingerprint of any scenario that does not use it.
AWACS_FINGERPRINT = (
    "1f72cdc5b3d66310e94042cebcb9459edb1658507784488b901d1c549f43b7fc"
)


def base_payload(**extra):
    payload = {
        "name": "chan-test",
        "block_size": 64,
        "files": [
            {"name": f"f{i}", "blocks": 2 + (i % 2), "latency": 12 + 4 * i}
            for i in range(6)
        ],
    }
    payload.update(extra)
    return payload


class TestChannelSpecRoundTrip:
    def test_json_round_trip_all_fields(self):
        spec = ChannelSpec(
            count=3,
            assignment="explicit",
            explicit={"a": (0,), "b": (1, 2)},
            partitioner="first-fit",
            fault_budgets=(0, 1, 2),
            tuning_cost=2,
            quorum=2,
        )
        clone = ChannelSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert clone == spec

    def test_partial_dict_fills_defaults(self):
        spec = ChannelSpec.from_dict({"count": 2})
        assert spec == ChannelSpec(count=2)

    def test_runtime_knobs_are_not_design_payload(self):
        cheap = ChannelSpec(count=2, tuning_cost=0, quorum=1)
        dear = ChannelSpec(count=2, tuning_cost=9, quorum=2)
        assert cheap.design_payload() == dear.design_payload()

    def test_design_payload_tracks_topology(self):
        assert (
            ChannelSpec(count=2).design_payload()
            != ChannelSpec(count=3).design_payload()
        )
        assert (
            ChannelSpec(count=2).design_payload()
            != ChannelSpec(count=2, assignment="replicated").design_payload()
        )


class TestScenarioValidation:
    def test_striped_thinner_than_catalogue_rejected(self):
        with pytest.raises(SpecificationError, match="replicated"):
            Scenario.from_dict(base_payload(channels={"count": 7}))

    def test_explicit_unknown_file_rejected(self):
        with pytest.raises(SpecificationError, match="explicit"):
            Scenario.from_dict(
                base_payload(
                    channels={
                        "count": 2,
                        "assignment": "explicit",
                        "explicit": {"ghost": [0]},
                    }
                )
            )

    def test_quorum_must_fit_count(self):
        with pytest.raises(SpecificationError, match="quorum"):
            ChannelSpec(count=2, quorum=3)

    def test_channel_assignment_matches_design(self):
        scenario = Scenario.from_dict(
            base_payload(channels={"count": 2})
        )
        design = BroadcastEngine(scenario).design()
        assert scenario.channel_assignment() == dict(
            design.channel_set.assignment
        )

    def test_no_channels_means_empty_assignment(self):
        scenario = Scenario.from_dict(base_payload())
        assert scenario.channel_assignment() == {}


class TestFingerprint:
    def test_runtime_knob_sweeps_share_a_fingerprint(self):
        reference = Scenario.from_dict(
            base_payload(channels={"count": 2})
        ).design_fingerprint()
        for knobs in (
            {"tuning_cost": 5},
            {"quorum": 2, "assignment": "replicated"},
            {"tuning_cost": 3},
        ):
            if "assignment" in knobs:
                continue  # changes topology, not a runtime knob
            payload = base_payload(channels={"count": 2, **knobs})
            assert (
                Scenario.from_dict(payload).design_fingerprint()
                == reference
            ), knobs

    def test_topology_moves_the_fingerprint(self):
        base = Scenario.from_dict(
            base_payload(channels={"count": 2})
        ).design_fingerprint()
        for channels in (
            {"count": 3},
            {"count": 2, "assignment": "replicated"},
            {"count": 2, "partitioner": "round-robin"},
            {"count": 2, "fault_budgets": [0, 1]},
        ):
            other = Scenario.from_dict(
                base_payload(channels=channels)
            ).design_fingerprint()
            assert other != base, channels


class TestBackwardCompatibility:
    """Scenarios without a channels block behave exactly as before."""

    def example_payloads(self):
        for path in sorted(EXAMPLES.glob("scenario_*.json")):
            if path.name == "scenario_multichannel.json":
                continue  # the new multichannel worked example
            yield path.name, json.loads(path.read_text())

    def test_examples_load_without_channels(self):
        for name, payload in self.example_payloads():
            scenario = Scenario.from_dict(payload)
            assert scenario.channels is None, name
            assert "channels" not in scenario.to_dict(), name

    def test_examples_round_trip_identically(self):
        for name, payload in self.example_payloads():
            scenario = Scenario.from_dict(payload)
            again = Scenario.from_dict(scenario.to_dict())
            assert again.to_dict() == scenario.to_dict(), name
            assert (
                again.design_fingerprint()
                == scenario.design_fingerprint()
            ), name

    def test_awacs_fingerprint_is_pinned(self):
        payload = json.loads(
            (EXAMPLES / "scenario_awacs.json").read_text()
        )
        scenario = Scenario.from_dict(payload)
        assert scenario.design_fingerprint() == AWACS_FINGERPRINT

    def test_examples_design_single_channel(self):
        for name, payload in self.example_payloads():
            design = BroadcastEngine(Scenario.from_dict(payload)).design()
            assert isinstance(design, ProgramDesign), name
            assert not isinstance(design, MultiChannelDesign), name


class TestEngineMultichannel:
    def test_design_type_follows_channels(self):
        multi = BroadcastEngine(
            Scenario.from_dict(base_payload(channels={"count": 2}))
        ).design()
        assert isinstance(multi, MultiChannelDesign)
        single = BroadcastEngine(
            Scenario.from_dict(base_payload())
        ).design()
        assert isinstance(single, ProgramDesign)

    def test_injected_design_type_is_checked(self):
        plain = Scenario.from_dict(base_payload())
        multi = Scenario.from_dict(base_payload(channels={"count": 2}))
        plain_design = BroadcastEngine(plain).design()
        multi_design = BroadcastEngine(multi).design()
        with pytest.raises(SpecificationError):
            BroadcastEngine(plain, design=multi_design)
        with pytest.raises(SpecificationError):
            BroadcastEngine(multi, design=plain_design)

    def test_run_scenario_end_to_end(self):
        result = run_scenario(
            base_payload(
                channels={"count": 2, "tuning_cost": 1},
                delay_errors=1,
                workload={"requests": 30, "horizon": 150, "seed": 3},
            )
        )
        assert result.multichannel
        assert result.stats.channels is not None
        assert len(result.stats.channels) == 2
        assert result.simulation is not None
        assert result.payload_checks
        assert all(result.payload_checks.values())
        payload = json.loads(json.dumps(result.to_dict()))
        assert len(payload["stats"]["channels"]) == 2
        assert "channel 0" in result.summary()

    def test_delay_table_is_best_carrying_channel(self):
        from repro.sim.delay import worst_case_delay

        scenario = Scenario.from_dict(
            base_payload(channels={"count": 2}, delay_errors=1)
        )
        engine = BroadcastEngine(scenario)
        design = engine.design()
        channel_set = design.channel_set
        sizes = {spec.name: spec.blocks for spec in scenario.files}
        for entry in engine.delay_table():
            expected = min(
                worst_case_delay(
                    channel_set.programs[channel],
                    entry.file,
                    sizes[entry.file],
                    entry.errors,
                    need_distinct=True,
                )
                for channel in channel_set.channels_for(entry.file)
            )
            assert entry.delay == expected

    def test_k1_simulation_is_bit_identical(self):
        workload = {"requests": 50, "horizon": 200, "seed": 9}
        faults = {"kind": "bernoulli", "probability": 0.1, "seed": 4}
        plain = run_scenario(
            base_payload(workload=workload, faults=faults)
        ).simulation
        multi = run_scenario(
            base_payload(
                workload=workload, faults=faults, channels={"count": 1}
            )
        ).simulation
        assert multi.summary == plain.summary
        assert multi.deadline_misses == plain.deadline_misses
        for mine, theirs in zip(multi.retrievals, plain.retrievals):
            assert mine.completed == theirs.completed
            assert mine.latency == theirs.latency
            assert mine.finish_slot == theirs.finish_slot or (
                not theirs.completed and theirs.finish_slot is None
            )
