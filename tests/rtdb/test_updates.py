"""Tests for update dissemination and temporal consistency."""

import pytest

from repro.bdisk.flat import build_aida_flat_program
from repro.errors import SimulationError, SpecificationError
from repro.rtdb import updates
from repro.rtdb.updates import (
    UpdatingServer,
    consistency_rate,
    retrieve_versioned,
    versioned_horizon,
)
from repro.sim.client import default_horizon
from repro.sim.faults import BernoulliFaults


def make_program():
    return build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])


class TestUpdatingServer:
    def test_version_clock(self):
        server = UpdatingServer({"A": 10})
        assert server.version_at("A", 0) == 0
        assert server.version_at("A", 9) == 0
        assert server.version_at("A", 10) == 1
        assert server.write_slot("A", 3) == 30

    def test_validation(self):
        with pytest.raises(SpecificationError):
            UpdatingServer({"A": 0})

    def test_unknown_item(self):
        server = UpdatingServer({"A": 10})
        with pytest.raises(SimulationError):
            server.period("B")


class TestRetrieveVersioned:
    def test_slow_updates_no_tearing(self):
        """Updates slower than the retrieval never tear."""
        program = make_program()
        server = UpdatingServer({"A": 1_000, "B": 1_000})
        result = retrieve_versioned(program, server, "B", 3)
        assert result.completed
        assert result.version == 0
        assert result.torn_discards == 0

    def test_fast_updates_cause_tearing(self):
        """An update landing mid-retrieval discards stale blocks.

        With a 6-slot update period, at most two B-blocks of any version
        air before the next version lands, until the rotation aligns -
        the read tears twice and completes late on version 2."""
        program = make_program()
        server = UpdatingServer({"A": 6, "B": 6})
        result = retrieve_versioned(program, server, "B", 3)
        assert result.completed
        assert result.torn_discards > 0
        assert result.latency > 7  # slower than the fault-free 7

    def test_age_measured_from_version_write(self):
        program = make_program()
        server = UpdatingServer({"A": 8, "B": 8})
        result = retrieve_versioned(program, server, "B", 3)
        assert result.completed
        write = server.write_slot("B", result.version)
        assert result.age_at_completion == result.finish_slot - write

    def test_impossible_when_updates_beat_retrieval(self):
        """If every version dies before m blocks of it can air, the
        retrieval never completes - the feasibility cliff that makes
        the paper's latency budgeting necessary."""
        program = make_program()
        server = UpdatingServer({"A": 2, "B": 2})
        result = retrieve_versioned(
            program, server, "B", 3, max_slots=500
        )
        assert not result.completed
        assert result.torn_discards > 0

    def test_unknown_file_rejected(self):
        program = make_program()
        server = UpdatingServer({"A": 5})
        with pytest.raises(SimulationError):
            retrieve_versioned(program, server, "Z", 1)

    def test_faults_interact_with_versions(self):
        program = make_program()
        server = UpdatingServer({"A": 100, "B": 100})
        result = retrieve_versioned(
            program, server, "B", 3,
            faults=BernoulliFaults(0.2, seed=4),
        )
        assert result.completed


class TestDefaultHorizon:
    def test_bounded_for_long_periods(self):
        """The default horizon grows at most twofold in the period.

        The old convention ``(m + 2) * (cycle + period)`` walked
        billions of slots for a slow item; the derived bound caps the
        period's contribution at one plain-retrieval horizon.
        """
        program = make_program()
        base = default_horizon(program, 3)
        assert versioned_horizon(program, 3, 10**9) == 2 * base
        assert versioned_horizon(program, 3, 1) == base + 1

    def test_long_period_retrieval_is_cheap_and_complete(self):
        """A year-long update period must not cost a year-long walk."""
        program = make_program()
        server = UpdatingServer({"A": 10**9, "B": 10**9})
        result = retrieve_versioned(program, server, "B", 3)
        assert result.completed
        assert result.version == 0

    def test_fault_free_guarantee_within_two_cycles(self):
        """period >= cycle: fault-free retrievals finish in <= 2 cycles
        (the guarantee the default horizon is documented to cover)."""
        program = make_program()
        cycle = program.data_cycle_length
        server = UpdatingServer({"A": cycle, "B": cycle})
        for phase in range(cycle):
            result = retrieve_versioned(
                program, server, "B", 3, start=phase
            )
            assert result.completed
            assert result.latency <= 2 * cycle

    def test_budget_guard_raises_instead_of_walking(self, monkeypatch):
        program = make_program()
        server = UpdatingServer({"A": 10, "B": 10})
        monkeypatch.setattr(updates, "MAX_DEFAULT_HORIZON", 10)
        with pytest.raises(SimulationError) as excinfo:
            retrieve_versioned(program, server, "B", 3)
        assert "max_slots" in str(excinfo.value)
        # An explicit horizon is the caller's deliberate choice and is
        # honoured whatever the budget says.
        result = retrieve_versioned(
            program, server, "B", 3, max_slots=500
        )
        assert result.completed


class TestConsistencyRate:
    def test_generous_budget_always_fresh(self):
        program = make_program()
        server = UpdatingServer({"A": 64, "B": 64})
        rate = consistency_rate(program, server, "B", 3, 200)
        assert rate == 1.0

    def test_tight_budget_drops_rate(self):
        program = make_program()
        server = UpdatingServer({"A": 64, "B": 64})
        generous = consistency_rate(program, server, "B", 3, 80)
        tight = consistency_rate(program, server, "B", 3, 12)
        assert tight <= generous
        assert tight < 1.0

    def test_validation(self):
        program = make_program()
        server = UpdatingServer({"A": 64, "B": 64})
        with pytest.raises(SpecificationError):
            consistency_rate(program, server, "B", 3, 0)
