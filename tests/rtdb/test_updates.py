"""Tests for update dissemination and temporal consistency."""

import pytest

from repro.bdisk.flat import build_aida_flat_program
from repro.errors import SimulationError, SpecificationError
from repro.rtdb.updates import (
    UpdatingServer,
    consistency_rate,
    retrieve_versioned,
)
from repro.sim.faults import BernoulliFaults


def make_program():
    return build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])


class TestUpdatingServer:
    def test_version_clock(self):
        server = UpdatingServer({"A": 10})
        assert server.version_at("A", 0) == 0
        assert server.version_at("A", 9) == 0
        assert server.version_at("A", 10) == 1
        assert server.write_slot("A", 3) == 30

    def test_validation(self):
        with pytest.raises(SpecificationError):
            UpdatingServer({"A": 0})

    def test_unknown_item(self):
        server = UpdatingServer({"A": 10})
        with pytest.raises(SimulationError):
            server.period("B")


class TestRetrieveVersioned:
    def test_slow_updates_no_tearing(self):
        """Updates slower than the retrieval never tear."""
        program = make_program()
        server = UpdatingServer({"A": 1_000, "B": 1_000})
        result = retrieve_versioned(program, server, "B", 3)
        assert result.completed
        assert result.version == 0
        assert result.torn_discards == 0

    def test_fast_updates_cause_tearing(self):
        """An update landing mid-retrieval discards stale blocks.

        With a 6-slot update period, at most two B-blocks of any version
        air before the next version lands, until the rotation aligns -
        the read tears twice and completes late on version 2."""
        program = make_program()
        server = UpdatingServer({"A": 6, "B": 6})
        result = retrieve_versioned(program, server, "B", 3)
        assert result.completed
        assert result.torn_discards > 0
        assert result.latency > 7  # slower than the fault-free 7

    def test_age_measured_from_version_write(self):
        program = make_program()
        server = UpdatingServer({"A": 8, "B": 8})
        result = retrieve_versioned(program, server, "B", 3)
        assert result.completed
        write = server.write_slot("B", result.version)
        assert result.age_at_completion == result.finish_slot - write

    def test_impossible_when_updates_beat_retrieval(self):
        """If every version dies before m blocks of it can air, the
        retrieval never completes - the feasibility cliff that makes
        the paper's latency budgeting necessary."""
        program = make_program()
        server = UpdatingServer({"A": 2, "B": 2})
        result = retrieve_versioned(
            program, server, "B", 3, max_slots=500
        )
        assert not result.completed
        assert result.torn_discards > 0

    def test_unknown_file_rejected(self):
        program = make_program()
        server = UpdatingServer({"A": 5})
        with pytest.raises(SimulationError):
            retrieve_versioned(program, server, "Z", 1)

    def test_faults_interact_with_versions(self):
        program = make_program()
        server = UpdatingServer({"A": 100, "B": 100})
        result = retrieve_versioned(
            program, server, "B", 3,
            faults=BernoulliFaults(0.2, seed=4),
        )
        assert result.completed


class TestConsistencyRate:
    def test_generous_budget_always_fresh(self):
        program = make_program()
        server = UpdatingServer({"A": 64, "B": 64})
        rate = consistency_rate(program, server, "B", 3, 200)
        assert rate == 1.0

    def test_tight_budget_drops_rate(self):
        program = make_program()
        server = UpdatingServer({"A": 64, "B": 64})
        generous = consistency_rate(program, server, "B", 3, 80)
        tight = consistency_rate(program, server, "B", 3, 12)
        assert tight <= generous
        assert tight < 1.0

    def test_validation(self):
        program = make_program()
        server = UpdatingServer({"A": 64, "B": 64})
        with pytest.raises(SpecificationError):
            consistency_rate(program, server, "B", 3, 0)
