"""Tests for operation modes and the mode manager."""

import pytest

from repro.errors import SpecificationError
from repro.rtdb.items import DataItem
from repro.rtdb.modes import ModeManager, OperationMode
from repro.rtdb.temporal import TemporalConstraint


def make_items() -> list[DataItem]:
    return [
        DataItem(
            "radar",
            b"radar-data" * 8,
            TemporalConstraint(400),
            blocks=2,
            criticality={"combat": 2, "landing": 0},
        ),
        DataItem(
            "terrain",
            b"terrain" * 8,
            TemporalConstraint(2_000),
            blocks=3,
            criticality={"combat": 1},
        ),
    ]


def make_manager() -> ModeManager:
    return ModeManager(
        make_items(),
        [OperationMode("combat", "engaged"), OperationMode("landing")],
        slot_ms=10,
    )


class TestValidation:
    def test_mode_name_required(self):
        with pytest.raises(SpecificationError):
            OperationMode("")

    def test_manager_rejects_empty(self):
        with pytest.raises(SpecificationError):
            ModeManager([], [OperationMode("m")], slot_ms=10)
        with pytest.raises(SpecificationError):
            ModeManager(make_items(), [], slot_ms=10)

    def test_duplicate_items_rejected(self):
        items = make_items() + [make_items()[0]]
        with pytest.raises(SpecificationError):
            ModeManager(items, [OperationMode("m")], slot_ms=10)

    def test_duplicate_modes_rejected(self):
        with pytest.raises(SpecificationError):
            ModeManager(
                make_items(),
                [OperationMode("m"), OperationMode("m")],
                slot_ms=10,
            )


class TestModeSwitching:
    def test_initial_mode_is_first(self):
        manager = make_manager()
        assert manager.active_mode == "combat"

    def test_switch_changes_active(self):
        manager = make_manager()
        manager.switch_to("landing")
        assert manager.active_mode == "landing"

    def test_unknown_mode_rejected(self):
        manager = make_manager()
        with pytest.raises(SpecificationError):
            manager.switch_to("panic")

    def test_designs_cached(self):
        manager = make_manager()
        first = manager.design_for("combat")
        second = manager.design_for("combat")
        assert first is second

    def test_combat_needs_at_least_landing_bandwidth(self):
        """More redundancy slots can only increase bandwidth."""
        manager = make_manager()
        by_mode = manager.bandwidth_by_mode()
        assert by_mode["combat"] >= by_mode["landing"]

    def test_designed_programs_carry_all_items(self):
        manager = make_manager()
        for mode in ("combat", "landing"):
            program = manager.design_for(mode).program
            assert set(program.files) == {"radar", "terrain"}


class TestRedundancyPolicy:
    def test_policy_mirrors_criticality(self):
        policy = make_manager().redundancy_policy()
        assert policy.fault_budget("combat", "radar") == 2
        assert policy.fault_budget("landing", "radar") == 0
        assert policy.fault_budget("landing", "terrain") == 0
        assert policy.fault_budget("combat", "terrain") == 1
