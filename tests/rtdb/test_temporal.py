"""Tests for temporal consistency constraints."""

import pytest

from repro.errors import SpecificationError
from repro.rtdb.temporal import (
    TemporalConstraint,
    constraint_from_kinematics,
    latency_budget_slots,
)


class TestConstraint:
    def test_freshness_predicate(self):
        constraint = TemporalConstraint(400)
        assert constraint.is_fresh(399)
        assert constraint.is_fresh(400)
        assert not constraint.is_fresh(401)

    def test_rejects_nonpositive(self):
        with pytest.raises(SpecificationError):
            TemporalConstraint(0)

    def test_str(self):
        assert "400" in str(TemporalConstraint(400))


class TestKinematics:
    def test_paper_awacs_aircraft(self):
        """900 km/h, 100 m accuracy -> 400 ms (the paper's example)."""
        assert constraint_from_kinematics(900, 100).max_age_ms == 400

    def test_paper_tank(self):
        """60 km/h, 100 m accuracy -> 6000 ms."""
        assert constraint_from_kinematics(60, 100).max_age_ms == 6000

    def test_scaling_laws(self):
        base = constraint_from_kinematics(100, 50).max_age_ms
        faster = constraint_from_kinematics(200, 50).max_age_ms
        looser = constraint_from_kinematics(100, 100).max_age_ms
        assert faster == base // 2
        assert looser == base * 2

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(SpecificationError):
            constraint_from_kinematics(0, 100)
        with pytest.raises(SpecificationError):
            constraint_from_kinematics(900, 0)

    def test_sub_millisecond_rejected(self):
        # Mach-speed object with millimetre accuracy.
        with pytest.raises(SpecificationError):
            constraint_from_kinematics(100_000, 0.001)


class TestLatencyBudget:
    def test_simple_conversion(self):
        constraint = TemporalConstraint(400)
        assert latency_budget_slots(constraint, slot_ms=10) == 40

    def test_overhead_eats_budget(self):
        constraint = TemporalConstraint(400)
        assert latency_budget_slots(
            constraint, slot_ms=10, update_overhead_ms=100
        ) == 30

    def test_budget_exhausted_rejected(self):
        constraint = TemporalConstraint(400)
        with pytest.raises(SpecificationError):
            latency_budget_slots(
                constraint, slot_ms=10, update_overhead_ms=395
            )

    def test_validation(self):
        constraint = TemporalConstraint(400)
        with pytest.raises(SpecificationError):
            latency_budget_slots(constraint, slot_ms=0)
        with pytest.raises(SpecificationError):
            latency_budget_slots(
                constraint, slot_ms=10, update_overhead_ms=-1
            )

    def test_exact_multiple_of_fractional_slot(self):
        """Exact multiples of a decimal slot duration must not misround.

        Binary floats make ``usable_ms // slot_ms`` fall one slot short
        at some exact multiples (``1000 // 0.1`` is 9999, ``400 // 0.4``
        is 999); the budget must treat both durations as the decimal
        literals they were written as.
        """
        assert 1000 // 0.1 == 9999  # the float trap being guarded
        assert 400 // 0.4 == 999
        assert latency_budget_slots(
            TemporalConstraint(1000), slot_ms=0.1
        ) == 10_000
        assert latency_budget_slots(
            TemporalConstraint(400), slot_ms=0.4
        ) == 1_000
        # The tank of the paper's Section 1 example (6000 ms) at a
        # 0.6 ms slot: exactly 10000 slots.
        assert latency_budget_slots(
            TemporalConstraint(6000), slot_ms=0.6
        ) == 10_000

    def test_exact_boundaries_across_decimal_slots(self):
        cases = [
            (400, 0.4, 0.0, 1_000),
            (400, 0.1, 0.0, 4_000),
            (6000, 0.6, 600.0, 9_000),
            (1, 0.1, 0.0, 10),
            (3, 0.3, 0.0, 10),
        ]
        for max_age, slot_ms, overhead, expected in cases:
            budget = latency_budget_slots(
                TemporalConstraint(max_age),
                slot_ms=slot_ms,
                update_overhead_ms=overhead,
            )
            assert budget == expected, (max_age, slot_ms, overhead)

    def test_just_below_boundary_rounds_down(self):
        # One microsecond short of the exact multiple drops a full slot.
        constraint = TemporalConstraint(5999)
        assert latency_budget_slots(constraint, slot_ms=0.6) == 9_998

    def test_fractional_overhead_is_decimal_exact(self):
        constraint = TemporalConstraint(10)
        assert latency_budget_slots(
            constraint, slot_ms=0.1, update_overhead_ms=0.3
        ) == 97

    def test_nonfinite_slot_rejected(self):
        constraint = TemporalConstraint(400)
        with pytest.raises(SpecificationError):
            latency_budget_slots(constraint, slot_ms=float("inf"))
