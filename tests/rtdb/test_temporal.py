"""Tests for temporal consistency constraints."""

import pytest

from repro.errors import SpecificationError
from repro.rtdb.temporal import (
    TemporalConstraint,
    constraint_from_kinematics,
    latency_budget_slots,
)


class TestConstraint:
    def test_freshness_predicate(self):
        constraint = TemporalConstraint(400)
        assert constraint.is_fresh(399)
        assert constraint.is_fresh(400)
        assert not constraint.is_fresh(401)

    def test_rejects_nonpositive(self):
        with pytest.raises(SpecificationError):
            TemporalConstraint(0)

    def test_str(self):
        assert "400" in str(TemporalConstraint(400))


class TestKinematics:
    def test_paper_awacs_aircraft(self):
        """900 km/h, 100 m accuracy -> 400 ms (the paper's example)."""
        assert constraint_from_kinematics(900, 100).max_age_ms == 400

    def test_paper_tank(self):
        """60 km/h, 100 m accuracy -> 6000 ms."""
        assert constraint_from_kinematics(60, 100).max_age_ms == 6000

    def test_scaling_laws(self):
        base = constraint_from_kinematics(100, 50).max_age_ms
        faster = constraint_from_kinematics(200, 50).max_age_ms
        looser = constraint_from_kinematics(100, 100).max_age_ms
        assert faster == base // 2
        assert looser == base * 2

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(SpecificationError):
            constraint_from_kinematics(0, 100)
        with pytest.raises(SpecificationError):
            constraint_from_kinematics(900, 0)

    def test_sub_millisecond_rejected(self):
        # Mach-speed object with millimetre accuracy.
        with pytest.raises(SpecificationError):
            constraint_from_kinematics(100_000, 0.001)


class TestLatencyBudget:
    def test_simple_conversion(self):
        constraint = TemporalConstraint(400)
        assert latency_budget_slots(constraint, slot_ms=10) == 40

    def test_overhead_eats_budget(self):
        constraint = TemporalConstraint(400)
        assert latency_budget_slots(
            constraint, slot_ms=10, update_overhead_ms=100
        ) == 30

    def test_budget_exhausted_rejected(self):
        constraint = TemporalConstraint(400)
        with pytest.raises(SpecificationError):
            latency_budget_slots(
                constraint, slot_ms=10, update_overhead_ms=395
            )

    def test_validation(self):
        constraint = TemporalConstraint(400)
        with pytest.raises(SpecificationError):
            latency_budget_slots(constraint, slot_ms=0)
        with pytest.raises(SpecificationError):
            latency_budget_slots(
                constraint, slot_ms=10, update_overhead_ms=-1
            )
