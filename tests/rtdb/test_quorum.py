"""r-of-k quorum-consistent versioned reads over a channel set."""

import pytest

from repro.errors import SimulationError
from repro.bdisk.file import FileSpec
from repro.bdisk.multichannel import design_multichannel_program
from repro.api.scenario import ChannelSpec
from repro.rtdb import reference
from repro.rtdb.updates import (
    QUORUM_OUTCOMES,
    UpdatingServer,
    retrieve_versioned,
    retrieve_versioned_quorum,
)
from repro.sim.faults import AdversarialFaults, BernoulliFaults


def channel_set(count, *, quorum=1, tuning_cost=0, assignment="replicated"):
    files = [FileSpec("x", 2, 10), FileSpec("y", 3, 15)]
    return design_multichannel_program(
        files,
        ChannelSpec(
            count=count,
            assignment=assignment,
            quorum=quorum,
            tuning_cost=tuning_cost,
        ),
    ).channel_set


def server(period=40):
    return UpdatingServer({"x": period, "y": period})


def same_read(fast, slow):
    return (
        fast.outcome == slow.outcome
        and fast.version == slow.version
        and fast.finish_slot == slow.finish_slot
        and fast.latency == slow.latency
        and fast.tuned == slow.tuned
        and fast.switches == slow.switches
        and fast.copies == slow.copies
        and fast.stale_copies == slow.stale_copies
        and fast.age_at_completion == slow.age_at_completion
        and fast.torn_discards == slow.torn_discards
    )


class TestDegenerate:
    def test_1_of_1_is_bit_identical_to_retrieve_versioned(self):
        channels = channel_set(1)
        srv = server()
        program = channels.programs[0]
        for start in range(0, 40, 3):
            single = retrieve_versioned(program, srv, "x", 2, start=start)
            quorum = retrieve_versioned_quorum(
                channels, srv, "x", 2, start=start
            )
            assert quorum.outcome == "ok"
            assert quorum.version == single.version
            assert quorum.finish_slot == single.finish_slot
            assert quorum.latency == single.latency
            assert quorum.age_at_completion == single.age_at_completion
            assert quorum.torn_discards == single.torn_discards
            assert quorum.copies == 1
            assert quorum.switches == 0


class TestQuorumAssembly:
    def test_2_of_3_assembles_with_long_update_period(self):
        channels = channel_set(3, quorum=2, tuning_cost=1)
        read = retrieve_versioned_quorum(
            channels, server(period=10_000), "x", 2, start=0
        )
        assert read.outcome == "ok"
        assert read.completed
        assert read.copies >= 2
        assert read.switches >= 1
        assert read.latency == read.finish_slot - read.start + 1

    def test_outcomes_are_in_the_published_vocabulary(self):
        for count, quorum, period in ((3, 2, 7), (2, 2, 5), (3, 3, 9)):
            channels = channel_set(count, quorum=quorum)
            read = retrieve_versioned_quorum(
                channels, server(period=period), "x", 2, start=0
            )
            assert read.outcome in QUORUM_OUTCOMES

    def test_rapid_updates_force_mismatch(self):
        # An update period shorter than two sequential copy reads but
        # long enough for each copy alone: both copies complete cleanly
        # yet never share a version - the read is a mismatch, and the
        # first copy is counted as stale (wasted).
        channels = channel_set(2, quorum=2)
        read = retrieve_versioned_quorum(
            channels, UpdatingServer({"x": 8, "y": 8}), "x", 2, start=0
        )
        assert read.outcome == "mismatch"
        assert not read.completed
        assert read.latency is None
        assert read.copies == 2
        assert read.stale_copies == 1

    def test_lost_channel_forces_incomplete(self):
        # One candidate channel is fully dead; a 2-of-2 quorum cannot
        # assemble and the read reports the exhausted horizon.
        channels = channel_set(2, quorum=2)
        dead = AdversarialFaults(range(0, 5000))
        read = retrieve_versioned_quorum(
            channels,
            server(period=10_000),
            "x",
            2,
            start=0,
            faults=[None, dead],
            max_slots=60,
        )
        assert read.outcome == "incomplete"
        assert read.latency is None

    def test_quorum_override_beats_channel_set_default(self):
        channels = channel_set(3, quorum=1)
        read = retrieve_versioned_quorum(
            channels, server(period=10_000), "x", 2, start=0, quorum=3
        )
        assert read.copies >= 3

    def test_thin_coverage_rejected(self):
        channels = channel_set(2, assignment="striped")
        # Striped: each file sits on one channel; a 2-copy quorum is
        # impossible and must fail loudly.
        with pytest.raises(SimulationError, match="quorum"):
            retrieve_versioned_quorum(
                channels, server(), "x", 2, start=0, quorum=2
            )


class TestReferenceParity:
    """Fast quorum assembly equals the slot-walking seed bit-for-bit."""

    @pytest.mark.parametrize("quorum,period,tuning_cost", [
        (1, 35, 0),
        (2, 60, 1),
        (3, 90, 2),
        (2, 6, 0),
    ])
    def test_clean_channels(self, quorum, period, tuning_cost):
        channels = channel_set(3, quorum=quorum, tuning_cost=tuning_cost)
        srv = server(period=period)
        for start in range(0, 40, 5):
            for tuned in range(3):
                fast = retrieve_versioned_quorum(
                    channels, srv, "y", 3, start=start, tuned=tuned
                )
                slow = reference.retrieve_versioned_quorum(
                    channels, srv, "y", 3, start=start, tuned=tuned
                )
                assert same_read(fast, slow), (start, tuned)

    def test_faulty_channels(self):
        channels = channel_set(3, quorum=2, tuning_cost=1)
        srv = server(period=50)
        faults = lambda: [  # noqa: E731
            BernoulliFaults(0.2, seed=3),
            None,
            BernoulliFaults(0.2, seed=5),
        ]
        for start in range(0, 30, 4):
            fast = retrieve_versioned_quorum(
                channels, srv, "x", 2, start=start, faults=faults(),
                max_slots=200,
            )
            slow = reference.retrieve_versioned_quorum(
                channels, srv, "x", 2, start=start, faults=faults(),
                max_slots=200,
            )
            assert same_read(fast, slow), start
