"""Property tests: occurrence-walking rtdb clients vs the slot-walkers.

The versioned retrieval and transaction execution rewritten over the
occurrence index (:mod:`repro.rtdb.updates`,
:mod:`repro.rtdb.transactions`) must be *bit-identical* to the seed
slot-walking implementations preserved in :mod:`repro.rtdb.reference` -
every field: version, latency, age, torn discards, commit status.
These properties pin that down on randomized programs, fault models,
update periods, and phases.
"""

from hypothesis import given, settings, strategies as st

from repro.bdisk.program import BroadcastProgram
from repro.core.schedule import IDLE, Schedule
from repro.rtdb import reference
from repro.rtdb.items import DataItem
from repro.rtdb.temporal import TemporalConstraint
from repro.rtdb.transactions import ReadTransaction, execute_transaction
from repro.rtdb.updates import UpdatingServer, retrieve_versioned
from repro.sim.faults import (
    AdversarialFaults,
    BernoulliFaults,
    BurstFaults,
    NoFaults,
)


@st.composite
def programs(draw, max_files=3, max_length=12, max_blocks=6):
    """Random small programs: idle slots, shared slots, rotation."""
    n_files = draw(st.integers(1, max_files))
    names = [f"f{i}" for i in range(n_files)]
    length = draw(st.integers(n_files, max_length))
    cycle = [
        draw(st.sampled_from(names + [IDLE])) for _ in range(length)
    ]
    for index, name in enumerate(names):
        cycle[index % length] = name
    block_counts = {
        name: draw(st.integers(1, max_blocks)) for name in names
    }
    return BroadcastProgram(Schedule(cycle), block_counts)


@st.composite
def fault_models(draw):
    """One fault model of each kind, freshly constructed per use."""
    kind = draw(
        st.sampled_from(["none", "bernoulli", "burst", "adversarial"])
    )
    seed = draw(st.integers(0, 2**16))
    if kind == "none":
        return lambda: NoFaults()
    if kind == "bernoulli":
        p = draw(st.floats(0.0, 0.9))
        return lambda: BernoulliFaults(p, seed=seed)
    if kind == "burst":
        p_enter = draw(st.floats(0.0, 0.5))
        p_exit = draw(st.floats(0.1, 1.0))
        return lambda: BurstFaults(p_enter, p_exit, seed=seed)
    slots = draw(st.sets(st.integers(0, 300), max_size=30))
    return lambda: AdversarialFaults(slots)


class TestVersionedRetrievalEquivalence:
    @given(program=programs(), faults=fault_models(), data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_versioned_retrievals(
        self, program, faults, data
    ):
        file = data.draw(st.sampled_from(program.files))
        m_needed = data.draw(
            st.integers(1, program.block_count(file))
        )
        period = data.draw(st.integers(1, 4 * program.data_cycle_length))
        start = data.draw(st.integers(0, 3 * program.data_cycle_length))
        max_slots = data.draw(
            st.one_of(
                st.none(),
                st.integers(0, 5 * program.data_cycle_length),
            )
        )
        server = UpdatingServer({file: period})
        expected = reference.retrieve_versioned(
            program, server, file, m_needed,
            start=start, faults=faults(), max_slots=max_slots,
        )
        actual = retrieve_versioned(
            program, server, file, m_needed,
            start=start, faults=faults(), max_slots=max_slots,
        )
        assert actual == expected

    @given(program=programs(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_shared_model_instance_is_safe(self, program, data):
        """Both paths may share one (stateful) fault model instance."""
        file = data.draw(st.sampled_from(program.files))
        period = data.draw(st.integers(1, 20))
        model = BurstFaults(0.2, 0.5, seed=data.draw(st.integers(0, 99)))
        server = UpdatingServer({file: period})
        expected = reference.retrieve_versioned(
            program, server, file, 1, start=5, faults=model
        )
        actual = retrieve_versioned(
            program, server, file, 1, start=5, faults=model
        )
        assert actual == expected

    @given(program=programs(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_torn_read_regime(self, program, data):
        """Fast updates (period < cycle) - the torn-read stress case."""
        file = data.draw(st.sampled_from(program.files))
        m_needed = program.block_count(file)
        period = data.draw(
            st.integers(1, max(1, program.data_cycle_length - 1))
        )
        server = UpdatingServer({file: period})
        expected = reference.retrieve_versioned(
            program, server, file, m_needed,
            max_slots=6 * program.data_cycle_length,
        )
        actual = retrieve_versioned(
            program, server, file, m_needed,
            max_slots=6 * program.data_cycle_length,
        )
        assert actual == expected
        assert actual.torn_discards == expected.torn_discards


class TestTransactionEquivalence:
    def _world(self, program, data, slot_ms):
        items = {}
        for name in program.files:
            blocks = data.draw(
                st.integers(1, program.block_count(name)),
                label=f"blocks:{name}",
            )
            max_age = data.draw(
                st.integers(
                    int(blocks * slot_ms) + 1,
                    int(8 * program.data_cycle_length * slot_ms),
                ),
                label=f"age:{name}",
            )
            items[name] = DataItem(
                name,
                name.encode() * 4,
                TemporalConstraint(max_age),
                blocks=blocks,
            )
        return items

    @given(program=programs(), faults=fault_models(), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_static_transactions_bit_identical(
        self, program, faults, data
    ):
        slot_ms = 10
        items = self._world(program, data, slot_ms)
        names = data.draw(
            st.permutations(sorted(items)), label="order"
        )
        txn = ReadTransaction(
            "t",
            names,
            data.draw(st.integers(1, 12 * program.data_cycle_length)),
        )
        start = data.draw(st.integers(0, 2 * program.data_cycle_length))
        expected = reference.execute_transaction(
            program, txn, items,
            start=start, slot_ms=slot_ms, faults=faults(),
        )
        actual = execute_transaction(
            program, txn, items,
            start=start, slot_ms=slot_ms, faults=faults(),
        )
        assert actual == expected
        assert actual.committed == expected.committed

    @given(program=programs(), faults=fault_models(), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_versioned_transactions_bit_identical(
        self, program, faults, data
    ):
        slot_ms = 10
        items = self._world(program, data, slot_ms)
        periods = {
            name: data.draw(
                st.integers(1, 4 * program.data_cycle_length),
                label=f"period:{name}",
            )
            for name in items
        }
        server = UpdatingServer(periods)
        names = data.draw(
            st.permutations(sorted(items)), label="order"
        )
        txn = ReadTransaction(
            "t",
            names,
            data.draw(st.integers(1, 12 * program.data_cycle_length)),
        )
        start = data.draw(st.integers(0, 2 * program.data_cycle_length))
        expected = reference.execute_transaction(
            program, txn, items,
            start=start, slot_ms=slot_ms, faults=faults(), server=server,
        )
        actual = execute_transaction(
            program, txn, items,
            start=start, slot_ms=slot_ms, faults=faults(), server=server,
        )
        assert actual == expected
        assert actual.torn_discards == expected.torn_discards
        assert [r.version for r in actual.versioned] == [
            r.version for r in expected.versioned
        ]
        assert [r.latency for r in actual.versioned] == [
            r.latency for r in expected.versioned
        ]
