"""Tests for RTDB data items."""

import pytest

from repro.errors import SpecificationError
from repro.rtdb.items import DataItem
from repro.rtdb.temporal import TemporalConstraint, constraint_from_kinematics


def aircraft_item(**overrides) -> DataItem:
    fields = dict(
        name="aircraft",
        payload=b"position" * 10,
        constraint=constraint_from_kinematics(900, 100),
        blocks=3,
        criticality={"combat": 2, "landing": 0},
        default_faults=0,
    )
    fields.update(overrides)
    return DataItem(**fields)


class TestDataItem:
    def test_fault_budget_by_mode(self):
        item = aircraft_item()
        assert item.fault_budget("combat") == 2
        assert item.fault_budget("landing") == 0
        assert item.fault_budget("transit") == 0  # default

    def test_default_fault_budget(self):
        item = aircraft_item(criticality={}, default_faults=1)
        assert item.fault_budget("anything") == 1

    def test_validation(self):
        with pytest.raises(SpecificationError):
            aircraft_item(blocks=0)
        with pytest.raises(SpecificationError):
            aircraft_item(default_faults=-1)
        with pytest.raises(SpecificationError):
            aircraft_item(criticality={"combat": -2})


class TestAsFileSpec:
    def test_combat_mode_spec(self):
        item = aircraft_item()
        spec = item.as_file_spec("combat", slot_ms=10)
        assert spec.name == "aircraft"
        assert spec.blocks == 3
        assert spec.fault_budget == 2
        assert spec.latency == 40  # 400 ms / 10 ms per slot
        assert spec.data == item.payload

    def test_overhead_shrinks_budget(self):
        item = aircraft_item()
        spec = item.as_file_spec("combat", slot_ms=10, update_overhead_ms=100)
        assert spec.latency == 30

    def test_budget_too_tight_rejected(self):
        # 400 ms at 100 ms/slot = 4 slots < 3 blocks + 2 fault slots.
        item = aircraft_item()
        with pytest.raises(SpecificationError):
            item.as_file_spec("combat", slot_ms=100)

    def test_landing_mode_fits_where_combat_does_not(self):
        item = aircraft_item()
        spec = item.as_file_spec("landing", slot_ms=100)
        assert spec.fault_budget == 0
        assert spec.latency == 4
