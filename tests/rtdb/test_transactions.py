"""Tests for read transactions over broadcast programs."""

import pytest

from repro.bdisk.builder import design_program
from repro.errors import SimulationError, SpecificationError
from repro.rtdb.items import DataItem
from repro.rtdb.temporal import TemporalConstraint
from repro.rtdb.transactions import ReadTransaction, execute_transaction
from repro.sim.faults import BernoulliFaults


def make_world():
    items = {
        "radar": DataItem(
            "radar", b"radar" * 10, TemporalConstraint(4_000), blocks=2
        ),
        "terrain": DataItem(
            "terrain", b"terrain" * 10, TemporalConstraint(20_000), blocks=3
        ),
    }
    specs = [
        item.as_file_spec("default", slot_ms=10) for item in items.values()
    ]
    design = design_program(specs)
    return items, design.program


class TestReadTransaction:
    def test_validation(self):
        with pytest.raises(SpecificationError):
            ReadTransaction("t", [], 10)
        with pytest.raises(SpecificationError):
            ReadTransaction("t", ["a", "a"], 10)
        with pytest.raises(SpecificationError):
            ReadTransaction("t", ["a"], 0)


class TestExecution:
    def test_commit_fault_free(self):
        items, program = make_world()
        txn = ReadTransaction("warn", ["radar", "terrain"], 500)
        result = execute_transaction(
            program, txn, items, slot_ms=10
        )
        assert result.committed
        assert result.met_deadline
        assert result.stale_items == ()
        assert result.response_time is not None
        assert "COMMIT" in str(result)

    def test_sequential_retrieval(self):
        items, program = make_world()
        txn = ReadTransaction("warn", ["radar", "terrain"], 500)
        result = execute_transaction(program, txn, items, slot_ms=10)
        first, second = result.retrievals
        assert second.start == first.finish_slot + 1

    def test_deadline_abort(self):
        items, program = make_world()
        txn = ReadTransaction("tight", ["radar", "terrain"], 1)
        result = execute_transaction(program, txn, items, slot_ms=10)
        assert not result.committed
        assert not result.met_deadline
        assert "ABORT" in str(result)

    def test_staleness_abort(self):
        items, program = make_world()
        # A constraint so tight that any retrieval is stale at 10 ms/slot.
        items = dict(items)
        items["radar"] = DataItem(
            "radar", b"radar" * 10, TemporalConstraint(1), blocks=2
        )
        txn = ReadTransaction("warn", ["radar"], 500)
        result = execute_transaction(program, txn, items, slot_ms=10)
        assert result.stale_items == ("radar",)
        assert not result.committed

    def test_unknown_item_rejected(self):
        items, program = make_world()
        txn = ReadTransaction("warn", ["ghost"], 100)
        with pytest.raises(SimulationError):
            execute_transaction(program, txn, items, slot_ms=10)

    def test_channel_loss_can_abort(self):
        items, program = make_world()
        txn = ReadTransaction("warn", ["radar", "terrain"], 30)
        result = execute_transaction(
            program,
            txn,
            items,
            slot_ms=10,
            faults=BernoulliFaults(0.6, seed=13),
        )
        # With 60% loss the deadline of 30 slots is unlikely to hold;
        # accept either outcome but require internal consistency.
        if result.committed:
            assert result.response_time <= 30
        else:
            assert (
                result.response_time is None
                or result.response_time > 30
                or result.stale_items
            )

    def test_start_offset_respected(self):
        items, program = make_world()
        txn = ReadTransaction("warn", ["radar"], 500)
        result = execute_transaction(
            program, txn, items, start=7, slot_ms=10
        )
        assert result.start == 7
        assert result.retrievals[0].start == 7
