"""Tests for the declarative TemporalSpec layer."""

import pytest

from repro.errors import SpecificationError
from repro.rtdb import (
    TemporalItemSpec,
    TemporalSpec,
    TransactionSpec,
    UpdatingServer,
)


def make_spec(**overrides):
    payload = dict(
        slot_ms=10,
        items=(
            TemporalItemSpec(
                "air", blocks=2, velocity_kmh=900, accuracy_m=100,
                criticality={"combat": 2},
            ),
            TemporalItemSpec("map", blocks=3, max_age_ms=6000),
        ),
        update_periods={"air": 20, "map": 300},
        mode="combat",
        modes=("combat", "patrol"),
    )
    payload.update(overrides)
    return TemporalSpec(**payload)


class TestTemporalItemSpec:
    def test_kinematics_derivation(self):
        item = TemporalItemSpec(
            "air", velocity_kmh=900, accuracy_m=100
        )
        assert item.constraint().max_age_ms == 400

    def test_direct_constraint(self):
        item = TemporalItemSpec("map", max_age_ms=6000)
        assert item.constraint().max_age_ms == 6000

    def test_exactly_one_constraint_form(self):
        with pytest.raises(SpecificationError):
            TemporalItemSpec("x")
        with pytest.raises(SpecificationError):
            TemporalItemSpec(
                "x", max_age_ms=100, velocity_kmh=900, accuracy_m=100
            )
        with pytest.raises(SpecificationError):
            TemporalItemSpec("x", velocity_kmh=900)  # missing accuracy

    def test_round_trip(self):
        for item in (
            TemporalItemSpec(
                "air", blocks=2, velocity_kmh=900, accuracy_m=100,
                criticality={"combat": 2}, default_faults=1,
            ),
            TemporalItemSpec("map", max_age_ms=6000),
        ):
            assert TemporalItemSpec.from_dict(item.to_dict()) == item

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecificationError):
            TemporalItemSpec.from_dict(
                {"name": "x", "max_age_ms": 100, "size": 3}
            )

    def test_data_item_payload_is_deterministic(self):
        a = TemporalItemSpec("air", blocks=2, max_age_ms=400)
        assert a.data_item().payload == a.data_item().payload
        assert len(a.data_item().payload) == 128  # 64 bytes per block

    def test_negative_budget_rejected(self):
        with pytest.raises(SpecificationError):
            TemporalItemSpec(
                "x", max_age_ms=100, criticality={"combat": -1}
            )


class TestTransactionSpec:
    def test_round_trip(self):
        txn = TransactionSpec("engage", ["air", "map"], 80, weight=3.0)
        assert TransactionSpec.from_dict(txn.to_dict()) == txn
        # Default weight is omitted from the payload.
        assert "weight" not in TransactionSpec(
            "t", ["air"], 10
        ).to_dict()

    def test_validation_via_read_transaction(self):
        with pytest.raises(SpecificationError):
            TransactionSpec("t", [], 10)
        with pytest.raises(SpecificationError):
            TransactionSpec("t", ["a", "a"], 10)
        with pytest.raises(SpecificationError):
            TransactionSpec("t", ["a"], 0)
        with pytest.raises(SpecificationError):
            TransactionSpec("t", ["a"], 10, weight=0)


class TestTemporalSpec:
    def test_file_specs_apply_mode_budgets(self):
        spec = make_spec()
        files = spec.file_specs()
        assert [f.name for f in files] == ["air", "map"]
        air, map_ = files
        assert air.latency == 40  # 400 ms at 10 ms/slot
        assert air.fault_budget == 2  # combat criticality
        assert map_.latency == 600
        assert map_.fault_budget == 0
        patrol_air = spec.file_specs("patrol")[0]
        assert patrol_air.fault_budget == 0  # default_faults

    def test_max_age_slots_match_budgets(self):
        spec = make_spec()
        assert spec.max_age_slots() == {"air": 40, "map": 600}

    def test_server_owns_the_update_clocks(self):
        server = make_spec().server()
        assert isinstance(server, UpdatingServer)
        assert server.period("air") == 20

    def test_round_trip(self):
        spec = make_spec(
            transactions=(
                TransactionSpec("engage", ["air", "map"], 700, weight=3),
            ),
            update_overhead_ms=5.0,
        )
        assert TemporalSpec.from_dict(spec.to_dict()) == spec

    def test_modes_default_to_active_mode(self):
        spec = TemporalSpec(
            slot_ms=10,
            items=(TemporalItemSpec("a", max_age_ms=400),),
            update_periods={"a": 10},
        )
        assert spec.modes == ("default",)
        assert spec.mode == "default"

    def test_active_mode_must_be_declared(self):
        with pytest.raises(SpecificationError):
            make_spec(mode="landing")

    def test_criticality_modes_must_be_declared(self):
        with pytest.raises(SpecificationError):
            make_spec(
                items=(
                    TemporalItemSpec(
                        "air", max_age_ms=400,
                        criticality={"landing": 1},
                    ),
                ),
                update_periods={"air": 20},
            )

    def test_update_periods_must_cover_every_item(self):
        with pytest.raises(SpecificationError) as excinfo:
            make_spec(update_periods={"air": 20})
        assert "map" in str(excinfo.value)
        with pytest.raises(SpecificationError) as excinfo:
            make_spec(
                update_periods={"air": 20, "map": 300, "ghost": 5}
            )
        assert "ghost" in str(excinfo.value)

    def test_transactions_must_read_known_items(self):
        with pytest.raises(SpecificationError):
            make_spec(
                transactions=(TransactionSpec("t", ["ghost"], 10),)
            )

    def test_duplicate_items_rejected(self):
        with pytest.raises(SpecificationError):
            make_spec(
                items=(
                    TemporalItemSpec("air", max_age_ms=400),
                    TemporalItemSpec("air", max_age_ms=500),
                ),
                update_periods={"air": 20},
            )

    def test_infeasible_mode_rejected_eagerly(self):
        """An item whose budget cannot carry its blocks in *some*
        declared mode fails at spec construction, not mid-sweep."""
        with pytest.raises(SpecificationError):
            make_spec(
                items=(
                    # 40-slot budget, 30 blocks + 15 combat faults.
                    TemporalItemSpec(
                        "air", blocks=30, velocity_kmh=900,
                        accuracy_m=100, criticality={"combat": 15},
                    ),
                    TemporalItemSpec("map", blocks=3, max_age_ms=6000),
                ),
            )

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecificationError):
            TemporalSpec.from_dict(
                {"slot_ms": 10, "items": [], "update_periods": {},
                 "colour": "red"}
            )

    def test_describe_mentions_the_mix(self):
        spec = make_spec(
            transactions=(TransactionSpec("t", ["air"], 700),)
        )
        assert "transaction mix" in spec.describe()
        assert "mode combat" in spec.describe()
