"""Tests for the ``--telemetry`` flag and the ``repro obs`` subcommand."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.export import METRICS_PROM, TELEMETRY_JSON, TRACE_JSONL


def scenario_path(tmp_path, **overrides) -> str:
    payload = {
        "name": "obs-cli",
        "files": [
            {"name": "pos", "blocks": 2, "latency": 2, "fault_budget": 1},
            {"name": "map", "blocks": 3, "latency": 6},
        ],
        "workload": {"requests": 8, "horizon": 50, "seed": 4},
        "traffic": {
            "clients": 10, "duration": 100,
            "requests_per_client": 2, "seed": 13,
        },
    }
    payload.update(overrides)
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


def sweep_path(tmp_path) -> str:
    payload = {
        "name": "obs-grid",
        "base": json.loads(Path(scenario_path(tmp_path)).read_text()),
        "axes": [
            {"field": "faults.kind", "values": ["bernoulli"]},
            {"field": "faults.probability", "values": [0.0, 0.1]},
        ],
    }
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestTelemetryFlag:
    def test_run_exports_directory(self, tmp_path, capsys):
        out = tmp_path / "tel"
        status = main(
            ["run", scenario_path(tmp_path), "--telemetry", str(out)]
        )
        assert status == 0
        for name in (TELEMETRY_JSON, TRACE_JSONL, METRICS_PROM):
            assert (out / name).is_file()
        payload = json.loads((out / TELEMETRY_JSON).read_text())
        names = {m["name"] for m in payload["metrics"]}
        assert any(n.startswith("solve.") for n in names)

    def test_traffic_json_embeds_telemetry(self, tmp_path, capsys):
        out = tmp_path / "tel"
        status = main([
            "traffic", scenario_path(tmp_path),
            "--telemetry", str(out), "--json",
        ])
        assert status == 0
        record = json.loads(capsys.readouterr().out)
        names = {m["name"] for m in record["telemetry"]["metrics"]}
        assert "traffic.requests" in names
        assert "spans" not in record["telemetry"]
        # The full span trace still lands in the export directory.
        assert (out / TRACE_JSONL).read_text().strip()

    def test_traffic_without_flag_writes_nothing(self, tmp_path, capsys):
        status = main(["traffic", scenario_path(tmp_path), "--json"])
        assert status == 0
        record = json.loads(capsys.readouterr().out)
        assert "telemetry" not in record

    def test_sweep_with_workers_exports(self, tmp_path, capsys):
        out = tmp_path / "tel"
        status = main([
            "sweep", sweep_path(tmp_path),
            "--workers", "2", "--telemetry", str(out), "--json",
        ])
        assert status == 0
        payload = json.loads((out / TELEMETRY_JSON).read_text())
        by_name = {
            (m["name"], tuple(map(tuple, m["labels"]))): m
            for m in payload["metrics"]
        }
        assert by_name[("sweep.cells.executed", ())]["value"] == 2
        prom = (out / METRICS_PROM).read_text()
        assert "repro_sweep_cells_executed_total 2" in prom

    def test_server_exports_mutation_spans(self, tmp_path, capsys):
        script = tmp_path / "mutations.json"
        script.write_text(json.dumps([
            {
                "at_slot": 40,
                "mutation": {
                    "kind": "fault_budget",
                    "name": "pos",
                    "delta": 1,
                },
            },
        ]))
        out = tmp_path / "tel"
        status = main([
            "server", scenario_path(tmp_path),
            "--script", str(script), "--telemetry", str(out), "--json",
        ])
        assert status == 0
        spans = [
            json.loads(line)
            for line in (out / TRACE_JSONL).read_text().splitlines()
        ]
        names = {s["name"] for s in spans}
        assert "server.mutation" in names
        assert "server.mutation.resolve" in names
        assert "server.mutation.splice_search" in names
        assert "server.mutation.splice_commit" in names
        # Child spans hang off the mutation span.
        mutation = next(s for s in spans if s["name"] == "server.mutation")
        children = {
            s["name"] for s in spans if s.get("parent") == mutation["id"]
        }
        assert "server.mutation.resolve" in children


class TestSharedWorkersValidation:
    @pytest.mark.parametrize("command", ["run", "traffic"])
    def test_zero_workers_exits_2(self, tmp_path, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, scenario_path(tmp_path), "--workers", "0"])
        assert excinfo.value.code == 2
        assert "worker count must be >= 1" in capsys.readouterr().err

    def test_sweep_zero_workers_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", sweep_path(tmp_path), "--workers", "0"])
        assert excinfo.value.code == 2


class TestObsSummarize:
    def test_summarize_renders_export(self, tmp_path, capsys):
        out = tmp_path / "tel"
        main([
            "traffic", scenario_path(tmp_path),
            "--workers", "2", "--telemetry", str(out),
        ])
        capsys.readouterr()
        status = main(["obs", "summarize", str(out)])
        assert status == 0
        text = capsys.readouterr().out
        assert "counters:" in text
        assert "traffic.requests{engine=object}" in text
        assert "traffic.shard" in text  # merged worker spans

    def test_summarize_reconstructs_sharded_sweep(self, tmp_path, capsys):
        out = tmp_path / "tel"
        main([
            "sweep", sweep_path(tmp_path),
            "--workers", "2", "--telemetry", str(out), "--json",
        ])
        capsys.readouterr()
        status = main(["obs", "summarize", str(out)])
        assert status == 0
        text = capsys.readouterr().out
        assert "sweep.cells.executed" in text
        # Span tree: cells nest queue/solve/simulate children.
        lines = text.splitlines()
        cell = next(l for l in lines if l.strip().startswith("sweep.cell "))
        solve = next(
            l for l in lines if l.strip().startswith("sweep.cell.solve")
        )
        assert (len(solve) - len(solve.lstrip())) > (
            len(cell) - len(cell.lstrip())
        )

    def test_summarize_missing_path_fails_cleanly(self, tmp_path, capsys):
        status = main(["obs", "summarize", str(tmp_path / "nope")])
        assert status == 1
        assert "error" in capsys.readouterr().err
