"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

import repro
from repro.cli import main

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestRun:
    def scenario_path(self, tmp_path, **overrides) -> str:
        payload = {
            "name": "cli-test",
            "files": [
                {"name": "pos", "blocks": 2, "latency": 2,
                 "fault_budget": 1},
                {"name": "map", "blocks": 3, "latency": 6},
            ],
            "workload": {"requests": 10, "horizon": 60, "seed": 4},
        }
        payload.update(overrides)
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_run_summary(self, tmp_path, capsys):
        status = main(["run", self.scenario_path(tmp_path)])
        out = capsys.readouterr().out
        assert status == 0
        assert "scenario  : cli-test" in out
        assert "deadline miss rate" in out

    def test_run_json(self, tmp_path, capsys):
        status = main(["run", self.scenario_path(tmp_path), "--json"])
        assert status == 0
        record = json.loads(capsys.readouterr().out)
        assert record["scenario"]["name"] == "cli-test"
        assert record["simulation"]["requests"] == 10
        assert record["simulation"]["deadline_miss_rate"] == 0.0

    def test_checked_in_example_scenario(self, capsys):
        status = main(
            ["run", str(EXAMPLES_DIR / "scenario_awacs.json")]
        )
        assert status == 0
        assert "scenario  : awacs" in capsys.readouterr().out

    def test_checked_in_temporal_example(self, capsys):
        status = main(
            ["run", str(EXAMPLES_DIR / "scenario_awacs_temporal.json"),
             "--json"]
        )
        assert status == 0
        record = json.loads(capsys.readouterr().out)
        assert record["scenario"]["name"] == "awacs-temporal"
        assert record["scenario"]["temporal"]["mode"] == "combat"
        assert record["stats"]["bandwidth"] == 1
        temporal = record["traffic"]["temporal"]
        assert temporal["item_reads"] > 0
        assert 0.0 <= temporal["consistency_rate"] <= 1.0

    def test_run_multiple_scenarios(self, tmp_path, capsys):
        first = self.scenario_path(tmp_path)
        second = tmp_path / "second.json"
        second.write_text(
            Path(first).read_text(encoding="utf-8").replace(
                "cli-test", "cli-second"
            ),
            encoding="utf-8",
        )
        status = main(["run", first, str(second)])
        out = capsys.readouterr().out
        assert status == 0
        assert "scenario  : cli-test" in out
        assert "scenario  : cli-second" in out

    def test_run_workers_matches_serial_json(self, tmp_path, capsys):
        first = self.scenario_path(tmp_path)
        second = tmp_path / "second.json"
        second.write_text(
            Path(first).read_text(encoding="utf-8").replace(
                "cli-test", "cli-second"
            ),
            encoding="utf-8",
        )
        paths = [first, str(second)]
        status = main(["run", *paths, "--json"])
        serial = json.loads(capsys.readouterr().out)
        assert status == 0
        status = main(["run", *paths, "--json", "--workers", "2"])
        parallel = json.loads(capsys.readouterr().out)
        assert status == 0
        assert isinstance(serial, list) and len(serial) == 2
        assert parallel == serial

    def test_bad_workers_is_clean_error(self, tmp_path, capsys):
        # Rejected at argument parsing (usage error, exit status 2)
        # with a message naming the constraint - not a pool traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["run", self.scenario_path(tmp_path), "--workers", "0"])
        assert excinfo.value.code == 2
        assert "worker count must be >= 1" in capsys.readouterr().err

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        status = main(["run", str(tmp_path / "absent.json")])
        captured = capsys.readouterr()
        assert status == 1
        assert "error:" in captured.err

    def test_invalid_scenario_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "files": []}', encoding="utf-8")
        status = main(["run", str(path)])
        captured = capsys.readouterr()
        assert status == 1
        assert "error:" in captured.err


class TestSchedulers:
    def test_lists_registry(self, capsys):
        status = main(["schedulers"])
        out = capsys.readouterr().out
        assert status == 0
        for name in ("two-task", "three-task", "double-reduction",
                     "single-reduction", "greedy", "exact", "harmonic"):
            assert name in out


class TestDesign:
    def test_basic_design(self, capsys):
        status = main(
            ["design", "--file", "pos:4:2:2", "--file", "map:6:5:1"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "bandwidth" in out
        assert "program" in out
        assert "pos'" in out

    def test_forced_bandwidth(self, capsys):
        status = main(
            ["design", "--file", "a:1:4", "--bandwidth", "2"]
        )
        assert status == 0
        assert "bandwidth : 2" in capsys.readouterr().out

    def test_infeasible_bandwidth_is_clean_error(self, capsys):
        status = main(
            ["design", "--file", "a:4:2", "--bandwidth", "1"]
        )
        captured = capsys.readouterr()
        assert status == 1
        assert "error:" in captured.err

    def test_bad_file_syntax_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["design", "--file", "nonsense"])
        assert excinfo.value.code == 2

    def test_periods_flag(self, capsys):
        status = main(
            ["design", "--file", "a:1:2", "--file", "b:1:3",
             "--periods", "2"]
        )
        assert status == 0


class TestGeneralized:
    def test_example5_shape(self, capsys):
        status = main(
            ["generalized", "--file", "F:2:5,6,6", "--file", "H:1:9,12"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "transform" in out
        assert "F'" in out

    def test_bad_vector_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["generalized", "--file", "F:3:5,3"])
        assert excinfo.value.code == 2


class TestDelayTable:
    def test_figure7_regeneration(self, capsys):
        status = main(
            [
                "delay-table",
                "--file", "A:5:10",
                "--file", "B:3:6",
                "--errors", "3",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        lines = [line for line in out.splitlines() if "|" in line]
        assert len(lines) == 5  # header + rows 0..3

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
