"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDesign:
    def test_basic_design(self, capsys):
        status = main(
            ["design", "--file", "pos:4:2:2", "--file", "map:6:5:1"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "bandwidth" in out
        assert "program" in out
        assert "pos'" in out

    def test_forced_bandwidth(self, capsys):
        status = main(
            ["design", "--file", "a:1:4", "--bandwidth", "2"]
        )
        assert status == 0
        assert "bandwidth : 2" in capsys.readouterr().out

    def test_infeasible_bandwidth_is_clean_error(self, capsys):
        status = main(
            ["design", "--file", "a:4:2", "--bandwidth", "1"]
        )
        captured = capsys.readouterr()
        assert status == 1
        assert "error:" in captured.err

    def test_bad_file_syntax_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["design", "--file", "nonsense"])
        assert excinfo.value.code == 2

    def test_periods_flag(self, capsys):
        status = main(
            ["design", "--file", "a:1:2", "--file", "b:1:3",
             "--periods", "2"]
        )
        assert status == 0


class TestGeneralized:
    def test_example5_shape(self, capsys):
        status = main(
            ["generalized", "--file", "F:2:5,6,6", "--file", "H:1:9,12"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "transform" in out
        assert "F'" in out

    def test_bad_vector_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["generalized", "--file", "F:3:5,3"])
        assert excinfo.value.code == 2


class TestDelayTable:
    def test_figure7_regeneration(self, capsys):
        status = main(
            [
                "delay-table",
                "--file", "A:5:10",
                "--file", "B:3:6",
                "--errors", "3",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        lines = [line for line in out.splitlines() if "|" in line]
        assert len(lines) == 5  # header + rows 0..3

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
