"""Unit tests for the telemetry registry: instruments, stability
classes, the activation stack, and the exact merge contract.

The merge contract is the load-bearing claim of :mod:`repro.obs`: a
registry merged from per-shard payloads must equal the registry a
serial run would have produced, bit for bit, for every instrument whose
stability is "exact".  Counters sum, histogram buckets add elementwise
(integer-valued, so float addition is exact below 2**53), and gauges
take the max.
"""

import pytest

from repro.errors import SpecificationError
from repro.obs import telemetry as obs
from repro.obs.telemetry import (
    DEFAULT_BOUNDS,
    TIME_BOUNDS,
    Telemetry,
)


class TestInstruments:
    def test_counter_add_and_value(self):
        tel = Telemetry()
        tel.inc("requests")
        tel.inc("requests", 4)
        assert tel.value("requests") == 5

    def test_counter_labels_are_order_insensitive(self):
        tel = Telemetry()
        tel.inc("hits", tier="memory", engine="soa")
        tel.inc("hits", engine="soa", tier="memory")
        assert tel.value("hits", tier="memory", engine="soa") == 2

    def test_distinct_labels_are_distinct_cells(self):
        tel = Telemetry()
        tel.inc("hits", tier="memory")
        tel.inc("hits", tier="disk")
        assert tel.value("hits", tier="memory") == 1
        assert tel.value("hits", tier="disk") == 1
        assert tel.value("hits") is None  # unlabeled cell never touched

    def test_gauge_set(self):
        tel = Telemetry()
        tel.gauge("workers", 8.0)
        tel.gauge("workers", 2.0)
        assert tel.value("workers") == 2.0

    def test_histogram_bucketing(self):
        tel = Telemetry()
        for v in (0.5, 1.0, 3.0, 1_000_000_000.0):
            tel.observe("latency", v)
        hist = tel.get_histogram("latency")
        assert hist.count == 4
        assert hist.total == pytest.approx(1_000_000_004.5)
        assert hist.vmin == 0.5
        assert hist.vmax == 1_000_000_000.0
        # 0.5 and 1.0 land in the <=1.0 bucket; 3.0 in <=4.0; the
        # billion overflows every finite bound into the +Inf bucket.
        assert sum(hist.counts) == 4
        assert hist.counts[0] == 2
        assert hist.counts[-1] == 1

    def test_histogram_rejects_unsorted_bounds(self):
        tel = Telemetry()
        with pytest.raises(SpecificationError):
            tel.histogram("bad", bounds=(2.0, 1.0))

    def test_unknown_stability_rejected(self):
        tel = Telemetry()
        with pytest.raises(SpecificationError):
            tel.inc("x", stability="wobbly")

    def test_first_registration_fixes_stability(self):
        tel = Telemetry()
        tel.inc("x", stability="shape")
        tel.inc("x")  # later default-exact lookups reuse the cell
        (record,) = tel.to_dict(spans=False)["metrics"]
        assert record["stability"] == "shape"
        assert record["value"] == 2

    def test_kind_conflict_rejected(self):
        tel = Telemetry()
        tel.inc("x")
        with pytest.raises(SpecificationError):
            tel.observe("x", 1.0)

    def test_default_bounds_are_powers_of_two(self):
        assert DEFAULT_BOUNDS[0] == 1.0
        assert DEFAULT_BOUNDS[-1] == float(1 << 20)
        assert list(TIME_BOUNDS) == sorted(TIME_BOUNDS)


class TestActivationStack:
    def test_module_helpers_are_noops_when_inactive(self):
        assert obs.current() is None
        obs.inc("nothing")  # must not raise, must not record anywhere
        obs.observe("nothing", 1.0)
        obs.gauge("nothing", 1.0)
        with obs.span("nothing") as span:
            assert span is None

    def test_capture_activates_and_restores(self):
        assert obs.current() is None
        with obs.capture() as tel:
            assert obs.current() is tel
            obs.inc("seen")
        assert obs.current() is None
        assert tel.value("seen") == 1

    def test_capture_nests(self):
        with obs.capture() as outer:
            with obs.capture() as inner:
                obs.inc("x")
            obs.inc("y")
        assert inner.value("x") == 1
        assert inner.value("y") is None
        assert outer.value("y") == 1
        assert outer.value("x") is None

    def test_activate_deactivate_pair(self):
        tel = Telemetry()
        assert obs.activate(tel) is tel
        try:
            assert obs.current() is tel
        finally:
            assert obs.deactivate() is tel
        assert obs.current() is None


class TestMerge:
    def test_counters_sum(self):
        a, b = Telemetry(), Telemetry()
        a.inc("n", 3)
        b.inc("n", 4)
        b.inc("other", 1)
        a.merge(b)
        assert a.value("n") == 7
        assert a.value("other") == 1

    def test_gauges_take_max(self):
        a, b = Telemetry(), Telemetry()
        a.gauge("depth", 2.0)
        b.gauge("depth", 5.0)
        a.merge(b)
        assert a.value("depth") == 5.0

    def test_histograms_add_buckets(self):
        a, b = Telemetry(), Telemetry()
        a.observe("lat", 1.0)
        b.observe("lat", 3.0)
        b.observe("lat", 100.0)
        a.merge(b)
        hist = a.get_histogram("lat")
        assert hist.count == 3
        assert hist.vmin == 1.0
        assert hist.vmax == 100.0

    def test_histogram_bounds_mismatch_raises(self):
        a, b = Telemetry(), Telemetry()
        a.observe("lat", 1.0, bounds=(1.0, 2.0))
        b.observe("lat", 1.0, bounds=(1.0, 4.0))
        with pytest.raises(SpecificationError):
            a.merge(b)

    def test_merge_dict_equals_merge(self):
        shard = Telemetry()
        shard.inc("n", 9, tier="x")
        shard.observe("lat", 2.0)
        shard.gauge("g", 4.0)
        via_obj, via_dict = Telemetry(), Telemetry()
        via_obj.merge(shard)
        via_dict.merge_dict(shard.to_dict())
        assert via_obj.deterministic_dict() == via_dict.deterministic_dict()

    def test_merge_is_order_independent_for_exact(self):
        shards = []
        for i in range(3):
            t = Telemetry()
            t.inc("n", i + 1)
            t.observe("lat", float(i))
            shards.append(t.to_dict())
        forward, backward = Telemetry(), Telemetry()
        for payload in shards:
            forward.merge_dict(payload)
        for payload in reversed(shards):
            backward.merge_dict(payload)
        assert (
            forward.deterministic_dict() == backward.deterministic_dict()
        )


class TestSerialization:
    def test_round_trip(self):
        tel = Telemetry()
        tel.inc("n", 2, tier="disk")
        tel.observe("lat", 3.0)
        tel.gauge("g", 1.5)
        with tel.span("work", kind="test"):
            pass
        clone = Telemetry.from_dict(tel.to_dict())
        assert clone.value("n", tier="disk") == 2
        assert clone.get_histogram("lat").count == 1
        assert clone.value("g") == 1.5
        assert clone.to_dict() == tel.to_dict()

    def test_deterministic_dict_excludes_volatile(self):
        tel = Telemetry()
        tel.inc("n")  # exact
        tel.inc("m", stability="shape")
        tel.gauge("g", 2.0)  # volatile
        names = {
            entry["name"] for entry in tel.deterministic_dict()["metrics"]
        }
        assert names == {"n"}

    def test_to_dict_stability_filter(self):
        tel = Telemetry()
        tel.inc("n")
        tel.inc("m", stability="shape")
        shape_only = tel.to_dict(stability=("shape",))
        assert [e["name"] for e in shape_only["metrics"]] == ["m"]
