"""Exporters: directory layout, JSON/JSONL round trips, the Prometheus
textfile dialect, and the summarize renderer."""

import json

import pytest

from repro.errors import SpecificationError
from repro.obs.export import (
    METRICS_PROM,
    TELEMETRY_JSON,
    TRACE_JSONL,
    embed,
    export_directory,
    load_directory,
    prometheus_text,
)
from repro.obs.summarize import aggregate_span_tree, render_summary
from repro.obs.telemetry import Telemetry


def sample_registry() -> Telemetry:
    tel = Telemetry()
    tel.inc("solve.attempts", 3, scheduler="simple")
    tel.gauge("sweep.workers", 2.0)
    tel.observe("latency", 1.0, bounds=(1.0, 4.0), unit="slots")
    tel.observe("latency", 3.0, bounds=(1.0, 4.0), unit="slots")
    tel.observe("latency", 9.0, bounds=(1.0, 4.0), unit="slots")
    with tel.span("cell", key="k"):
        with tel.span("solve"):
            pass
    return tel


class TestDirectoryRoundTrip:
    def test_export_writes_all_three_files(self, tmp_path):
        out = export_directory(sample_registry(), tmp_path / "tel")
        assert (tmp_path / "tel" / TELEMETRY_JSON).is_file()
        assert (tmp_path / "tel" / TRACE_JSONL).is_file()
        assert (tmp_path / "tel" / METRICS_PROM).is_file()
        assert set(out) == {"json", "trace", "prometheus"}

    def test_load_directory_round_trips_metrics_and_spans(self, tmp_path):
        tel = sample_registry()
        export_directory(tel, tmp_path / "tel")
        loaded = load_directory(tmp_path / "tel")
        assert loaded.value("solve.attempts", scheduler="simple") == 3
        assert loaded.get_histogram("latency").count == 3
        assert sorted(s.name for s in loaded.spans) == ["cell", "solve"]
        # Parent/child linkage survives the JSONL hop.
        by_name = {s.name: s for s in loaded.spans}
        assert by_name["solve"].parent == by_name["cell"].id

    def test_load_accepts_bare_json_file(self, tmp_path):
        tel = sample_registry()
        export_directory(tel, tmp_path / "tel")
        loaded = load_directory(tmp_path / "tel" / TELEMETRY_JSON)
        assert loaded.value("solve.attempts", scheduler="simple") == 3

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(SpecificationError):
            load_directory(tmp_path / "nope")

    def test_trace_jsonl_is_one_span_per_line(self, tmp_path):
        export_directory(sample_registry(), tmp_path / "tel")
        lines = (
            (tmp_path / "tel" / TRACE_JSONL)
            .read_text(encoding="utf-8")
            .splitlines()
        )
        assert len(lines) == 2
        assert all(json.loads(line)["name"] for line in lines)


class TestEmbed:
    def test_embed_attaches_metrics_without_spans(self):
        record = {"scenario": "x"}
        embed(sample_registry(), record)
        assert record["telemetry"]["version"] == 1
        assert "spans" not in record["telemetry"]
        names = {m["name"] for m in record["telemetry"]["metrics"]}
        assert "solve.attempts" in names


class TestPrometheus:
    def test_counter_gets_total_suffix_and_type(self):
        text = prometheus_text(sample_registry())
        assert "# TYPE repro_solve_attempts_total counter" in text
        assert (
            'repro_solve_attempts_total{scheduler="simple"} 3' in text
        )

    def test_gauge_line(self):
        text = prometheus_text(sample_registry())
        assert "# TYPE repro_sweep_workers gauge" in text
        assert "repro_sweep_workers 2.0" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = prometheus_text(sample_registry())
        assert 'repro_latency_bucket{le="1.0"} 1' in text
        assert 'repro_latency_bucket{le="4.0"} 2' in text
        assert 'repro_latency_bucket{le="+Inf"} 3' in text
        assert "repro_latency_sum 13.0" in text
        assert "repro_latency_count 3" in text

    def test_label_values_are_escaped(self):
        tel = Telemetry()
        tel.inc("odd", key='a"b\\c')
        text = prometheus_text(tel)
        assert 'key="a\\"b\\\\c"' in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(Telemetry()) == ""


class TestSummarize:
    def test_render_summary_sections(self, tmp_path):
        export_directory(sample_registry(), tmp_path / "tel")
        text = render_summary(tmp_path / "tel")
        assert "counters:" in text
        assert "solve.attempts{scheduler=simple}" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "spans: 2 recorded" in text
        # The solve row is indented one level under its cell parent.
        cell_line = next(l for l in text.splitlines() if "cell" in l)
        solve_line = next(l for l in text.splitlines() if "solve " in l)
        cell_indent = len(cell_line) - len(cell_line.lstrip())
        solve_indent = len(solve_line) - len(solve_line.lstrip())
        assert solve_indent > cell_indent

    def test_aggregate_span_tree_counts(self):
        tel = Telemetry()
        for _ in range(3):
            with tel.span("cell"):
                with tel.span("solve"):
                    pass
        root = aggregate_span_tree(tel)
        (cell,) = root.children.values()
        assert cell.count == 3
        (solve,) = cell.children.values()
        assert solve.count == 3
