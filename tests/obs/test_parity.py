"""The two headline telemetry invariants, as property tests.

1. **Telemetry is invisible.**  Running any pipeline with telemetry
   active produces bit-identical results to running without it - the
   instruments observe, they never touch an RNG or reorder events.
2. **Sharding is invisible to exact telemetry.**  The "exact"-stability
   subset of a serial run's registry equals the merged registries of a
   sharded (``workers=2``) run, bit for bit - the same merge contract
   :meth:`TrafficMetrics.merged` pins for the simulation results
   themselves.

Wall-clock fields (spans, gauges, ``requests_per_sec``, ``elapsed``)
are excluded by construction: the exact subset contains none of them.
"""

import json

import pytest

from repro.api import Scenario
from repro.bdisk.multidisk import build_multidisk_program, config_from_demand
from repro.obs import telemetry as obs
from repro.sim.faults import BernoulliFaults
from repro.sweep import SweepAxis, SweepSpec, run_sweep
from repro.traffic import TrafficSpec, simulate_traffic


def multidisk_world():
    files = [("hot", 2), ("warm", 3), ("cold", 4)]
    program = build_multidisk_program(
        config_from_demand(
            files, {"hot": 6.0, "warm": 2.0, "cold": 1.0}, levels=(4, 2, 1)
        )
    )
    return program, [name for name, _ in files], dict(files)


def traffic_kwargs():
    program, catalogue, sizes = multidisk_world()
    spec = TrafficSpec(
        clients=24, duration=200, requests_per_client=2,
        think_time=3, seed=29,
    )
    return dict(
        program=program,
        catalogue=catalogue,
        spec=spec,
        file_sizes=sizes,
        deadlines={name: 10_000 for name in catalogue},
        faults=BernoulliFaults(0.05, seed=3),
    )


def sweep_spec() -> SweepSpec:
    base = Scenario.from_dict({
        "name": "parity-base",
        "files": [
            {"name": "pos", "blocks": 2, "latency": 2, "fault_budget": 1},
            {"name": "map", "blocks": 3, "latency": 6},
        ],
        "workload": {"requests": 8, "horizon": 50, "seed": 3},
        "traffic": {
            "clients": 10, "duration": 100,
            "requests_per_client": 2, "seed": 17,
        },
    })
    return SweepSpec(
        name="parity-grid",
        base=base,
        axes=(
            SweepAxis("faults.kind", ("bernoulli",)),
            SweepAxis("faults.probability", (0.0, 0.1)),
        ),
    )


def engines():
    yield "object"
    try:
        import numpy  # noqa: F401
    except ImportError:
        return
    yield "soa"


class TestTelemetryIsInvisible:
    @pytest.mark.parametrize("engine", engines())
    @pytest.mark.parametrize("workers", [1, 2])
    def test_traffic_results_bit_identical(self, engine, workers):
        kwargs = traffic_kwargs()
        plain = simulate_traffic(
            engine=engine, max_workers=workers, **kwargs
        )
        with obs.capture():
            observed = simulate_traffic(
                engine=engine, max_workers=workers, **kwargs
            )
        assert observed.to_dict().keys() == plain.to_dict().keys()
        a, b = observed.to_dict(), plain.to_dict()
        a.pop("requests_per_sec"), b.pop("requests_per_sec")
        assert a == b

    def test_server_run_bit_identical(self):
        from repro.bdisk.file import FileSpec
        from repro.ida.aida import RedundancyPolicy
        from repro.server.script import MutationScript, run_script

        def run():
            policy = RedundancyPolicy({
                "surveillance": {"pos": 0, "map": 0},
                "combat": {"pos": 1, "map": 0},
            })
            scenario = Scenario(
                name="awacs-live",
                files=(FileSpec("pos", 2, 5), FileSpec("map", 2, 8)),
                redundancy=policy,
                mode="surveillance",
                traffic=TrafficSpec(
                    clients=8, requests_per_client=6, duration=400,
                    think_time=2, seed=7,
                ),
            )
            script = MutationScript.from_payload([
                {
                    "at_slot": 50,
                    "mutation": {"kind": "mode_change", "mode": "combat"},
                },
            ])
            return run_script(scenario, script).to_dict()

        plain = run()
        with obs.capture():
            observed = run()
        # cache_delta is part of the record and deterministic too, so
        # the comparison needs no field exclusions at all.
        assert json.loads(json.dumps(observed)) == json.loads(
            json.dumps(plain)
        )

    def test_sweep_rows_bit_identical(self, tmp_path):
        def rows(tag, telemetry):
            if telemetry:
                with obs.capture():
                    result = run_sweep(
                        sweep_spec(),
                        store_path=tmp_path / f"{tag}.jsonl",
                        cache_dir=tmp_path / f"{tag}-cache",
                    )
            else:
                result = run_sweep(
                    sweep_spec(),
                    store_path=tmp_path / f"{tag}.jsonl",
                    cache_dir=tmp_path / f"{tag}-cache",
                )
            out = []
            for row in result.rows:
                row = json.loads(json.dumps(row))
                row.pop("elapsed", None)
                traffic = row.get("result", {}).get("traffic")
                if traffic:
                    traffic.pop("requests_per_sec", None)
                out.append(row)
            return out

        assert rows("plain", False) == rows("telemetry", True)


class TestShardingIsInvisibleToExactTelemetry:
    @pytest.mark.parametrize("engine", engines())
    def test_traffic_serial_equals_merged_shards(self, engine):
        kwargs = traffic_kwargs()
        with obs.capture() as serial:
            simulate_traffic(engine=engine, max_workers=1, **kwargs)
        with obs.capture() as sharded:
            simulate_traffic(engine=engine, max_workers=2, **kwargs)
        assert (
            serial.deterministic_dict() == sharded.deterministic_dict()
        )
        # Sanity: the exact subset is non-trivial.
        names = {
            m["name"] for m in serial.deterministic_dict()["metrics"]
        }
        assert "traffic.requests" in names
        assert "traffic.latency_slots" in names

    def test_sweep_serial_equals_merged_shards(self, tmp_path):
        def capture(tag, workers):
            with obs.capture() as tel:
                run_sweep(
                    sweep_spec(),
                    max_workers=workers,
                    store_path=tmp_path / f"{tag}.jsonl",
                    cache_dir=tmp_path / f"{tag}-cache",
                )
            return tel

        serial = capture("serial", None)
        sharded = capture("sharded", 2)
        assert (
            serial.deterministic_dict() == sharded.deterministic_dict()
        )
        names = {
            m["name"] for m in serial.deterministic_dict()["metrics"]
        }
        assert "sweep.cells.executed" in names
        assert "solve_cache.solves" in names
