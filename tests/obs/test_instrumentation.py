"""Instrumentation coverage: the library paths wired into ``repro.obs``
actually record - and record nothing when telemetry is inactive."""

import warnings

import pytest

from repro.api import Scenario
from repro.bdisk.file import FileSpec
from repro.obs import telemetry as obs
from repro.sim.faults import BernoulliFaults, NoFaults, lost_in
from repro.sweep import SolveCache
from repro.sweep.store import RunStore
from repro.traffic import TrafficSpec, simulate_traffic

from repro.bdisk.multidisk import build_multidisk_program, config_from_demand


def multidisk_world():
    files = [("hot", 2), ("warm", 3), ("cold", 4)]
    program = build_multidisk_program(
        config_from_demand(
            files, {"hot": 6.0, "warm": 2.0, "cold": 1.0}, levels=(4, 2, 1)
        )
    )
    return program, [name for name, _ in files], dict(files)


def scenario(**overrides) -> Scenario:
    params = dict(
        name="instrumented",
        files=(
            FileSpec("pos", 2, 2, fault_budget=1),
            FileSpec("map", 3, 6),
        ),
    )
    params.update(overrides)
    return Scenario(**params)


class TestSolverCounters:
    def test_solve_records_attempts_and_successes(self):
        with obs.capture() as tel:
            SolveCache().design_for(scenario())
        records = {
            (name, labels): inst.value
            for name, labels, inst in tel.instruments()
            if inst.kind == "counter" and name.startswith("solve.")
        }
        attempts = sum(
            v for (n, _), v in records.items() if n == "solve.attempts"
        )
        successes = sum(
            v for (n, _), v in records.items() if n == "solve.successes"
        )
        assert attempts >= 1
        assert successes == 1
        hist = next(
            inst
            for name, _, inst in tel.instruments()
            if name == "solve.seconds"
        )
        assert hist.count == attempts
        assert hist.stability == "volatile"


class TestCacheCounters:
    def test_hits_misses_and_tiers(self, tmp_path):
        with obs.capture() as tel:
            cache = SolveCache(str(tmp_path))
            cache.design_for(scenario())
            cache.design_for(scenario())  # memory hit
            cold = SolveCache(str(tmp_path))
            cold.design_for(scenario())  # disk hit
        assert tel.value("solve_cache.misses") == 1
        assert tel.value("solve_cache.hits", tier="memory") == 1
        assert tel.value("solve_cache.hits", tier="disk") == 1
        assert tel.value("solve_cache.solves") == 1

    def test_snapshot_diff_brackets_one_operation(self):
        cache = SolveCache()
        cache.design_for(scenario())
        before = cache.snapshot()
        cache.design_for(scenario())  # one hit
        delta = cache.diff(before)
        assert delta == {
            "hits": 1, "misses": 0, "solves": 0, "lock_waits": 0,
        }

    def test_diff_tolerates_missing_keys(self):
        cache = SolveCache()
        cache.design_for(scenario())
        assert cache.diff({})["misses"] == 1


class TestStoreTornLineWarning:
    def rows(self):
        return [
            {"key": "a=1", "value": 1},
            {"key": "a=2", "value": 2},
        ]

    def test_heal_on_append_warns_with_byte_offset(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(str(path))
        for row in self.rows():
            store.append(row)
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"key": "a=3", "val')  # torn tail
        size = path.stat().st_size
        with obs.capture() as tel:
            with pytest.warns(RuntimeWarning) as caught:
                RunStore(str(path)).append({"key": "a=3", "value": 3})
        message = str(caught[0].message)
        assert "torn final run-store line" in message
        assert f"bytes {len(intact)}..{size} of {size}" in message
        assert tel.value("sweep.store.torn_lines", healed="true") == 1
        # The heal left exactly the intact rows plus the re-append.
        assert [r["key"] for r in RunStore(str(path)).rows()] == [
            "a=1", "a=2", "a=3",
        ]

    def test_intact_store_does_not_warn(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(str(path))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for row in self.rows():
                store.append(row)
            assert len(list(RunStore(str(path)).rows())) == 2


class TestFaultCounters:
    def test_batches_counted_for_real_models_only(self):
        model = BernoulliFaults(0.5, seed=1)
        with obs.capture() as tel:
            lost_in(model, [1, 2, 3])
            lost_in(NoFaults(), [4, 5])
        assert tel.value("faults.draw_batches") == 1
        assert tel.value("faults.slots_drawn") == 3

    def test_decisions_are_identical_with_telemetry_on(self):
        plain = lost_in(BernoulliFaults(0.5, seed=7), range(64))
        with obs.capture():
            observed = lost_in(BernoulliFaults(0.5, seed=7), range(64))
        assert observed == plain


class TestTrafficCounters:
    def test_object_engine_records_requests_and_retrievals(self):
        program, catalogue, sizes = multidisk_world()
        spec = TrafficSpec(
            clients=12, duration=120, requests_per_client=2,
            think_time=2, seed=5,
        )
        with obs.capture() as tel:
            result = simulate_traffic(
                program, catalogue, spec,
                file_sizes=sizes,
                deadlines={name: 10_000 for name in catalogue},
            )
        assert (
            tel.value("traffic.requests", engine="object")
            == result.requests
        )
        assert (
            tel.value("traffic.completions", engine="object")
            == result.completions
        )
        hist = tel.get_histogram("traffic.latency_slots", engine="object")
        assert hist.count == result.completions
        walks = tel.value(
            "traffic.retrievals", oracle="plain", kind="walk"
        )
        memos = tel.value(
            "traffic.retrievals", oracle="plain", kind="memo"
        )
        assert walks is not None and memos is not None
        assert walks + memos == result.requests

    def test_nothing_recorded_without_capture(self):
        program, catalogue, sizes = multidisk_world()
        spec = TrafficSpec(
            clients=6, duration=80, requests_per_client=1, seed=5,
        )
        before = obs.current()
        simulate_traffic(
            program, catalogue, spec,
            file_sizes=sizes,
            deadlines={name: 10_000 for name in catalogue},
        )
        assert obs.current() is before is None


class TestMultichannelInstrumentation:
    def channel_set(self, *, tuning_cost=2, quorum=1, assignment="striped"):
        from repro.api.scenario import ChannelSpec
        from repro.bdisk.multichannel import design_multichannel_program

        files = [
            FileSpec("a", 2, 10),
            FileSpec("b", 3, 15),
            FileSpec("c", 2, 20),
            FileSpec("d", 4, 30),
        ]
        return design_multichannel_program(
            files,
            ChannelSpec(
                count=2,
                assignment=assignment,
                tuning_cost=tuning_cost,
                quorum=quorum,
            ),
        ).channel_set

    def test_tuning_switch_counter_matches_metrics(self):
        channels = self.channel_set()
        with obs.capture() as tel:
            result = simulate_traffic(
                None,
                ("a", "b", "c", "d"),
                TrafficSpec(clients=30, duration=200, seed=17),
                file_sizes={"a": 2, "b": 3, "c": 2, "d": 4},
                deadlines={n: 10_000 for n in ("a", "b", "c", "d")},
                channels=channels,
            )
        switches = sum(
            inst.value
            for name, _, inst in tel.instruments()
            if name == "traffic.tuning.switches"
        )
        assert switches == result.metrics.channel_switches
        assert switches > 0

    def test_quorum_read_counter_labels_outcomes(self):
        from repro.rtdb import TemporalItemSpec, TemporalSpec

        channels = self.channel_set(
            assignment="replicated", quorum=2, tuning_cost=1
        )
        temporal = TemporalSpec(
            slot_ms=10,
            items=tuple(
                TemporalItemSpec(n, blocks=b, max_age_ms=4000)
                for n, b in (("a", 2), ("b", 3), ("c", 2), ("d", 4))
            ),
            update_periods={n: 400 for n in ("a", "b", "c", "d")},
        )
        with obs.capture() as tel:
            result = simulate_traffic(
                None,
                ("a", "b", "c", "d"),
                TrafficSpec(clients=20, duration=200, seed=17),
                file_sizes={"a": 2, "b": 3, "c": 2, "d": 4},
                deadlines={n: 10_000 for n in ("a", "b", "c", "d")},
                channels=channels,
                temporal=temporal,
            )
        by_outcome = {}
        for name, labels, inst in tel.instruments():
            if name == "traffic.quorum.reads":
                outcome = dict(labels)["outcome"]
                by_outcome[outcome] = (
                    by_outcome.get(outcome, 0) + inst.value
                )
        assert by_outcome == dict(result.metrics.quorum_reads)

    def test_mutation_spans_carry_the_channel_label(self):
        from repro.api.scenario import ChannelSpec
        from repro.server.mutations import AddFile
        from repro.server.server import BroadcastServer

        scenario = Scenario(
            name="mc-tel",
            files=(
                FileSpec("a", 2, 10),
                FileSpec("b", 3, 15),
                FileSpec("c", 2, 20),
                FileSpec("d", 4, 30),
            ),
            channels=ChannelSpec(count=2),
        )
        with obs.capture() as tel:
            server = BroadcastServer(scenario)
            server.apply(
                AddFile(file={"name": "e", "blocks": 2, "latency": 25})
            )
            server.close()
        searches = [
            span
            for span in tel.spans
            if span.name == "server.mutation.splice_search"
        ]
        assert sorted(s.attrs["channel"] for s in searches) == [0, 1]
        splices = {
            int(dict(labels)["channel"]): inst.value
            for name, labels, inst in tel.instruments()
            if name == "server.channel.splices"
        }
        assert splices == {0: 1, 1: 1}
