"""Trace spans: nesting, the bounded ring, and pre-measured records."""

from repro.obs.spans import Span, SpanRing
from repro.obs.telemetry import Telemetry


class TestNesting:
    def test_child_records_parent_id(self):
        tel = Telemetry()
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                assert inner.parent == outer.id
        spans = list(tel.spans)
        # Children close (and land in the ring) before their parents.
        assert [s.name for s in spans] == ["inner", "outer"]
        assert spans[1].parent is None

    def test_durations_are_monotonic_nonnegative(self):
        tel = Telemetry()
        with tel.span("work"):
            sum(range(1000))
        (span,) = tel.spans
        assert span.wall >= 0.0
        assert span.cpu >= 0.0

    def test_attrs_survive_round_trip(self):
        tel = Telemetry()
        with tel.span("cell", key="a=1", n=3):
            pass
        (span,) = tel.spans
        clone = Span.from_dict(span.to_dict())
        assert clone.attrs == {"key": "a=1", "n": 3}
        assert clone.id == span.id
        assert clone.wall == span.wall

    def test_out_of_order_close_does_not_corrupt_the_stack(self):
        ring = SpanRing()
        outer = ring.open("outer", {})
        ring.open("inner", {})  # never closed explicitly
        ring.close(outer)  # closes outer, discards the dangling inner
        assert ring.current_id() is None
        assert [s.name for s in ring] == ["outer"]


class TestRing:
    def test_capacity_bound_counts_drops(self):
        ring = SpanRing(capacity=4)
        for i in range(7):
            ring.close(ring.open(f"s{i}", {}))
        assert len(ring) == 4
        assert ring.dropped == 3
        assert [s.name for s in ring] == ["s3", "s4", "s5", "s6"]

    def test_record_premeasured_span(self):
        ring = SpanRing()
        span = ring.record("queue", 1.25, lo=0, hi=8)
        assert span.wall == 1.25
        assert span.attrs == {"lo": 0, "hi": 8}
        assert len(ring) == 1

    def test_record_inside_open_span_nests(self):
        ring = SpanRing()
        parent = ring.open("cell", {})
        child = ring.record("queue", 0.5)
        ring.close(parent)
        assert child.parent == parent.id

    def test_extend_merges_foreign_spans_and_drops(self):
        a, b = SpanRing(), SpanRing()
        b.close(b.open("remote", {}))
        a.extend(b.to_list(), dropped=2)
        assert [s.name for s in a] == ["remote"]
        assert a.dropped == 2
        # Origin tokens differ, so merged ids cannot collide.
        assert all(s.id.startswith(b.origin) for s in a)

    def test_distinct_rings_have_distinct_origins(self):
        assert SpanRing().origin != SpanRing().origin
