"""Tests for AIDA: the bandwidth-allocation step and redundancy policies."""

import pytest

from repro.errors import DispersalError, SpecificationError
from repro.ida.aida import (
    AidaEncoder,
    RedundancyPolicy,
    bandwidth_allocation,
    tolerable_faults,
)
from repro.ida.dispersal import disperse, reconstruct


class TestTolerableFaults:
    def test_difference(self):
        assert tolerable_faults(8, 5) == 3
        assert tolerable_faults(5, 5) == 0

    def test_rejects_under_m(self):
        with pytest.raises(DispersalError):
            tolerable_faults(4, 5)


class TestBandwidthAllocation:
    def test_selects_prefix(self):
        blocks = disperse(b"data", 2, 6)
        chosen = bandwidth_allocation(blocks, 4)
        assert [b.index for b in chosen] == [0, 1, 2, 3]

    def test_bounds_enforced(self):
        blocks = disperse(b"data", 2, 6)
        with pytest.raises(DispersalError):
            bandwidth_allocation(blocks, 1)
        with pytest.raises(DispersalError):
            bandwidth_allocation(blocks, 7)

    def test_partial_dispersal_rejected(self):
        blocks = disperse(b"data", 2, 6)
        with pytest.raises(DispersalError, match="full dispersal"):
            bandwidth_allocation(blocks[:4], 3)

    def test_empty_rejected(self):
        with pytest.raises(DispersalError):
            bandwidth_allocation([], 3)


class TestAidaEncoder:
    def test_scaling_redundancy_without_redispersal(self):
        """The same dispersal serves every redundancy level (Figure 4)."""
        data = b"alpha bravo charlie" * 5
        encoder = AidaEncoder("F", data, m=4, n_max=10)
        for n in range(4, 11):
            transmitted = encoder.transmission_set(n)
            assert len(transmitted) == n
            assert encoder.reconstruct_from(transmitted[-4:]) == data

    def test_fault_tolerance_helper(self):
        encoder = AidaEncoder("F", b"x" * 50, m=3, n_max=8)
        assert len(encoder.for_fault_tolerance(2)) == 5
        with pytest.raises(SpecificationError):
            encoder.for_fault_tolerance(-1)

    def test_rejects_n_max_below_m(self):
        with pytest.raises(SpecificationError):
            AidaEncoder("F", b"x", m=5, n_max=4)

    def test_systematic_no_redundancy_mode_is_plaintext(self):
        data = b"0123456789abcdef"
        encoder = AidaEncoder("F", data, m=4, n_max=8, systematic=True)
        plain = encoder.transmission_set(4)
        joined = b"".join(b.payload for b in plain)
        assert joined[: len(data)] == data

    def test_blocks_property_returns_copy(self):
        encoder = AidaEncoder("F", b"zz", m=1, n_max=3)
        blocks = encoder.blocks
        blocks.clear()
        assert len(encoder.blocks) == 3


class TestRedundancyPolicy:
    def make_policy(self) -> RedundancyPolicy:
        return RedundancyPolicy(
            {
                "combat": {"radar": 3, "map": 1},
                "landing": {"radar": 0},
            },
            default=0,
        )

    def test_lookup(self):
        policy = self.make_policy()
        assert policy.fault_budget("combat", "radar") == 3
        assert policy.fault_budget("landing", "radar") == 0
        assert policy.fault_budget("landing", "map") == 0  # default
        assert policy.fault_budget("unknown-mode", "radar") == 0

    def test_transmission_count(self):
        policy = self.make_policy()
        assert policy.transmission_count("combat", "radar", m=5) == 8

    def test_modes_listing(self):
        assert set(self.make_policy().modes()) == {"combat", "landing"}

    def test_rejects_negative_budgets(self):
        with pytest.raises(SpecificationError):
            RedundancyPolicy({"m": {"f": -1}})
        with pytest.raises(SpecificationError):
            RedundancyPolicy({}, default=-2)

    def test_policy_drives_encoder(self):
        """Policy + encoder: the mode picks the transmission set size."""
        policy = self.make_policy()
        data = b"radar-sweep" * 3
        encoder = AidaEncoder("radar", data, m=2, n_max=6)
        for mode in policy.modes():
            n = policy.transmission_count(mode, "radar", m=2)
            transmitted = encoder.transmission_set(n)
            assert reconstruct(transmitted[:2]) == data
