"""Tests for dispersal matrices: the any-m-rows-independent property."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DispersalError
from repro.ida.matrix import gf_identity, is_nonsingular
from repro.ida.vandermonde import (
    dispersal_matrix,
    reconstruction_matrix,
    systematic_dispersal_matrix,
)


class TestConstruction:
    def test_shape(self):
        assert dispersal_matrix(10, 5).shape == (10, 5)

    def test_first_column_ones(self):
        matrix = dispersal_matrix(6, 3)
        assert (matrix[:, 0] == 1).all()

    def test_rejects_n_below_m(self):
        with pytest.raises(DispersalError):
            dispersal_matrix(3, 5)

    def test_rejects_field_overflow(self):
        with pytest.raises(DispersalError):
            dispersal_matrix(256, 2)

    def test_rejects_bad_m(self):
        with pytest.raises(DispersalError):
            dispersal_matrix(5, 0)

    def test_maximum_size_allowed(self):
        matrix = dispersal_matrix(255, 2)
        assert matrix.shape == (255, 2)


class TestAnyMRows:
    def test_all_submatrices_small_case(self):
        """Exhaustive over C(7, 3) row choices."""
        matrix = dispersal_matrix(7, 3)
        for rows in itertools.combinations(range(7), 3):
            assert is_nonsingular(matrix[list(rows), :]), rows

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_submatrices_larger_case(self, seed):
        rng = random.Random(seed)
        n, m = 40, 8
        matrix = dispersal_matrix(n, m)
        rows = rng.sample(range(n), m)
        assert is_nonsingular(matrix[sorted(rows), :])

    def test_systematic_preserves_property(self):
        matrix = systematic_dispersal_matrix(7, 3)
        for rows in itertools.combinations(range(7), 3):
            assert is_nonsingular(matrix[list(rows), :]), rows


class TestSystematic:
    def test_top_block_is_identity(self):
        matrix = systematic_dispersal_matrix(9, 4)
        assert (matrix[:4] == gf_identity(4)).all()


class TestReconstructionMatrix:
    def test_inverse_of_selected_rows(self):
        from repro.ida.matrix import gf_mat_mul

        matrix = dispersal_matrix(8, 4)
        indices = [1, 3, 5, 7]
        inverse = reconstruction_matrix(matrix, indices)
        product = gf_mat_mul(inverse, matrix[indices, :])
        assert (product == gf_identity(4)).all()

    def test_rejects_wrong_count(self):
        matrix = dispersal_matrix(8, 4)
        with pytest.raises(DispersalError):
            reconstruction_matrix(matrix, [0, 1, 2])

    def test_rejects_duplicates(self):
        matrix = dispersal_matrix(8, 4)
        with pytest.raises(DispersalError):
            reconstruction_matrix(matrix, [0, 1, 2, 2])

    def test_rejects_out_of_range(self):
        matrix = dispersal_matrix(8, 4)
        with pytest.raises(DispersalError):
            reconstruction_matrix(matrix, [0, 1, 2, 9])
