"""Tests for GF(256) matrix algebra."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DispersalError
from repro.ida.matrix import (
    gf_identity,
    gf_mat_inv,
    gf_mat_mul,
    gf_mat_rank,
    is_nonsingular,
)


def random_matrix(rng: random.Random, rows: int, cols: int) -> np.ndarray:
    return np.array(
        [[rng.randrange(256) for _ in range(cols)] for _ in range(rows)],
        dtype=np.uint8,
    )


class TestMultiplication:
    def test_identity_neutral(self):
        rng = random.Random(0)
        matrix = random_matrix(rng, 4, 4)
        assert (gf_mat_mul(matrix, gf_identity(4)) == matrix).all()
        assert (gf_mat_mul(gf_identity(4), matrix) == matrix).all()

    def test_shape_mismatch(self):
        with pytest.raises(DispersalError):
            gf_mat_mul(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_rejects_non_2d(self):
        with pytest.raises(DispersalError):
            gf_mat_mul(np.zeros(3), np.zeros((3, 1)))


class TestInversion:
    @given(seed=st.integers(0, 5_000), size=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_inverse_round_trip(self, seed, size):
        rng = random.Random(seed)
        matrix = random_matrix(rng, size, size)
        if not is_nonsingular(matrix):
            return
        inverse = gf_mat_inv(matrix)
        assert (gf_mat_mul(matrix, inverse) == gf_identity(size)).all()
        assert (gf_mat_mul(inverse, matrix) == gf_identity(size)).all()

    def test_singular_rejected(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(DispersalError, match="singular"):
            gf_mat_inv(singular)

    def test_zero_matrix_rejected(self):
        with pytest.raises(DispersalError):
            gf_mat_inv(np.zeros((3, 3), dtype=np.uint8))

    def test_non_square_rejected(self):
        with pytest.raises(DispersalError):
            gf_mat_inv(np.zeros((2, 3), dtype=np.uint8))

    def test_identity_self_inverse(self):
        assert (gf_mat_inv(gf_identity(5)) == gf_identity(5)).all()


class TestRank:
    def test_full_rank_identity(self):
        assert gf_mat_rank(gf_identity(6)) == 6

    def test_rank_deficient(self):
        matrix = np.array([[1, 2], [2, 4], [3, 6]], dtype=np.uint8)
        # Row 2 = 2 * row 1 and row 3 = 3 * row 1 over GF(256).
        assert gf_mat_rank(matrix) == 1

    def test_zero_rank(self):
        assert gf_mat_rank(np.zeros((3, 4), dtype=np.uint8)) == 0

    def test_wide_matrix_rank_bounded_by_rows(self):
        rng = random.Random(3)
        matrix = random_matrix(rng, 2, 10)
        assert gf_mat_rank(matrix) <= 2


class TestNonsingularity:
    def test_non_square_never_nonsingular(self):
        assert not is_nonsingular(np.zeros((2, 3), dtype=np.uint8))

    def test_random_singular_detected(self):
        matrix = np.array(
            [[5, 10, 15], [1, 2, 3], [0, 0, 0]], dtype=np.uint8
        )
        assert not is_nonsingular(matrix)
