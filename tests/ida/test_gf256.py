"""Tests for GF(2^8) arithmetic - field axioms via hypothesis."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DispersalError
from repro.ida.gf256 import (
    EXP_TABLE,
    GF_ORDER,
    LOG_TABLE,
    gf_add,
    gf_div,
    gf_inv,
    gf_matvec_bytes,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
)

elements = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestTables:
    def test_exp_log_inverse_on_nonzero(self):
        for value in range(1, 256):
            assert EXP_TABLE[LOG_TABLE[value]] == value

    def test_exp_table_duplicated(self):
        assert (EXP_TABLE[255:510] == EXP_TABLE[:255]).all()

    def test_generator_cycles_whole_group(self):
        seen = set()
        value = 1
        for _ in range(255):
            seen.add(value)
            value = gf_mul(value, 2)
        assert len(seen) == 255


class TestFieldAxioms:
    @given(a=elements, b=elements)
    def test_addition_commutative_and_self_inverse(self, a, b):
        assert gf_add(a, b) == gf_add(b, a)
        assert gf_add(a, a) == 0

    @given(a=elements, b=elements)
    def test_multiplication_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(a=elements, b=elements, c=elements)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(a=elements, b=elements, c=elements)
    def test_distributive(self, a, b, c):
        left = gf_mul(a, gf_add(b, c))
        right = gf_add(gf_mul(a, b), gf_mul(a, c))
        assert left == right

    @given(a=elements)
    def test_multiplicative_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(a=elements)
    def test_zero_annihilates(self, a):
        assert gf_mul(a, 0) == 0

    @given(a=nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(a=elements, b=nonzero)
    def test_division_inverts_multiplication(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a

    @given(a=nonzero, e1=st.integers(0, 20), e2=st.integers(0, 20))
    def test_power_laws(self, a, e1, e2):
        assert gf_pow(a, e1 + e2) == gf_mul(gf_pow(a, e1), gf_pow(a, e2))


class TestErrors:
    def test_zero_has_no_inverse(self):
        with pytest.raises(DispersalError):
            gf_inv(0)

    def test_division_by_zero(self):
        with pytest.raises(DispersalError):
            gf_div(1, 0)

    def test_negative_exponent(self):
        with pytest.raises(DispersalError):
            gf_pow(2, -1)

    def test_order_constant(self):
        assert GF_ORDER == 256


class TestVectorized:
    @given(scalar=elements, data=st.binary(min_size=1, max_size=64))
    def test_mul_bytes_matches_scalar(self, scalar, data):
        array = np.frombuffer(data, dtype=np.uint8)
        vectorized = gf_mul_bytes(scalar, array)
        expected = [gf_mul(scalar, int(x)) for x in array]
        assert vectorized.tolist() == expected

    def test_matvec_matches_manual(self):
        matrix = np.array([[1, 2], [3, 4], [5, 6]], dtype=np.uint8)
        data = np.array([[7, 8, 9], [10, 11, 12]], dtype=np.uint8)
        out = gf_matvec_bytes(matrix, data)
        for i in range(3):
            for j in range(3):
                expected = gf_add(
                    gf_mul(int(matrix[i, 0]), int(data[0, j])),
                    gf_mul(int(matrix[i, 1]), int(data[1, j])),
                )
                assert out[i, j] == expected

    def test_matvec_shape_mismatch(self):
        with pytest.raises(DispersalError):
            gf_matvec_bytes(
                np.zeros((2, 3), dtype=np.uint8),
                np.zeros((2, 4), dtype=np.uint8),
            )
