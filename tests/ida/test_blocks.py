"""Tests for self-identifying blocks and the wire codec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import BlockCodecError, DispersalError
from repro.ida.blocks import MAGIC, Block, decode_block, encode_block


def make_block(**overrides) -> Block:
    fields = dict(
        file_id="Z",
        index=3,
        m=5,
        n_total=10,
        original_length=1000,
        payload=b"\x01\x02\x03",
        systematic=False,
    )
    fields.update(overrides)
    return Block(**fields)


class TestBlock:
    def test_sequence_label_matches_paper_phrasing(self):
        block = make_block()
        assert block.sequence_label == "block 4 out of 10 of object Z"

    def test_rejects_index_out_of_range(self):
        with pytest.raises(DispersalError):
            make_block(index=10)
        with pytest.raises(DispersalError):
            make_block(index=-1)

    def test_rejects_bad_dispersal_params(self):
        with pytest.raises(DispersalError):
            make_block(m=0)
        with pytest.raises(DispersalError):
            make_block(m=11)  # m > n_total

    def test_rejects_negative_length(self):
        with pytest.raises(DispersalError):
            make_block(original_length=-1)


class TestCodec:
    def test_round_trip(self):
        block = make_block()
        assert decode_block(encode_block(block)) == block

    def test_round_trip_systematic_flag(self):
        block = make_block(systematic=True)
        assert decode_block(encode_block(block)).systematic is True

    @given(
        file_id=st.text(min_size=1, max_size=40),
        index=st.integers(0, 9),
        payload=st.binary(max_size=200),
    )
    def test_round_trip_fuzzed(self, file_id, index, payload):
        block = make_block(file_id=file_id, index=index, payload=payload)
        assert decode_block(encode_block(block)) == block

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_block(make_block()))
        frame[0] = ord("X")
        with pytest.raises(BlockCodecError, match="magic"):
            decode_block(bytes(frame))

    def test_corrupted_payload_detected_by_crc(self):
        frame = bytearray(encode_block(make_block()))
        frame[-1] ^= 0xFF
        with pytest.raises(BlockCodecError, match="CRC"):
            decode_block(bytes(frame))

    def test_corrupted_file_id_detected(self):
        frame = bytearray(encode_block(make_block(file_id="hello")))
        # Flip a byte inside the body (after the fixed header).
        frame[30] ^= 0x01
        with pytest.raises(BlockCodecError):
            decode_block(bytes(frame))

    def test_truncated_frame_rejected(self):
        frame = encode_block(make_block())
        with pytest.raises(BlockCodecError, match="short"):
            decode_block(frame[:10])

    def test_bad_version_rejected(self):
        frame = bytearray(encode_block(make_block()))
        frame[len(MAGIC)] = 99
        with pytest.raises(BlockCodecError, match="version"):
            decode_block(bytes(frame))

    def test_empty_payload_round_trip(self):
        block = make_block(payload=b"", original_length=0)
        assert decode_block(encode_block(block)) == block
