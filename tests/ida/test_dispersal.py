"""Tests for IDA dispersal/reconstruction - the any-m-of-N round trip."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DispersalError
from repro.ida.dispersal import disperse, reconstruct


class TestDisperse:
    def test_produces_n_blocks(self):
        blocks = disperse(b"hello world", 3, 7, file_id="F")
        assert len(blocks) == 7
        assert [b.index for b in blocks] == list(range(7))

    def test_blocks_self_identify(self):
        blocks = disperse(b"payload", 2, 4, file_id="obj-9")
        for block in blocks:
            assert block.file_id == "obj-9"
            assert block.m == 2
            assert block.n_total == 4
            assert block.original_length == 7

    def test_payload_width_is_ceil_len_over_m(self):
        blocks = disperse(b"x" * 10, 3, 5)
        assert all(len(b.payload) == 4 for b in blocks)

    def test_empty_file_allowed(self):
        blocks = disperse(b"", 2, 4)
        assert reconstruct(blocks[:2]) == b""

    def test_rejects_bad_m(self):
        with pytest.raises(DispersalError):
            disperse(b"x", 0, 4)

    def test_expansion_factor(self):
        """Total dispersed bytes = (N / m) * padded size."""
        data = b"q" * 999
        blocks = disperse(data, 3, 9)
        total = sum(len(b.payload) for b in blocks)
        assert total == 9 * 333


class TestReconstruct:
    def test_exhaustive_subsets_small(self):
        data = b"the broadcast disk goes round"
        blocks = disperse(data, 3, 6, file_id="F")
        for subset in itertools.combinations(blocks, 3):
            assert reconstruct(list(subset)) == data

    @given(
        data=st.binary(min_size=0, max_size=500),
        seed=st.integers(0, 1_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_subsets_round_trip(self, data, seed):
        rng = random.Random(seed)
        m, extra = rng.randint(1, 6), rng.randint(0, 6)
        blocks = disperse(data, m, m + extra)
        subset = rng.sample(blocks, m)
        assert reconstruct(subset) == data

    @given(data=st.binary(min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_systematic_round_trip(self, data):
        blocks = disperse(data, 4, 8, systematic=True)
        # Plaintext fast path:
        assert reconstruct(blocks[:4]) == data
        # Redundancy-only decode:
        assert reconstruct(blocks[4:]) == data

    def test_extra_blocks_ignored(self):
        data = b"abcdef"
        blocks = disperse(data, 2, 5)
        assert reconstruct(blocks) == data

    def test_duplicates_do_not_count(self):
        data = b"abcdef"
        blocks = disperse(data, 2, 5)
        with pytest.raises(DispersalError, match="distinct"):
            reconstruct([blocks[1], blocks[1]])

    def test_too_few_blocks(self):
        blocks = disperse(b"abc", 3, 5)
        with pytest.raises(DispersalError, match="distinct"):
            reconstruct(blocks[:2])

    def test_empty_input(self):
        with pytest.raises(DispersalError):
            reconstruct([])

    def test_mixed_files_rejected(self):
        a = disperse(b"aaa", 2, 4, file_id="A")
        b = disperse(b"bbb", 2, 4, file_id="B")
        with pytest.raises(DispersalError, match="inconsistent"):
            reconstruct([a[0], b[1]])

    def test_mixed_families_rejected(self):
        plain = disperse(b"data123", 2, 4, systematic=False)
        syst = disperse(b"data123", 2, 4, systematic=True)
        with pytest.raises(DispersalError, match="inconsistent"):
            reconstruct([plain[2], syst[3]])


class TestFaultToleranceSemantics:
    def test_any_r_losses_survivable(self):
        """n = m + r transmitted blocks tolerate any r losses."""
        data = b"realtime!" * 11
        m, r = 4, 3
        blocks = disperse(data, m, m + r)
        for lost in itertools.combinations(range(m + r), r):
            survivors = [b for b in blocks if b.index not in lost]
            assert reconstruct(survivors) == data

    def test_r_plus_one_losses_fatal(self):
        data = b"realtime!"
        m, r = 3, 2
        blocks = disperse(data, m, m + r)
        survivors = blocks[: m - 1]
        with pytest.raises(DispersalError):
            reconstruct(survivors)
