"""Tests for the ``repro server`` subcommand."""

import json

from repro.cli import main

SCENARIO = "examples/server_awacs_modes.json"
MUTATIONS = "examples/server_awacs_mutations.json"


class TestServerCommand:
    def test_scripted_awacs_mode_cycle(self, capsys):
        code = main(["server", SCENARIO, "--script", MUTATIONS])
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario awacs-live" in out
        assert "mutations applied: 2" in out
        assert "splice violations: 0" in out
        assert "mode -> combat" in out
        assert "cache hit" in out

    def test_json_record(self, capsys):
        code = main(
            ["server", SCENARIO, "--script", MUTATIONS, "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "awacs-live"
        assert len(payload["splice_slots"]) == 2
        assert payload["violations"] == []
        assert payload["cache"]["hits"] == 1
        assert len(payload["epochs"]) == 3
        assert payload["epochs"][2]["cache_hit"] is True
        assert payload["traffic"]["requests"] == 240

    def test_log_written_and_parseable(self, tmp_path, capsys):
        from repro.server.asrun import read_asrun

        log = tmp_path / "asrun.jsonl"
        code = main(
            [
                "server", SCENARIO, "--script", MUTATIONS,
                "--log", str(log), "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        records = read_asrun(log)
        assert payload["asrun"] == str(log)
        kinds = [r["type"] for r in records]
        assert kinds.count("splice") == 2
        assert kinds[-1] == "sign-off"

    def test_no_script_is_a_plain_run(self, capsys):
        code = main(["server", SCENARIO, "--until", "120"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mutations applied: 0, splices at []" in out

    def test_warm_cache_dir_skips_re_solves(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "solve-cache")
        main(
            ["server", SCENARIO, "--script", MUTATIONS,
             "--cache-dir", cache_dir, "--json"]
        )
        capsys.readouterr()
        code = main(
            ["server", SCENARIO, "--script", MUTATIONS,
             "--cache-dir", cache_dir, "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        # Every design was on disk: the warm run never ran the designer.
        assert payload["cache"]["solves"] == 0
        assert payload["cache"]["misses"] == 0

    def test_bad_script_fails_with_a_clear_message(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"at_slot": -3, "mutation": {}}]))
        code = main(["server", SCENARIO, "--script", str(bad)])
        assert code != 0
        assert "slot >= 0" in capsys.readouterr().err
