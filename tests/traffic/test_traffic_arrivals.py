"""Tests for arrival processes and popularity laws."""

import pytest

from repro.errors import SpecificationError
from repro.traffic.arrivals import (
    ARRIVAL_KINDS,
    arrival_slot,
    client_rng,
    popularity_weights,
    think_slots,
)


class TestClientRng:
    def test_deterministic_per_index(self):
        a = client_rng(7, 3).random()
        b = client_rng(7, 3).random()
        assert a == b

    def test_independent_across_indices(self):
        draws = {client_rng(7, i).random() for i in range(50)}
        assert len(draws) == 50

    def test_seed_changes_stream(self):
        assert client_rng(1, 0).random() != client_rng(2, 0).random()


class TestArrivals:
    def test_all_kinds_land_inside_duration(self):
        for kind in ARRIVAL_KINDS:
            for index in range(200):
                slot = arrival_slot(
                    kind, client_rng(5, index), index, 200, 1000
                )
                assert 0 <= slot < 1000, (kind, index, slot)

    def test_deterministic_is_evenly_spaced(self):
        slots = [
            arrival_slot("deterministic", client_rng(0, i), i, 10, 1000)
            for i in range(10)
        ]
        assert slots == [i * 100 for i in range(10)]

    def test_poisson_spreads_over_duration(self):
        slots = [
            arrival_slot("poisson", client_rng(11, i), i, 400, 1000)
            for i in range(400)
        ]
        # Uniform i.i.d. arrivals: both halves of the horizon see load.
        early = sum(1 for s in slots if s < 500)
        assert 100 < early < 300

    def test_bursty_clusters_around_burst_centres(self):
        duration, bursts, width = 10_000, 4, 50
        centres = [(b + 0.5) * duration / bursts for b in range(bursts)]
        for index in range(300):
            slot = arrival_slot(
                "bursty", client_rng(3, index), index, 300, duration,
                bursts=bursts, burst_width=width,
            )
            assert any(abs(slot - c) <= width for c in centres), slot

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError):
            arrival_slot("tidal", client_rng(0, 0), 0, 1, 10)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(SpecificationError):
            arrival_slot("poisson", client_rng(0, 9), 9, 5, 10)


class TestPopularity:
    def test_uniform_is_flat(self):
        assert popularity_weights("uniform", 4) == [1.0] * 4

    def test_zipf_delegates_to_workload(self):
        weights = popularity_weights("zipf", 3, zipf_skew=1.0)
        assert weights == [1.0, 0.5, pytest.approx(1 / 3)]

    def test_hotcold_mass_split(self):
        weights = popularity_weights(
            "hotcold", 10, hot_fraction=0.2, hot_weight=0.8
        )
        assert sum(weights[:2]) == pytest.approx(0.8)
        assert sum(weights[2:]) == pytest.approx(0.2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError):
            popularity_weights("lava", 3)


class TestThink:
    def test_zero_mean_is_nonthinking(self):
        rng = client_rng(0, 0)
        assert all(think_slots(rng, 0) == 0 for _ in range(10))

    def test_mean_approximates_parameter(self):
        rng = client_rng(9, 0)
        draws = [think_slots(rng, 20) for _ in range(5000)]
        assert all(d >= 0 for d in draws)
        mean = sum(draws) / len(draws)
        assert 17 < mean < 23  # int() truncation pulls ~0.5 below 20

    def test_negative_mean_rejected(self):
        with pytest.raises(SpecificationError):
            think_slots(client_rng(0, 0), -1)
