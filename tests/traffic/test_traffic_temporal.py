"""Tests for the temporal traffic layer: metrics, sessions, simulator."""

import pytest

from repro.bdisk.flat import build_aida_flat_program
from repro.errors import SimulationError, SpecificationError
from repro.rtdb import (
    TemporalItemSpec,
    TemporalSpec,
    TransactionSpec,
    UpdatingServer,
    retrieve_versioned,
)
from repro.traffic import TrafficMetrics, TrafficSpec, simulate_traffic
from repro.traffic.simulate import _VersionedRetriever, simulate_traffic_shard
from repro.sim.faults import BernoulliFaults, NoFaults


def make_program():
    return build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])


def make_temporal(**overrides):
    payload = dict(
        slot_ms=10,
        items=(
            TemporalItemSpec("A", blocks=5, max_age_ms=1000),
            TemporalItemSpec("B", blocks=3, max_age_ms=500),
        ),
        update_periods={"A": 64, "B": 40},
    )
    payload.update(overrides)
    return TemporalSpec(**payload)


class TestVersionedMetrics:
    def test_record_versioned_read(self):
        metrics = TrafficMetrics()
        metrics.record_versioned_read(12, True, 0)
        metrics.record_versioned_read(40, False, 3)
        metrics.record_versioned_read(None, False, 2)  # aborted read
        assert metrics.item_reads == 2
        assert metrics.stale_reads == 1
        assert metrics.torn_discards == 5
        assert metrics.age_sum == 52
        assert metrics.worst_age == 40
        assert metrics.consistency_rate == 0.5
        assert metrics.mean_age == 26.0
        assert metrics.ages == {12: 1, 40: 1}

    def test_consistency_rate_defaults_to_one(self):
        assert TrafficMetrics().consistency_rate == 1.0

    def test_age_quantile_exact(self):
        metrics = TrafficMetrics()
        for age in (1, 2, 3, 4, 100):
            metrics.record_versioned_read(age, True, 0)
        assert metrics.age_quantile(0.5) == 3
        assert metrics.age_quantile(0.99) == 100

    def test_merge_sums_the_staleness_dimension(self):
        parts = []
        for base in (0, 10):
            part = TrafficMetrics()
            part.record("t", 5, 10)
            part.record_versioned_read(base + 5, base == 0, base)
            parts.append(part)
        merged = TrafficMetrics.merged(parts, seed=0)
        assert merged.item_reads == 2
        assert merged.stale_reads == 1
        assert merged.torn_discards == 10
        assert merged.age_sum == 20
        assert merged.worst_age == 15
        assert merged.ages == {5: 1, 15: 1}

    def test_constant_memory_mode_has_no_age_histogram(self):
        metrics = TrafficMetrics(exact_counts=False)
        metrics.record_versioned_read(5, True, 0)
        assert metrics.item_reads == 1
        with pytest.raises(SimulationError):
            metrics.ages
        with pytest.raises(SimulationError):
            metrics.age_quantile(0.5)


class TestVersionedRetriever:
    def test_matches_direct_retrieval(self):
        program = make_program()
        server = UpdatingServer({"A": 64, "B": 40})
        oracle = _VersionedRetriever(
            program, {"A": 5, "B": 3}, server, NoFaults(), None
        )
        for start in (0, 3, 17, 64, 129):
            latency, finish, age, torn = oracle("B", start)
            direct = retrieve_versioned(
                program, server, "B", 3, start=start
            )
            assert latency == direct.latency
            assert age == direct.age_at_completion
            assert torn == direct.torn_discards
            assert finish == direct.finish_slot

    def test_memo_is_only_used_fault_free(self):
        program = make_program()
        server = UpdatingServer({"A": 64, "B": 40})
        fault_free = _VersionedRetriever(
            program, {"A": 5, "B": 3}, server, NoFaults(), None
        )
        faulty = _VersionedRetriever(
            program, {"A": 5, "B": 3}, server,
            BernoulliFaults(0.3, seed=1), None,
        )
        assert fault_free._memo is not None
        assert faulty._memo is None

    def test_abort_reports_horizon_finish(self):
        program = make_program()
        # Period 2: every version dies before 3 B-blocks can air.
        server = UpdatingServer({"A": 2, "B": 2})
        oracle = _VersionedRetriever(
            program, {"A": 5, "B": 3}, server, NoFaults(), 50
        )
        latency, finish, age, torn = oracle("B", 7)
        assert latency is None
        assert age is None
        assert finish == 7 + 50 - 1
        assert torn > 0


class TestTemporalSimulation:
    def _run(self, spec=None, temporal=None, **kwargs):
        program = make_program()
        return simulate_traffic(
            program,
            ["A", "B"],
            spec
            or TrafficSpec(
                clients=50, duration=800, requests_per_client=2, seed=5
            ),
            file_sizes={"A": 5, "B": 3},
            deadlines={"A": 100, "B": 50},
            temporal=temporal or make_temporal(),
            **kwargs,
        )

    def test_single_item_mix_by_default(self):
        result = self._run()
        assert set(result.metrics.requests_by_file) <= {"A", "B"}
        assert result.metrics.item_reads > 0
        assert result.metrics.requests == 100

    def test_explicit_transaction_mix(self):
        temporal = make_temporal(
            transactions=(
                TransactionSpec("both", ["A", "B"], 200, weight=1.0),
            )
        )
        result = self._run(temporal=temporal)
        assert set(result.metrics.requests_by_file) == {"both"}
        # Two item reads per completed transaction.
        assert result.metrics.item_reads == 2 * result.metrics.completions

    def test_transaction_abort_stops_the_read_set(self):
        # B updates every 2 slots: unreadable; A is fine.  The "ba"
        # transaction aborts on its first item and never touches A.
        temporal = make_temporal(
            update_periods={"A": 64, "B": 2},
            transactions=(TransactionSpec("ba", ["B", "A"], 400),),
        )
        spec = TrafficSpec(
            clients=10, duration=100, requests_per_client=1, seed=1,
            max_slots=200,
        )
        result = self._run(spec=spec, temporal=temporal)
        assert result.metrics.aborts == result.metrics.requests
        assert result.metrics.item_reads == 0  # no read ever completed
        assert result.metrics.torn_discards > 0
        # An all-abort temporal run still reports its freshness block -
        # torn discards are the diagnostic - with consistency null
        # ("undefined"), never a reassuring 1.0.
        payload = result.to_dict()["temporal"]
        assert payload is not None
        assert payload["consistency_rate"] is None
        assert payload["age"] is None
        assert payload["torn_discards"] == result.metrics.torn_discards
        assert "no read ever completed" in result.report()

    def test_catalogue_must_be_temporal_items(self):
        program = make_program()
        with pytest.raises(SimulationError):
            simulate_traffic(
                program,
                ["A", "B"],
                TrafficSpec(clients=2, duration=10),
                file_sizes={"A": 5, "B": 3},
                deadlines={"A": 100, "B": 50},
                temporal=make_temporal(
                    items=(
                        TemporalItemSpec("A", blocks=5, max_age_ms=1000),
                    ),
                    update_periods={"A": 64},
                ),
            )

    def test_cache_rejected(self):
        with pytest.raises(SpecificationError):
            self._run(
                spec=TrafficSpec(
                    clients=5, duration=50, cache="lru"
                )
            )

    def test_sharded_run_is_bit_identical(self):
        serial = self._run()
        sharded = self._run(max_workers=4)
        assert serial.metrics.counts == sharded.metrics.counts
        assert serial.metrics.ages == sharded.metrics.ages
        assert serial.metrics.item_reads == sharded.metrics.item_reads
        assert serial.metrics.stale_reads == sharded.metrics.stale_reads
        assert (
            serial.metrics.torn_discards == sharded.metrics.torn_discards
        )

    def test_external_shards_merge_to_the_serial_run(self):
        program = make_program()
        spec = TrafficSpec(
            clients=30, duration=400, requests_per_client=2, seed=9
        )
        kwargs = dict(
            file_sizes={"A": 5, "B": 3},
            deadlines={"A": 100, "B": 50},
            temporal=make_temporal(),
        )
        whole = simulate_traffic(program, ["A", "B"], spec, **kwargs)
        parts = [
            simulate_traffic_shard(
                program, ["A", "B"], spec, lo=lo, hi=hi, **kwargs
            )
            for lo, hi in ((0, 11), (11, 17), (17, 30))
        ]
        merged = TrafficMetrics.merged(parts, seed=spec.seed)
        assert merged.counts == whole.metrics.counts
        assert merged.ages == whole.metrics.ages
        assert merged.item_reads == whole.metrics.item_reads
        assert merged.stale_reads == whole.metrics.stale_reads
        assert merged.torn_discards == whole.metrics.torn_discards
        assert merged.requests_by_file == whole.metrics.requests_by_file

    def test_trace_records_transaction_names(self):
        temporal = make_temporal(
            transactions=(TransactionSpec("both", ["A", "B"], 200),)
        )
        result = self._run(temporal=temporal, trace=True)
        assert result.trace
        assert {record.file for record in result.trace} == {"both"}
