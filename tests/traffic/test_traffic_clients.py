"""Tests for client-session state machines."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.cache import CachingClient, LruCache
from repro.sim.faults import NoFaults
from repro.traffic.clients import ClientSession, RequestRecord
from repro.traffic.kernel import EventKernel
from repro.traffic.metrics import TrafficMetrics
from repro.traffic.simulate import _Retriever

SIZES = {"A": 5, "B": 3}
DEADLINES = {"A": 100, "B": 100}


def make_session(program, *, requests=3, think=0, cache=None, trace=None,
                 metrics=None, weights=(1.0, 1.0)):
    retriever = _Retriever(program, SIZES, NoFaults(), None)
    return ClientSession(
        0,
        random.Random("session-test"),
        ("A", "B"),
        weights,
        DEADLINES,
        requests=requests,
        think_mean=think,
        retriever=retriever,
        metrics=metrics if metrics is not None else TrafficMetrics(),
        cache=cache,
        trace=trace,
    )


class TestSessionFlow:
    def test_issues_exactly_its_request_budget(self, figure6_program):
        metrics = TrafficMetrics()
        session = make_session(figure6_program, requests=4, metrics=metrics)
        kernel = EventKernel()
        session.begin(kernel, 0)
        kernel.run()
        assert metrics.requests == 4
        assert metrics.completions == 4

    def test_requests_never_overlap(self, figure6_program):
        """Single-receiver: each request starts after the previous finish."""
        trace: list[RequestRecord] = []
        session = make_session(
            figure6_program, requests=5, think=0, trace=trace
        )
        kernel = EventKernel()
        session.begin(kernel, 0)
        kernel.run()
        assert len(trace) == 5
        for earlier, later in zip(trace, trace[1:]):
            finish = earlier.issued + earlier.latency - 1
            assert later.issued == finish + 1  # think 0: next slot

    def test_think_time_spaces_requests(self, figure6_program):
        trace: list[RequestRecord] = []
        session = make_session(
            figure6_program, requests=5, think=50, trace=trace
        )
        kernel = EventKernel()
        session.begin(kernel, 0)
        kernel.run()
        gaps = [
            later.issued - (earlier.issued + earlier.latency - 1)
            for earlier, later in zip(trace, trace[1:])
        ]
        assert all(gap >= 1 for gap in gaps)
        assert any(gap > 1 for gap in gaps)  # some think draws are > 0

    def test_busy_receiver_is_defended(self, figure6_program):
        session = make_session(figure6_program, requests=2)
        kernel = EventKernel()
        session.begin(kernel, 0)
        kernel.schedule(0, session.issue)  # an illegal concurrent issue
        with pytest.raises(SimulationError, match="single-receiver"):
            kernel.run()

    def test_deadline_misses_recorded(self, figure6_program):
        metrics = TrafficMetrics()
        retriever = _Retriever(figure6_program, SIZES, NoFaults(), None)
        session = ClientSession(
            1,
            random.Random("deadline-test"),
            ("A",),
            (1.0,),
            {"A": 1},  # impossible deadline: 5 blocks cannot land in 1 slot
            requests=2,
            think_mean=0,
            retriever=retriever,
            metrics=metrics,
        )
        kernel = EventKernel()
        session.begin(kernel, 0)
        kernel.run()
        assert metrics.deadline_misses == 2
        assert metrics.aborts == 0


class TestSessionCache:
    def test_cache_hits_answer_in_zero_slots(self, figure6_program):
        metrics = TrafficMetrics()
        trace: list[RequestRecord] = []
        cache = CachingClient(
            figure6_program, SIZES, 2, LruCache(), faults=NoFaults()
        )
        session = ClientSession(
            2,
            random.Random("cache-test"),
            ("A",),
            (1.0,),
            DEADLINES,
            requests=3,
            think_mean=0,
            retriever=_Retriever(figure6_program, SIZES, NoFaults(), None),
            metrics=metrics,
            cache=cache,
            trace=trace,
        )
        kernel = EventKernel()
        session.begin(kernel, 0)
        kernel.run()
        assert [r.cache_hit for r in trace] == [False, True, True]
        assert [r.latency for r in trace][1:] == [0, 0]
        assert metrics.cache_hits == 2
        assert metrics.cache_misses == 1
