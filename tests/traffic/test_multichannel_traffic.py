"""Traffic over a channel set: engine parity, degeneracy, shm tables."""

import json

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.bdisk.file import FileSpec
from repro.bdisk.multichannel import design_multichannel_program
from repro.api.scenario import ChannelSpec, FaultSpec
from repro.rtdb import TemporalItemSpec, TemporalSpec
from repro.sim.faults import BernoulliFaults
from repro.traffic import TrafficSpec, simulate_traffic
from repro.traffic.cohorts import MultiChannelTables
from repro.traffic.shm_index import (
    attach_multichannel_tables,
    export_multichannel_tables,
)

CATALOGUE = ("a", "b", "c", "d")
SIZES = {"a": 2, "b": 3, "c": 2, "d": 4}
DEADLINES = {name: 10_000 for name in CATALOGUE}


def channel_set(count, *, assignment="striped", tuning_cost=0, quorum=1):
    files = [
        FileSpec("a", 2, 10),
        FileSpec("b", 3, 15),
        FileSpec("c", 2, 20),
        FileSpec("d", 4, 30),
    ]
    return design_multichannel_program(
        files,
        ChannelSpec(
            count=count,
            assignment=assignment,
            tuning_cost=tuning_cost,
            quorum=quorum,
        ),
    ).channel_set


def population(**overrides):
    payload = dict(
        clients=40,
        duration=300,
        arrival="poisson",
        popularity="zipf",
        requests_per_client=2,
        think_time=3,
        seed=23,
    )
    payload.update(overrides)
    return TrafficSpec(**payload)


def metrics_key(metrics):
    """Every merge-relevant dimension, as one comparable tuple."""
    return (
        metrics.requests,
        metrics.completions,
        metrics.aborts,
        metrics.deadline_misses,
        metrics.summary(),
        dict(metrics.requests_by_file),
        metrics.channel_switches,
        dict(metrics.quorum_reads),
        metrics.item_reads,
        metrics.stale_reads,
        metrics.torn_discards,
        tuple(
            metrics.quantile(q) for q in (0.5, 0.95, 0.99)
        ) if metrics.completions else None,
    )


def run(channels, *, faults=None, engine="object", max_workers=None,
        temporal=None, spec=None):
    return simulate_traffic(
        None,
        CATALOGUE,
        spec or population(),
        file_sizes=SIZES,
        deadlines=DEADLINES,
        faults=faults,
        temporal=temporal,
        channels=channels,
        engine=engine,
        max_workers=max_workers,
        trace=True,
    )


class TestEngineParity:
    """Object, SoA, serial, and pooled runs are all bit-identical."""

    @pytest.mark.parametrize("faulty", [False, True],
                             ids=["faultfree", "bernoulli"])
    def test_all_paths_agree(self, faulty):
        channels = channel_set(2, tuning_cost=2)
        faults = (
            FaultSpec(kind="bernoulli", probability=0.1, seed=4)
            if faulty
            else None
        )
        baseline = run(channels, faults=faults, engine="object")
        assert baseline.channels
        others = [
            run(channels, faults=faults, engine="soa"),
            run(channels, faults=faults, engine="object", max_workers=3),
            run(channels, faults=faults, engine="soa", max_workers=3),
        ]
        for other in others:
            assert metrics_key(other.metrics) == metrics_key(
                baseline.metrics
            )
            assert other.trace == baseline.trace

    def test_switches_are_observed_with_tuning(self):
        channels = channel_set(2, tuning_cost=2)
        result = run(channels)
        assert result.metrics.channel_switches > 0
        assert "channels  :" in result.report()
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["channels"]["switches"] == (
            result.metrics.channel_switches
        )


class TestTemporalQuorum:
    def temporal(self):
        return TemporalSpec(
            slot_ms=10,
            items=(
                TemporalItemSpec("a", blocks=2, max_age_ms=4000),
                TemporalItemSpec("b", blocks=3, max_age_ms=4000),
                TemporalItemSpec("c", blocks=2, max_age_ms=4000),
                TemporalItemSpec("d", blocks=4, max_age_ms=4000),
            ),
            update_periods={"a": 400, "b": 400, "c": 400, "d": 400},
        )

    def test_quorum_parity_and_report(self):
        channels = channel_set(
            3, assignment="replicated", tuning_cost=1, quorum=2
        )
        spec = population(clients=25, requests_per_client=1)
        baseline = run(channels, temporal=self.temporal(), spec=spec)
        soa = run(
            channels, temporal=self.temporal(), spec=spec, engine="soa"
        )
        pooled = run(
            channels, temporal=self.temporal(), spec=spec,
            engine="soa", max_workers=3,
        )
        for other in (soa, pooled):
            assert metrics_key(other.metrics) == metrics_key(
                baseline.metrics
            )
            assert other.trace == baseline.trace
        assert baseline.metrics.quorum_total > 0
        payload = baseline.to_dict()["channels"]
        assert payload["quorum"]["reads"] == dict(
            sorted(baseline.metrics.quorum_reads.items())
        )


class TestDegeneracy:
    """k=1 multichannel traffic is bit-identical to the plain path."""

    @pytest.mark.parametrize("engine", ["object", "soa"])
    def test_k1_matches_plain_simulate_traffic(self, engine):
        channels = channel_set(1)
        program = channels.programs[0]
        faults = FaultSpec(kind="bernoulli", probability=0.15, seed=7)
        plain = simulate_traffic(
            program,
            CATALOGUE,
            population(),
            file_sizes=SIZES,
            deadlines=DEADLINES,
            faults=faults,
            engine=engine,
            trace=True,
        )
        multi = run(channels, faults=faults, engine=engine)
        assert multi.metrics.channel_switches == 0
        assert metrics_key(multi.metrics)[:6] == metrics_key(
            plain.metrics
        )[:6]
        for mine, theirs in zip(multi.trace, plain.trace):
            assert mine.client == theirs.client
            assert mine.file == theirs.file
            assert mine.issued == theirs.issued
            assert mine.latency == theirs.latency
            assert mine.completed == theirs.completed


class TestValidation:
    def test_shared_fault_instance_rejected(self):
        with pytest.raises(SpecificationError, match="per-channel"):
            run(channel_set(2), faults=BernoulliFaults(0.1, seed=1))

    def test_per_channel_fault_length_checked(self):
        with pytest.raises(SpecificationError, match="one entry per"):
            run(channel_set(2), faults=[None])

    def test_cache_rejected_over_channels(self):
        with pytest.raises(SpecificationError, match="cache"):
            run(
                channel_set(2),
                spec=population(cache="lru"),
            )


class TestSharedMemoryTables:
    def test_multichannel_export_attach_round_trip(self):
        channels = channel_set(2, tuning_cost=3)
        tables = MultiChannelTables.build(
            channels, CATALOGUE, SIZES, None
        )
        shared = export_multichannel_tables(tables)
        try:
            remote, handle = attach_multichannel_tables(shared.meta)
            try:
                assert remote.count == tables.count
                assert remote.tuning_cost == tables.tuning_cost
                assert remote.candidates == tables.candidates
                np.testing.assert_array_equal(
                    remote.local_ids, tables.local_ids
                )
                for mine, theirs in zip(tables.tables, remote.tables):
                    assert mine.cycle == theirs.cycle
                    assert mine.period == theirs.period
                    for name, array in mine.array_fields().items():
                        np.testing.assert_array_equal(
                            array, theirs.array_fields()[name]
                        )
            finally:
                handle.close()
        finally:
            shared.close()
