"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.traffic.kernel import EventKernel


class TestOrdering:
    def test_events_run_in_slot_order(self):
        kernel = EventKernel()
        seen = []
        kernel.schedule(30, lambda k: seen.append(30))
        kernel.schedule(10, lambda k: seen.append(10))
        kernel.schedule(20, lambda k: seen.append(20))
        kernel.run()
        assert seen == [10, 20, 30]

    def test_same_slot_ties_break_on_schedule_order(self):
        kernel = EventKernel()
        seen = []
        for tag in ("first", "second", "third"):
            kernel.schedule(5, lambda k, t=tag: seen.append(t))
        kernel.run()
        assert seen == ["first", "second", "third"]

    def test_actions_can_schedule_followups(self):
        kernel = EventKernel()
        seen = []

        def chain(k, depth=0):
            seen.append(k.now)
            if depth < 3:
                k.schedule(k.now + 10, lambda k2: chain(k2, depth + 1))

        kernel.schedule(0, chain)
        kernel.run()
        assert seen == [0, 10, 20, 30]

    def test_followup_at_same_slot_runs_after_queued_peers(self):
        kernel = EventKernel()
        seen = []
        kernel.schedule(
            5, lambda k: (seen.append("a"), k.schedule(5, lambda k2: seen.append("c")))[0]
        )
        kernel.schedule(5, lambda k: seen.append("b"))
        kernel.run()
        assert seen == ["a", "b", "c"]


class TestGuards:
    def test_scheduling_into_the_past_raises(self):
        kernel = EventKernel()
        kernel.schedule(10, lambda k: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.schedule(5, lambda k: None)

    def test_now_tracks_current_event(self):
        kernel = EventKernel()
        slots = []
        kernel.schedule(7, lambda k: slots.append(k.now))
        kernel.schedule(42, lambda k: slots.append(k.now))
        kernel.run()
        assert slots == [7, 42]
        assert kernel.now == 42

    def test_run_until_leaves_later_events_queued(self):
        kernel = EventKernel()
        seen = []
        kernel.schedule(10, lambda k: seen.append(10))
        kernel.schedule(20, lambda k: seen.append(20))
        ran = kernel.run(until=15)
        assert ran == 1 and seen == [10] and kernel.pending == 1
        kernel.run()
        assert seen == [10, 20]

    def test_bounded_run_advances_clock_to_until_on_drain(self):
        # Regression: run(until=N) used to leave `now` at the last
        # executed event when the heap drained early, so a later
        # schedule() could enqueue events in the past relative to the
        # stop time.
        kernel = EventKernel()
        kernel.schedule(3, lambda k: None)
        kernel.run(until=10)
        assert kernel.now == 10
        with pytest.raises(SimulationError):
            kernel.schedule(5, lambda k: None)  # before the stop time

    def test_bounded_run_advances_clock_past_queued_event(self):
        kernel = EventKernel()
        seen = []
        kernel.schedule(4, lambda k: seen.append(4))
        kernel.schedule(25, lambda k: seen.append(25))
        kernel.run(until=10)
        assert kernel.now == 10 and seen == [4] and kernel.pending == 1
        # The queued event beyond the bound still runs on the next call.
        kernel.run()
        assert seen == [4, 25] and kernel.now == 25

    def test_bounded_run_never_moves_the_clock_backwards(self):
        kernel = EventKernel()
        kernel.schedule(10, lambda k: None)
        kernel.run()
        assert kernel.now == 10
        kernel.run(until=5)  # nothing to do; clock must not regress
        assert kernel.now == 10

    def test_empty_bounded_run_still_advances(self):
        kernel = EventKernel()
        kernel.run(until=7)
        assert kernel.now == 7

    def test_processed_counts_events(self):
        kernel = EventKernel()
        for slot in range(5):
            kernel.schedule(slot, lambda k: None)
        kernel.run()
        assert kernel.processed == 5
        assert kernel.pending == 0


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        kernel = EventKernel()
        seen = []
        keep = kernel.schedule(5, lambda k: seen.append("keep"))
        drop = kernel.schedule(5, lambda k: seen.append("drop"))
        assert keep != drop
        assert kernel.cancel(drop)
        assert kernel.pending == 1
        kernel.run()
        assert seen == ["keep"]
        assert kernel.processed == 1

    def test_cancel_is_idempotent_and_safe_on_unknown_ids(self):
        kernel = EventKernel()
        event = kernel.schedule(3, lambda k: None)
        assert kernel.cancel(event)
        assert not kernel.cancel(event)
        assert not kernel.cancel(999)
        kernel.run()
        assert not kernel.cancel(event)  # already skipped, still False

    def test_cancel_and_reschedule_moves_a_completion(self):
        # The online server's resplice pattern: retract a provisional
        # completion and book the revised one at a later slot.
        kernel = EventKernel()
        seen = []
        event = kernel.schedule(10, lambda k: seen.append("stale"))
        kernel.cancel(event)
        kernel.schedule(14, lambda k: seen.append("revised"))
        kernel.run()
        assert seen == ["revised"]
        assert kernel.now == 14


class TestPeek:
    def test_peek_reports_next_live_slot(self):
        kernel = EventKernel()
        assert kernel.peek() is None
        kernel.schedule(8, lambda k: None)
        kernel.schedule(3, lambda k: None)
        assert kernel.peek() == 3

    def test_peek_skips_cancelled_tops(self):
        kernel = EventKernel()
        first = kernel.schedule(3, lambda k: None)
        kernel.schedule(8, lambda k: None)
        kernel.cancel(first)
        assert kernel.peek() == 8
        kernel.run()
        assert kernel.peek() is None

    def test_past_slot_schedule_rejected(self):
        kernel = EventKernel()
        kernel.schedule(10, lambda k: None)
        kernel.run()
        with pytest.raises(SimulationError, match="already at slot 10"):
            kernel.schedule(9, lambda k: None)
        # SimulationError doubles as ValueError for generic callers.
        with pytest.raises(ValueError):
            kernel.schedule(2, lambda k: None)
