"""The vectorized engine is a bit-identical drop-in for the object one.

``repro.traffic.clients`` stays the executable specification; the SoA
engine (:mod:`repro.traffic.engine_soa`) must replay it decision for
decision.  Every test here runs both engines on the same population and
compares the *full* observable surface - metrics counters, the exact
latency histogram, per-file tallies, and (where traced) every
:class:`RequestRecord` - for exact equality, never approximate.
"""

import random

import pytest

from repro.bdisk.flat import build_aida_flat_program
from repro.bdisk.multidisk import build_multidisk_program, config_from_demand
from repro.errors import SpecificationError
from repro.rtdb import TemporalItemSpec, TemporalSpec, TransactionSpec
from repro.sim.faults import (
    AdversarialFaults,
    BernoulliFaults,
    BurstFaults,
)
from repro.traffic import TrafficMetrics, TrafficSpec, simulate_traffic
from repro.traffic.simulate import simulate_traffic_shard

pytest.importorskip("numpy")


def aida_world():
    program = build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])
    return program, ["A", "B"], {"A": 5, "B": 3}


def multidisk_world():
    files = [("hot", 2), ("warm", 3), ("cold", 4)]
    program = build_multidisk_program(
        config_from_demand(
            files, {"hot": 6.0, "warm": 2.0, "cold": 1.0}, levels=(4, 2, 1)
        )
    )
    return program, [name for name, _ in files], dict(files)


WORLDS = {"aida": aida_world, "multidisk": multidisk_world}

FAULTS = {
    "faultfree": lambda: None,
    "bernoulli": lambda: BernoulliFaults(0.15, seed=11),
    "burst": lambda: BurstFaults(0.02, 0.3, seed=7),
    "adversarial": lambda: AdversarialFaults(range(10, 400, 7)),
}


def fingerprint(metrics: TrafficMetrics) -> dict:
    """Every observable the metrics object exposes, exactly."""
    return {
        "requests": metrics.requests,
        "completions": metrics.completions,
        "aborts": metrics.aborts,
        "deadline_misses": metrics.deadline_misses,
        "counts": metrics.counts,
        "requests_by_file": dict(metrics.requests_by_file),
        "hits_by_file": dict(metrics.hits_by_file),
        "cache_hits": metrics.cache_hits,
        "cache_misses": metrics.cache_misses,
        "cache_evictions": metrics.cache_evictions,
        "summary": metrics.summary(),
        "item_reads": metrics.item_reads,
        "stale_reads": metrics.stale_reads,
        "torn_discards": metrics.torn_discards,
        "age_sum": metrics.age_sum,
        "worst_age": metrics.worst_age,
        "ages": metrics.ages if metrics.item_reads else {},
    }


def run_both(program, catalogue, sizes, spec, *, faults=None, temporal=None):
    kwargs = dict(
        file_sizes=sizes,
        deadlines={name: 10_000 for name in catalogue},
        temporal=temporal,
        trace=temporal is None,
    )
    obj = simulate_traffic(
        program, catalogue, spec, faults=faults, engine="object", **kwargs
    )
    soa = simulate_traffic(
        program, catalogue, spec, faults=faults, engine="soa", **kwargs
    )
    assert fingerprint(soa.metrics) == fingerprint(obj.metrics)
    assert soa.trace == obj.trace
    return obj, soa


@pytest.mark.parametrize("cache", [None, "lru", "pix"])
@pytest.mark.parametrize("fault", sorted(FAULTS))
@pytest.mark.parametrize("world", sorted(WORLDS))
def test_soa_matches_object_across_faults_and_caches(world, fault, cache):
    program, catalogue, sizes = WORLDS[world]()
    spec = TrafficSpec(
        clients=30,
        duration=300,
        arrival="poisson",
        popularity="zipf",
        zipf_skew=1.2,
        requests_per_client=3,
        think_time=5,
        cache=cache,
        cache_capacity=2,
        seed=97,
    )
    run_both(program, catalogue, sizes, spec, faults=FAULTS[fault]())


@pytest.mark.parametrize(
    "popularity", ["uniform", "zipf", "hotcold"]
)
@pytest.mark.parametrize(
    "arrival", ["poisson", "deterministic", "bursty"]
)
def test_soa_matches_object_across_arrivals_and_popularity(
    arrival, popularity
):
    program, catalogue, sizes = multidisk_world()
    spec = TrafficSpec(
        clients=25,
        duration=400,
        arrival=arrival,
        popularity=popularity,
        hot_fraction=0.4,
        requests_per_client=2,
        think_time=2,
        seed=3,
    )
    run_both(
        program, catalogue, sizes, spec,
        faults=BernoulliFaults(0.1, seed=5),
    )


def test_soa_matches_object_on_randomized_specs():
    """The SoA mirror of ``test_random_specs_reproduce_exactly``."""
    program, catalogue, sizes = multidisk_world()
    meta = random.Random(4321)
    for _ in range(6):
        spec = TrafficSpec(
            clients=meta.randrange(5, 40),
            duration=meta.randrange(50, 500),
            arrival=meta.choice(["poisson", "deterministic", "bursty"]),
            popularity=meta.choice(["uniform", "zipf", "hotcold"]),
            requests_per_client=meta.randrange(1, 4),
            think_time=meta.randrange(0, 10),
            cache=meta.choice([None, "lru", "pix"]),
            cache_capacity=meta.randrange(1, 4),
            seed=meta.randrange(1000),
        )
        run_both(program, catalogue, sizes, spec)


class TestTemporalEquivalence:
    """TransactionSession populations replay identically too."""

    def make_temporal(self, **overrides):
        payload = dict(
            slot_ms=10,
            items=(
                TemporalItemSpec("A", blocks=5, max_age_ms=1000),
                TemporalItemSpec("B", blocks=3, max_age_ms=500),
            ),
            update_periods={"A": 64, "B": 40},
        )
        payload.update(overrides)
        return TemporalSpec(**payload)

    @pytest.mark.parametrize("fault", ["faultfree", "bernoulli"])
    def test_default_single_item_mix(self, fault):
        program, catalogue, sizes = aida_world()
        spec = TrafficSpec(
            clients=20, duration=300, requests_per_client=3,
            think_time=4, seed=17,
        )
        run_both(
            program, catalogue, sizes, spec,
            faults=FAULTS[fault](),
            temporal=self.make_temporal(),
        )

    def test_explicit_transaction_mix(self):
        program, catalogue, sizes = aida_world()
        temporal = self.make_temporal(
            transactions=(
                TransactionSpec("pair", ("A", "B"), deadline_slots=90),
                TransactionSpec(
                    "solo", ("B",), deadline_slots=40, weight=2.0
                ),
            ),
        )
        spec = TrafficSpec(
            clients=20, duration=300, requests_per_client=2,
            think_time=3, seed=23,
        )
        run_both(
            program, catalogue, sizes, spec,
            faults=BernoulliFaults(0.1, seed=3),
            temporal=temporal,
        )


class TestCohortEdgeCases:
    """Satellite: batching boundaries where cohorts could drift."""

    def run_soa(self, spec, *, window=None, cache=None, world=aida_world):
        program, catalogue, sizes = world()
        if cache is not None:
            spec = TrafficSpec(**{**spec.to_dict(), "cache": cache})
        kwargs = dict(
            file_sizes=sizes,
            deadlines={name: 10_000 for name in catalogue},
            trace=True,
        )
        obj = simulate_traffic(
            program, catalogue, spec, engine="object", **kwargs
        )
        if window is None:
            soa = simulate_traffic(
                program, catalogue, spec, engine="soa", **kwargs
            )
            assert fingerprint(soa.metrics) == fingerprint(obj.metrics)
            assert soa.trace == obj.trace
        else:
            from repro.traffic.engine_soa import simulate_shard_soa

            metrics, records = simulate_shard_soa(
                program, catalogue, spec, sizes,
                {name: 10_000 for name in catalogue},
                None, None, 0, spec.clients, True,
                cohort_window=window,
            )
            assert fingerprint(metrics) == fingerprint(obj.metrics)
            assert sorted(
                records, key=lambda r: (r.issued, r.client)
            ) == list(obj.trace)
        return obj

    def test_simultaneous_events_in_one_slot(self):
        # Deterministic arrivals with duration == clients collapses many
        # arrivals into coincident slots; think 0 keeps every follow-up
        # in the same wave.
        self.run_soa(
            TrafficSpec(
                clients=24, duration=6, arrival="deterministic",
                requests_per_client=3, think_time=0, seed=2,
            )
        )

    def test_zero_think_time_chains_back_to_back(self):
        self.run_soa(
            TrafficSpec(
                clients=12, duration=60, arrival="poisson",
                requests_per_client=5, think_time=0, seed=9,
            )
        )

    def test_cache_hit_completing_in_arrival_slot(self):
        # One-file catalogue: request 2 is always a cache hit, finishing
        # in the very slot it was issued (latency 1, zero wait).
        program = build_aida_flat_program([("A", 2, 4)])
        catalogue, sizes = ["A"], {"A": 2}
        spec = TrafficSpec(
            clients=10, duration=40, arrival="deterministic",
            requests_per_client=2, think_time=0,
            cache="lru", cache_capacity=1, seed=6,
        )
        kwargs = dict(
            file_sizes=sizes, deadlines={"A": 10_000}, trace=True
        )
        obj = simulate_traffic(
            program, catalogue, spec, engine="object", **kwargs
        )
        soa = simulate_traffic(
            program, catalogue, spec, engine="soa", **kwargs
        )
        assert fingerprint(soa.metrics) == fingerprint(obj.metrics)
        assert soa.trace == obj.trace
        assert soa.metrics.cache_hits == spec.clients  # every 2nd request

    def test_final_partial_cohort_at_duration(self):
        # clients not divisible by any power-of-two block size, arrivals
        # spread to the very last slot of the horizon.
        self.run_soa(
            TrafficSpec(
                clients=37, duration=37, arrival="deterministic",
                requests_per_client=2, think_time=1, seed=13,
            )
        )

    def test_window_of_one_slot_changes_nothing(self):
        self.run_soa(
            TrafficSpec(
                clients=15, duration=80, arrival="poisson",
                requests_per_client=3, think_time=4, seed=8,
            ),
            window=1,
        )


class TestEngineSelection:
    def test_unknown_engine_is_rejected(self):
        program, catalogue, sizes = aida_world()
        with pytest.raises(SpecificationError):
            simulate_traffic(
                program, catalogue, TrafficSpec(clients=2, duration=10),
                file_sizes=sizes,
                deadlines={name: 100 for name in catalogue},
                engine="gpu",
            )

    def test_pooled_soa_equals_serial_object(self):
        program, catalogue, sizes = multidisk_world()
        spec = TrafficSpec(
            clients=40, duration=200, requests_per_client=2,
            think_time=3, seed=31,
        )
        kwargs = dict(
            file_sizes=sizes,
            deadlines={name: 10_000 for name in catalogue},
            faults=BernoulliFaults(0.1, seed=2),
        )
        serial = simulate_traffic(
            program, catalogue, spec, engine="object", **kwargs
        )
        pooled = simulate_traffic(
            program, catalogue, spec, engine="soa", max_workers=2,
            **kwargs,
        )
        assert fingerprint(pooled.metrics) == fingerprint(serial.metrics)

    def test_shard_api_merges_identically_across_engines(self):
        program, catalogue, sizes = aida_world()
        spec = TrafficSpec(
            clients=20, duration=150, requests_per_client=2,
            think_time=2, seed=41,
        )
        kwargs = dict(
            file_sizes=sizes,
            deadlines={name: 10_000 for name in catalogue},
            faults=BurstFaults(0.05, 0.4, seed=9),
        )
        merged = {}
        for engine in ("object", "soa"):
            parts = [
                simulate_traffic_shard(
                    program, catalogue, spec, lo=lo, hi=hi,
                    engine=engine, **kwargs,
                )
                for lo, hi in [(0, 7), (7, 13), (13, 20)]
            ]
            merged[engine] = TrafficMetrics.merged(parts, seed=spec.seed)
        assert fingerprint(merged["soa"]) == fingerprint(merged["object"])


class TestFaultDrawShardInvariance:
    """Satellite: per-(seed, slot) draws survive any shard layout.

    Stochastic models decide each slot as a pure function of
    ``(seed, slot)``, so re-instantiating the model per shard - which
    pooled runs do - must reproduce the same channel no matter how the
    population is cut.  BurstFaults is the sharpest case: its Markov
    chain is sequential internally, yet queries stay order-independent.
    """

    @pytest.mark.parametrize("engine", ["object", "soa"])
    def test_burst_faults_identical_across_shard_counts(self, engine):
        program, catalogue, sizes = multidisk_world()
        spec = TrafficSpec(
            clients=30, duration=250, requests_per_client=2,
            think_time=3, seed=19,
        )
        kwargs = dict(
            file_sizes=sizes,
            deadlines={name: 10_000 for name in catalogue},
        )

        def run(bounds):
            parts = [
                simulate_traffic_shard(
                    program, catalogue, spec, lo=lo, hi=hi, engine=engine,
                    faults=BurstFaults(0.03, 0.25, seed=77), **kwargs,
                )
                for lo, hi in bounds
            ]
            return fingerprint(
                TrafficMetrics.merged(parts, seed=spec.seed)
            )

        whole = run([(0, 30)])
        assert run([(0, 15), (15, 30)]) == whole
        assert run([(0, 10), (10, 20), (20, 30)]) == whole
        assert run([(0, 4), (4, 11), (11, 29), (29, 30)]) == whole
