"""Tests for the top-level traffic simulation and its sharding."""

import pytest

from repro.errors import SimulationError, SpecificationError
from repro.bdisk.flat import build_aida_flat_program
from repro.bdisk.multidisk import build_multidisk_program, config_from_demand
from repro.sim.faults import BernoulliFaults, BurstFaults
from repro.api.scenario import FaultSpec
from repro.traffic import TrafficSpec, simulate_traffic

FILES = [("hot", 2), ("warm", 3), ("cold", 5)]
SIZES = dict(FILES)
DEADLINES = {"hot": 60, "warm": 90, "cold": 150}
CATALOGUE = [name for name, _ in FILES]


def make_program():
    return build_multidisk_program(
        config_from_demand(
            FILES, {"hot": 8.0, "warm": 3.0, "cold": 1.0}, levels=(4, 2, 1)
        )
    )


def run(spec=None, **kwargs):
    program = kwargs.pop("program", None) or make_program()
    return simulate_traffic(
        program,
        CATALOGUE,
        spec if spec is not None else TrafficSpec(clients=200, duration=2000, seed=13),
        file_sizes=SIZES,
        deadlines=DEADLINES,
        **kwargs,
    )


class TestBasics:
    def test_every_request_accounted(self):
        spec = TrafficSpec(
            clients=100, duration=1000, requests_per_client=3, seed=1
        )
        result = run(spec)
        assert result.requests == spec.total_requests == 300
        assert result.completions + result.aborts == result.requests
        assert result.summary.count == 300

    def test_faultfree_channel_completes_everything(self):
        result = run()
        assert result.aborts == 0
        assert result.abort_rate == 0.0

    def test_trace_is_off_by_default_and_sorted_when_on(self):
        assert run().trace == ()
        traced = run(trace=True)
        assert len(traced.trace) == traced.requests
        keys = [(r.issued, r.client) for r in traced.trace]
        assert keys == sorted(keys)

    def test_report_and_dict(self):
        result = run(trace=True)
        report = result.report()
        assert "req/s sustained" in report and "latency" in report
        payload = result.to_dict()
        assert payload["requests"] == result.requests
        assert payload["latency"]["p99"] >= payload["latency"]["p50"]
        assert payload["spec"]["clients"] == 200
        import json

        json.dumps(payload)  # strictly JSON-able

    def test_arrival_kind_does_not_perturb_behaviour_streams(self):
        """Arrivals draw from a dedicated substream: swapping the
        arrival process changes *when* clients show up, never *what*
        they ask for."""
        traces = {}
        for arrival in ("poisson", "deterministic", "bursty"):
            spec = TrafficSpec(
                clients=50, duration=500, arrival=arrival,
                requests_per_client=2, think_time=4, seed=23,
            )
            result = run(spec, trace=True)
            by_client: dict[int, list[str]] = {}
            for record in sorted(result.trace, key=lambda r: r.issued):
                by_client.setdefault(record.client, []).append(record.file)
            traces[arrival] = by_client
        assert traces["poisson"] == traces["deterministic"] \
            == traces["bursty"]

    def test_popularity_orders_request_counts(self):
        result = run(
            TrafficSpec(
                clients=500, duration=2000, popularity="zipf",
                zipf_skew=1.5, seed=3,
            )
        )
        by_file = result.metrics.requests_by_file
        assert by_file["hot"] > by_file["warm"] > by_file["cold"]


class TestFaults:
    def test_bernoulli_stretches_the_tail(self):
        clean = run()
        faulty = run(faults=BernoulliFaults(0.2, seed=5))
        assert faulty.summary.mean > clean.summary.mean
        assert faulty.requests == clean.requests

    def test_fault_spec_accepted(self):
        direct = run(faults=BernoulliFaults(0.1, seed=2))
        declarative = run(
            faults=FaultSpec(kind="bernoulli", probability=0.1, seed=2)
        )
        assert direct.summary == declarative.summary

    def test_burst_faults_run(self):
        result = run(faults=BurstFaults(0.05, 0.3, seed=4))
        assert result.requests == 200

    def test_bogus_faults_rejected(self):
        with pytest.raises(SpecificationError):
            run(faults="lossy")


class TestSharding:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_is_bit_identical_to_serial(self, workers):
        spec = TrafficSpec(
            clients=120, duration=1500, requests_per_client=2,
            think_time=3, seed=21,
        )
        serial = run(spec, trace=True)
        parallel = run(spec, max_workers=workers, trace=True)
        assert parallel.workers == workers
        assert serial.summary == parallel.summary
        assert serial.metrics.counts == parallel.metrics.counts
        assert (serial.metrics.requests_by_file
                == parallel.metrics.requests_by_file)
        assert serial.metrics.reservoir.sample \
            == parallel.metrics.reservoir.sample
        assert serial.trace == parallel.trace

    def test_parallel_with_faults_matches_serial(self):
        spec = TrafficSpec(clients=80, duration=800, seed=8)
        faults = FaultSpec(kind="bernoulli", probability=0.1, seed=6)
        serial = run(spec, faults=faults, trace=True)
        parallel = run(spec, faults=faults, max_workers=2, trace=True)
        assert serial.trace == parallel.trace
        assert serial.summary == parallel.summary

    def test_bad_workers_rejected(self):
        with pytest.raises(SpecificationError):
            run(max_workers=0)
        with pytest.raises(SpecificationError):
            run(max_workers=True)

    def test_shard_bounds_layout_and_validation(self):
        from repro.traffic import shard_bounds

        assert shard_bounds(10, 4) == [(0, 2), (2, 5), (5, 7), (7, 10)]
        assert shard_bounds(3, 8) == [(0, 1), (1, 2), (2, 3)]  # clamped
        for clients, shards in (
            (10.0, 4), (True, 1), (0, 2), ("10", 2),
            (10, 0), (10, True),
        ):
            with pytest.raises(SpecificationError):
                shard_bounds(clients, shards)


class TestValidation:
    def test_unknown_file_rejected(self):
        program = build_aida_flat_program([("A", 5, 10)])
        with pytest.raises(SimulationError):
            simulate_traffic(
                program,
                ["A", "ghost"],
                TrafficSpec(clients=2, duration=10),
                file_sizes={"A": 5, "ghost": 1},
                deadlines={"A": 50, "ghost": 50},
            )

    def test_missing_size_or_deadline_rejected(self):
        program = build_aida_flat_program([("A", 5, 10)])
        with pytest.raises(SimulationError):
            simulate_traffic(
                program, ["A"], TrafficSpec(clients=2, duration=10),
                file_sizes={}, deadlines={"A": 50},
            )
        with pytest.raises(SimulationError):
            simulate_traffic(
                program, ["A"], TrafficSpec(clients=2, duration=10),
                file_sizes={"A": 5}, deadlines={},
            )

    def test_empty_or_duplicate_catalogue_rejected(self):
        program = build_aida_flat_program([("A", 5, 10)])
        with pytest.raises(SpecificationError):
            simulate_traffic(
                program, [], TrafficSpec(),
                file_sizes={}, deadlines={},
            )
        with pytest.raises(SpecificationError):
            simulate_traffic(
                program, ["A", "A"], TrafficSpec(),
                file_sizes={"A": 5}, deadlines={"A": 50},
            )


class TestCachePopulations:
    @pytest.mark.parametrize("policy", ["lru", "pix"])
    def test_caching_sessions_hit_after_first_fetch(self, policy):
        spec = TrafficSpec(
            clients=60, duration=600, requests_per_client=6,
            cache=policy, cache_capacity=2, popularity="zipf",
            zipf_skew=1.2, seed=31,
        )
        result = run(spec)
        metrics = result.metrics
        assert metrics.cache_hits > 0
        assert metrics.cache_hits + metrics.cache_misses \
            == result.requests
        # Hits answer locally in zero slots, so the histogram has zeros.
        assert metrics.counts.get(0, 0) == metrics.cache_hits

    def test_max_slots_bounds_cache_misses_too(self):
        """Regression: the per-retrieval horizon override applies to the
        cache-miss path exactly as it does without a cache."""
        for cache in (None, "lru"):
            spec = TrafficSpec(
                clients=30, duration=300, max_slots=1, cache=cache,
                seed=19,
            )
            result = run(spec)
            # One listening slot cannot deliver multi-block files.
            assert result.aborts == result.requests, cache

    def test_cached_parallel_matches_serial(self):
        spec = TrafficSpec(
            clients=40, duration=400, requests_per_client=4,
            cache="lru", cache_capacity=2, seed=17,
        )
        serial = run(spec, trace=True)
        parallel = run(spec, max_workers=2, trace=True)
        assert serial.trace == parallel.trace
        assert serial.metrics.cache_hits == parallel.metrics.cache_hits
