"""Tests for streaming traffic metrics: P2, reservoir, accumulator."""

import math
import random

import pytest

from repro.errors import SimulationError, SpecificationError
from repro.sim.metrics import LatencySummary
from repro.traffic.metrics import (
    P2Quantile,
    ReservoirSample,
    TrafficMetrics,
)


def exact_quantile(values, q):
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestP2Quantile:
    def test_small_samples_are_exact(self):
        estimator = P2Quantile(0.5)
        for value in (5, 1, 3):
            estimator.add(value)
        assert estimator.value() == 3

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_converges_on_uniform_stream(self, q):
        rng = random.Random(42)
        estimator = P2Quantile(q)
        values = [rng.random() * 1000 for _ in range(20_000)]
        for value in values:
            estimator.add(value)
        # P2 is approximate; on a uniform stream it lands within a few
        # percent of the exact empirical quantile.
        assert estimator.value() == pytest.approx(
            exact_quantile(values, q), rel=0.05
        )

    def test_converges_on_skewed_stream(self):
        rng = random.Random(7)
        estimator = P2Quantile(0.99)
        values = [rng.expovariate(0.1) for _ in range(20_000)]
        for value in values:
            estimator.add(value)
        assert estimator.value() == pytest.approx(
            exact_quantile(values, 0.99), rel=0.15
        )

    def test_invalid_quantile_rejected(self):
        with pytest.raises(SpecificationError):
            P2Quantile(0.0)
        with pytest.raises(SpecificationError):
            P2Quantile(1.0)


class TestReservoir:
    def test_holds_everything_under_capacity(self):
        reservoir = ReservoirSample(10)
        for value in range(5):
            reservoir.add(value)
        assert sorted(reservoir.sample) == [0, 1, 2, 3, 4]

    def test_capacity_is_bounded(self):
        reservoir = ReservoirSample(16, seed=3)
        for value in range(10_000):
            reservoir.add(value)
        assert len(reservoir.sample) == 16
        assert reservoir.seen == 10_000

    def test_seeded_and_reproducible(self):
        def build():
            r = ReservoirSample(8, seed=5)
            for value in range(1000):
                r.add(value)
            return r.sample

        assert build() == build()

    def test_roughly_uniform_over_stream(self):
        reservoir = ReservoirSample(500, seed=1)
        for value in range(10_000):
            reservoir.add(value)
        mean = sum(reservoir.sample) / 500
        assert 4000 < mean < 6000

    def test_from_counts_small_expands_exactly(self):
        reservoir = ReservoirSample.from_counts({3: 2, 7: 1}, 10, seed=0)
        assert sorted(reservoir.sample) == [3.0, 3.0, 7.0]
        assert reservoir.seen == 3

    def test_from_counts_sample_without_replacement(self):
        counts = {value: 5 for value in range(100)}
        reservoir = ReservoirSample.from_counts(counts, 50, seed=2)
        assert len(reservoir.sample) == 50
        assert reservoir.seen == 500
        # No value can appear more often than its multiplicity.
        for value in set(reservoir.sample):
            assert reservoir.sample.count(value) <= 5


class TestTrafficMetrics:
    def fill(self, metrics, latencies, deadline=100, file="f"):
        for latency in latencies:
            metrics.record(file, latency, deadline)

    def test_counters(self):
        metrics = TrafficMetrics()
        self.fill(metrics, [5, 10, None, 200])
        assert metrics.requests == 4
        assert metrics.completions == 3
        assert metrics.aborts == 1
        assert metrics.deadline_misses == 1  # the 200 vs deadline 100
        assert metrics.miss_rate == pytest.approx(0.5)
        assert metrics.abort_rate == pytest.approx(0.25)
        assert metrics.mean_latency == pytest.approx((5 + 10 + 200) / 3)
        assert metrics.worst == 200

    def test_exact_quantiles_match_reference(self):
        rng = random.Random(17)
        values = [rng.randrange(1, 500) for _ in range(5000)]
        metrics = TrafficMetrics()
        self.fill(metrics, values, deadline=10**9)
        for q in (0.5, 0.95, 0.99):
            assert metrics.quantile(q) == exact_quantile(values, q)

    def test_p2_estimates_track_exact(self):
        rng = random.Random(23)
        values = [rng.randrange(1, 1000) for _ in range(20_000)]
        exact = TrafficMetrics()
        streaming = TrafficMetrics(exact_counts=False)
        self.fill(exact, values, deadline=10**9)
        self.fill(streaming, values, deadline=10**9)
        for q in (0.5, 0.95, 0.99):
            assert streaming.estimated_quantile(q) == pytest.approx(
                exact.quantile(q), rel=0.05
            )

    def test_short_stream_quantiles_fall_back_to_exact_sample(self):
        # Regression: before the P2 markers have their five
        # initialization observations, tracked-quantile reads must
        # answer from the exact sample (short sweep cells used to get
        # estimator garbage).
        for size in range(1, 5):
            values = [7 * (i + 1) for i in range(size)]
            streaming = TrafficMetrics(exact_counts=False)
            exact = TrafficMetrics()
            self.fill(streaming, values, deadline=10**9)
            self.fill(exact, values, deadline=10**9)
            for q in (0.5, 0.95, 0.99):
                assert streaming.quantile(q) == exact.quantile(q), (
                    size, q,
                )

    def test_short_stream_summary_is_finite(self):
        metrics = TrafficMetrics(exact_counts=False)
        self.fill(metrics, [3, 9], deadline=10**9)
        summary = metrics.summary()
        assert summary.p50 == 3 and summary.p99 == 9
        assert summary.worst == 9

    def test_empty_stream_quantile_is_nan(self):
        metrics = TrafficMetrics(exact_counts=False)
        assert math.isnan(metrics.estimated_quantile(0.5))
        metrics.record("f", None, None)  # an abort is not a completion
        assert math.isnan(metrics.estimated_quantile(0.99))

    def test_exact_mode_leaves_estimators_idle(self):
        # Exact mode answers from the histogram; the per-completion
        # estimator/reservoir feeds are skipped on the hot path.
        metrics = TrafficMetrics()
        self.fill(metrics, [1, 2, 3], deadline=10)
        assert metrics.reservoir.seen == 0
        assert math.isnan(metrics.estimated_quantile(0.5))
        assert metrics.quantile(0.5) == 2

    def test_constant_memory_mode_estimates(self):
        metrics = TrafficMetrics(exact_counts=False)
        self.fill(metrics, list(range(1, 1001)), deadline=10**9)
        assert not metrics.exact
        with pytest.raises(SimulationError):
            metrics.counts
        assert metrics.quantile(0.5) == pytest.approx(500, rel=0.05)
        summary = metrics.summary()
        assert summary.count == 1000
        assert summary.counts == ()

    def test_summary_is_mergeable(self):
        metrics = TrafficMetrics()
        self.fill(metrics, [1, 2, 3, None], deadline=100)
        summary = metrics.summary()
        assert summary.misses == 1
        assert summary.counts
        again = LatencySummary.merge([summary])
        assert again == summary

    def test_per_file_counts_and_grouping(self):
        metrics = TrafficMetrics()
        metrics.record("a", 5, 100)
        metrics.record("a", None, 100)
        metrics.record("b", 7, 100)
        assert metrics.requests_by_file == {"a": 2, "b": 1}
        assert metrics.hits_by_file == {"a": 1, "b": 1}
        assert metrics.hits_by({"a": "disk0", "b": "disk1"}) == {
            "disk0": 1,
            "disk1": 1,
        }
        assert metrics.hits_by({}) == {"?": 2}

    def test_merged_equals_single_stream(self):
        rng = random.Random(5)
        values = [
            rng.randrange(1, 50) if rng.random() > 0.05 else None
            for _ in range(2000)
        ]
        whole = TrafficMetrics(seed=9)
        self.fill(whole, values, deadline=30)
        parts = []
        for chunk_start in range(0, 2000, 500):
            part = TrafficMetrics(seed=9)
            self.fill(
                part, values[chunk_start:chunk_start + 500], deadline=30
            )
            parts.append(part)
        merged = TrafficMetrics.merged(parts, seed=9)
        finalized = TrafficMetrics.merged([whole], seed=9)
        assert merged.requests == finalized.requests
        assert merged.aborts == finalized.aborts
        assert merged.deadline_misses == finalized.deadline_misses
        assert merged.counts == finalized.counts
        assert merged.summary() == finalized.summary()
        assert merged.reservoir.sample == finalized.reservoir.sample

    def test_merge_requires_exact_counts(self):
        approx = TrafficMetrics(exact_counts=False)
        approx.record("f", 1, 10)
        with pytest.raises(SimulationError):
            TrafficMetrics.merged([approx])

    def test_merge_of_nothing_rejected(self):
        with pytest.raises(SimulationError):
            TrafficMetrics.merged([])

    def test_cache_stats_fold_in(self):
        metrics = TrafficMetrics()
        metrics.record_cache(3, 2, 1)
        metrics.record_cache(1, 1, 0)
        assert (metrics.cache_hits, metrics.cache_misses,
                metrics.cache_evictions) == (4, 3, 1)


class TestChannelDimension:
    """The multi-channel dimension obeys the exact-merge contract."""

    def fill(self, metrics, reads):
        for outcome, latency, switches in reads:
            metrics.record_quorum(outcome, latency)
            metrics.record_channel_switches(switches)

    def reads(self):
        rng = random.Random(31)
        out = []
        for _ in range(300):
            outcome = rng.choice(["ok", "ok", "mismatch", "incomplete"])
            latency = rng.randrange(1, 80) if outcome == "ok" else None
            out.append((outcome, latency, rng.randrange(0, 3)))
        return out

    def test_recording(self):
        metrics = TrafficMetrics()
        metrics.record_quorum("ok", 12)
        metrics.record_quorum("ok", 30)
        metrics.record_quorum("mismatch", None)
        metrics.record_channel_switches(2)
        metrics.record_channel_switches(0)
        assert metrics.channel_switches == 2
        assert metrics.quorum_reads == {"ok": 2, "mismatch": 1}
        assert metrics.quorum_total == 3
        assert metrics.quorum_ok == 2
        assert metrics.quorum_success_rate == pytest.approx(2 / 3)
        assert metrics.mean_quorum_latency == 21.0
        assert metrics.worst_quorum_latency == 30
        assert metrics.quorum_quantile(0.5) == 12

    def test_merged_equals_single_stream(self):
        reads = self.reads()
        whole = TrafficMetrics(seed=9)
        self.fill(whole, reads)
        parts = []
        for start in range(0, len(reads), 75):
            part = TrafficMetrics(seed=9)
            self.fill(part, reads[start:start + 75])
            parts.append(part)
        merged = TrafficMetrics.merged(parts, seed=9)
        finalized = TrafficMetrics.merged([whole], seed=9)
        assert merged.channel_switches == finalized.channel_switches
        assert merged.quorum_reads == finalized.quorum_reads
        assert merged.quorum_latency_sum == finalized.quorum_latency_sum
        assert (
            merged.worst_quorum_latency == finalized.worst_quorum_latency
        )
        for q in (0.5, 0.9, 0.99):
            assert merged.quorum_quantile(q) == finalized.quorum_quantile(q)

    def test_from_totals_matches_recording(self):
        reads = self.reads()
        recorded = TrafficMetrics(seed=9)
        self.fill(recorded, reads)
        counts = {}
        for outcome, latency, _ in reads:
            if latency is not None:
                counts[latency] = counts.get(latency, 0) + 1
        totals = TrafficMetrics.from_totals(
            seed=9,
            channel_switches=recorded.channel_switches,
            quorum_reads=recorded.quorum_reads,
            quorum_latency_sum=recorded.quorum_latency_sum,
            worst_quorum_latency=recorded.worst_quorum_latency,
            quorum_counts=counts,
        )
        assert totals.channel_switches == recorded.channel_switches
        assert totals.quorum_reads == recorded.quorum_reads
        assert totals.quorum_success_rate == recorded.quorum_success_rate
        for q in (0.5, 0.95):
            assert totals.quorum_quantile(q) == recorded.quorum_quantile(q)
