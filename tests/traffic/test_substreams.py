"""Counter-based substreams: the scalar/vector bit-identity contract.

The vectorized engine replays the object engine's random decisions by
construction: both sides index the same counter-based splitmix64
streams, so draw ``j`` of stream ``(seed, tag, client)`` is one pure
function evaluation whichever engine asks.  These tests pin that
contract - scalar :class:`Substream` versus the batched
:func:`uniform_matrix`, stream independence, and indifference to how a
population is sharded.
"""

import pytest

from repro.traffic.substreams import (
    TAG_ARRIVAL,
    TAG_CLIENT,
    Substream,
    mix64,
    stream_base,
    stream_bases,
    uniform_matrix,
)

np = pytest.importorskip("numpy")


def stream(seed: int, tag: int, index: int) -> Substream:
    return Substream(stream_base(seed, tag, index))


def test_scalar_stream_is_deterministic_and_uniform():
    run = stream(42, TAG_CLIENT, 7)
    draws = [run.random() for _ in range(100)]
    replay = stream(42, TAG_CLIENT, 7)
    assert [replay.random() for _ in range(100)] == draws
    assert all(0.0 <= u < 1.0 for u in draws)
    # 100 splitmix64 doubles collide with probability ~0.
    assert len(set(draws)) == 100


def test_uniform_matrix_matches_scalar_streams_bitwise():
    seed, tag, lo, hi, draws = 2024, TAG_CLIENT, 3, 19, 12
    matrix = uniform_matrix(seed, tag, lo, hi, draws)
    assert matrix.shape == (hi - lo, draws)
    for row, index in enumerate(range(lo, hi)):
        scalar_stream = stream(seed, tag, index)
        scalar = [scalar_stream.random() for _ in range(draws)]
        # Bit-identical, not approximately equal: the SoA engine's
        # equivalence guarantee rests on exact float equality.
        assert matrix[row].tolist() == scalar


def test_streams_with_different_tags_are_independent():
    a = uniform_matrix(9, TAG_CLIENT, 0, 4, 8)
    b = uniform_matrix(9, TAG_ARRIVAL, 0, 4, 8)
    assert not np.array_equal(a, b)
    # ... and different seeds decorrelate everything.
    c = uniform_matrix(10, TAG_CLIENT, 0, 4, 8)
    assert not np.array_equal(a, c)


def test_stream_bases_match_scalar_stream_base():
    bases = stream_bases(77, TAG_CLIENT, 5, 9)
    for offset, index in enumerate(range(5, 9)):
        assert int(bases[offset]) == stream_base(77, TAG_CLIENT, index)


def test_sharding_never_changes_a_clients_draws():
    """Client ``i`` sees one stream no matter which shard holds it."""
    whole = uniform_matrix(5, TAG_CLIENT, 0, 12, 6)
    for bounds in [[(0, 12)], [(0, 6), (6, 12)], [(0, 5), (5, 7), (7, 12)]]:
        rows = np.vstack(
            [uniform_matrix(5, TAG_CLIENT, lo, hi, 6) for lo, hi in bounds]
        )
        assert np.array_equal(rows, whole)


def test_zero_draws_yields_empty_matrix():
    matrix = uniform_matrix(1, TAG_CLIENT, 0, 3, 0)
    assert matrix.shape == (3, 0)


def test_mix64_is_a_bijection_sample():
    seen = {mix64(x) for x in range(4096)}
    assert len(seen) == 4096
