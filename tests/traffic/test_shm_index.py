"""Shared-memory retrieval tables: lifecycle, fidelity, and the
no-rebuild guarantee.

The pooled SoA path exists to stop every worker from re-deriving the
occurrence index.  The tests here pin the three layers of that claim:
:class:`SharedTables` packs and re-maps arrays losslessly; a
:class:`BroadcastProgram` pickles *without* its index (pool tasks ship
the schedule alone); and - the headline - a forked pool run over shared
tables performs **zero** :class:`ProgramIndex` constructions in the
workers, counted through an inherited shared counter.
"""

import multiprocessing
import pickle

import pytest

from repro.bdisk.flat import build_aida_flat_program
from repro.bdisk.multidisk import build_multidisk_program, config_from_demand
from repro.errors import SimulationError
from repro.traffic import TrafficSpec, simulate_traffic
from repro.traffic.cohorts import RetrievalTables

np = pytest.importorskip("numpy")

from repro.traffic.shm_index import (  # noqa: E402  (needs numpy)
    SharedTables,
    attach_tables,
    export_tables,
)


def multidisk_world():
    files = [("hot", 2), ("warm", 3), ("cold", 4)]
    program = build_multidisk_program(
        config_from_demand(
            files, {"hot": 6.0, "warm": 2.0, "cold": 1.0}, levels=(4, 2, 1)
        )
    )
    return program, [name for name, _ in files], dict(files)


class TestSharedTablesLifecycle:
    def test_create_attach_roundtrip_and_unlink(self):
        arrays = {
            "a": np.arange(10, dtype=np.int64),
            "b": np.array([[1.5, 2.5], [3.5, 4.5]]),
            "c": np.empty(0, dtype=np.int64),
        }
        shared = SharedTables.create(arrays, extra={"cycle": 12})
        try:
            attached = SharedTables.attach(shared.meta)
            try:
                got = attached.arrays()
                for name, array in arrays.items():
                    assert np.array_equal(got[name], array)
                    assert got[name].dtype == array.dtype
                assert attached.extra == {"cycle": 12}
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_arrays_after_close_raises(self):
        shared = SharedTables.create({"x": np.arange(3)})
        shared.unlink()
        with pytest.raises(SimulationError):
            shared.arrays()
        # close/unlink stay idempotent after the fact.
        shared.close()
        shared.unlink()

    def test_context_manager_unlinks_owner(self):
        with SharedTables.create({"x": np.arange(3)}) as shared:
            name = shared.meta["segment"]
            assert shared.arrays()["x"].sum() == 3
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_export_attach_tables_reproduce_lookup(self):
        program, catalogue, sizes = multidisk_world()
        tables = RetrievalTables.build(program, catalogue, sizes, None)
        shared = export_tables(tables)
        try:
            remote, handle = attach_tables(shared.meta)
            try:
                files = np.arange(len(catalogue), dtype=np.int64)
                starts = np.arange(len(catalogue), dtype=np.int64) * 3
                assert all(
                    np.array_equal(a, b)
                    for a, b in zip(
                        tables.lookup(files, starts),
                        remote.lookup(files, starts),
                    )
                )
            finally:
                handle.close()
        finally:
            shared.unlink()


class TestProgramPickling:
    def test_pickle_excludes_the_occurrence_index(self):
        program, catalogue, sizes = multidisk_world()
        program.index  # force the expensive build
        payload = pickle.dumps(program)
        clone = pickle.loads(payload)
        assert clone._index is None
        # ... and the clone still works: the index rebuilds lazily.
        assert (
            clone.index.data_cycle_length
            == program.index.data_cycle_length
        )
        assert clone.schedule.cycle == program.schedule.cycle

    def test_pickle_is_schedule_sized(self):
        program = build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])
        program.index
        assert len(pickle.dumps(program)) < 2_000


def _count_index_builds(counter):
    """Pool initializer: make every ProgramIndex construction count."""
    from repro.bdisk import program_index

    original = program_index.ProgramIndex.__init__

    def counted(self, *args, **kwargs):
        with counter.get_lock():
            counter.value += 1
        original(self, *args, **kwargs)

    program_index.ProgramIndex.__init__ = counted


class TestWorkersNeverRebuildTheIndex:
    def test_pooled_soa_run_counts_zero_worker_constructions(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs the fork start method")
        program, catalogue, sizes = multidisk_world()
        program.index  # parent builds once, before any patching
        spec = TrafficSpec(
            clients=24, duration=150, requests_per_client=2,
            think_time=2, seed=51,
        )
        counter = multiprocessing.get_context("fork").Value("i", 0)

        from concurrent import futures

        from repro.traffic.cohorts import RetrievalTables as RT
        from repro.traffic.engine_soa import _shard_task_shm
        from repro.traffic.simulate import shard_bounds

        deadlines = {name: 10_000 for name in catalogue}
        tables = RT.build(program, catalogue, sizes, spec.max_slots)
        shared = export_tables(tables)
        try:
            with futures.ProcessPoolExecutor(
                max_workers=2,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_count_index_builds,
                initargs=(counter,),
            ) as pool:
                parts = [
                    pool.submit(
                        _shard_task_shm, shared.meta, catalogue, spec,
                        sizes, deadlines, None, lo, hi, False,
                    )
                    for lo, hi in shard_bounds(spec.clients, 2)
                ]
                results = [part.result() for part in parts]
        finally:
            shared.unlink()
        assert len(results) == 2
        assert sum(m.requests for m, _, _ in results) == spec.total_requests
        assert counter.value == 0, (
            f"workers constructed the index {counter.value} times"
        )

    def test_pooled_soa_run_end_to_end_leaves_no_segments(self):
        program, catalogue, sizes = multidisk_world()
        spec = TrafficSpec(
            clients=20, duration=150, requests_per_client=2, seed=61,
        )
        result = simulate_traffic(
            program, catalogue, spec,
            file_sizes=sizes,
            deadlines={name: 10_000 for name in catalogue},
            engine="soa", max_workers=2,
        )
        assert result.requests == spec.total_requests
