"""Property test: traffic sessions reproduce the seed retrieval semantics.

A *closed* population of non-thinking clients (one request each, no
cache) is just a batch of independent retrievals at known start slots -
exactly what :mod:`repro.sim.reference` computes by walking every slot.
The traffic path must agree latency-for-latency: the kernel, the
occurrence-walking retriever, and the fault-free phase memoization are
pure optimizations.
"""

import random

import pytest

from repro.bdisk.flat import build_aida_flat_program
from repro.bdisk.multidisk import build_multidisk_program, config_from_demand
from repro.sim import reference
from repro.sim.faults import BernoulliFaults
from repro.traffic import TrafficSpec, simulate_traffic


def aida_world():
    program = build_aida_flat_program([("A", 5, 10), ("B", 3, 6)])
    return program, ["A", "B"], {"A": 5, "B": 3}


def multidisk_world():
    files = [("hot", 2), ("warm", 3), ("cold", 4)]
    program = build_multidisk_program(
        config_from_demand(
            files, {"hot": 6.0, "warm": 2.0, "cold": 1.0}, levels=(4, 2, 1)
        )
    )
    return program, [name for name, _ in files], dict(files)


WORLDS = {"aida": aida_world, "multidisk": multidisk_world}


@pytest.mark.parametrize("world", sorted(WORLDS))
@pytest.mark.parametrize(
    "faults_seed", [None, 11], ids=["faultfree", "bernoulli"]
)
@pytest.mark.parametrize("arrival", ["deterministic", "poisson"])
def test_closed_population_matches_reference(world, faults_seed, arrival):
    program, catalogue, sizes = WORLDS[world]()
    deadlines = {name: 10_000 for name in catalogue}
    spec = TrafficSpec(
        clients=40,
        duration=300,
        arrival=arrival,
        popularity="zipf",
        zipf_skew=1.0,
        requests_per_client=1,  # closed: one request per session
        think_time=0,           # non-thinking
        seed=97,
    )
    faults = (
        None if faults_seed is None
        else BernoulliFaults(0.1, seed=faults_seed)
    )
    result = simulate_traffic(
        program,
        catalogue,
        spec,
        file_sizes=sizes,
        deadlines=deadlines,
        faults=faults,
        trace=True,
    )
    assert len(result.trace) == spec.clients
    for record in result.trace:
        # A fresh model reproduces the channel: decisions are a pure
        # function of (seed, slot).
        ref_faults = (
            None if faults_seed is None
            else BernoulliFaults(0.1, seed=faults_seed)
        )
        expected = reference.retrieve(
            program,
            record.file,
            sizes[record.file],
            start=record.issued,
            faults=ref_faults,
        )
        assert record.latency == expected.latency, record
        assert record.completed == expected.completed, record


def test_sessions_of_many_requests_match_reference_chain():
    """Multi-request sessions: each request is a reference retrieval
    starting one slot after the previous finish."""
    program, catalogue, sizes = aida_world()
    spec = TrafficSpec(
        clients=10,
        duration=100,
        arrival="deterministic",
        requests_per_client=4,
        think_time=0,
        seed=5,
    )
    result = simulate_traffic(
        program,
        catalogue,
        spec,
        file_sizes=sizes,
        deadlines={name: 10_000 for name in catalogue},
        trace=True,
    )
    by_client: dict[int, list] = {}
    for record in result.trace:
        by_client.setdefault(record.client, []).append(record)
    for records in by_client.values():
        records.sort(key=lambda r: r.issued)
        for earlier, later in zip(records, records[1:]):
            assert later.issued == earlier.issued + earlier.latency
        for record in records:
            expected = reference.retrieve(
                program, record.file, sizes[record.file],
                start=record.issued,
            )
            assert record.latency == expected.latency


def test_random_specs_reproduce_exactly():
    """Seeded determinism: the same spec always yields the same run."""
    program, catalogue, sizes = multidisk_world()
    meta = random.Random(1234)
    for _ in range(5):
        spec = TrafficSpec(
            clients=meta.randrange(5, 40),
            duration=meta.randrange(50, 500),
            arrival=meta.choice(["poisson", "deterministic", "bursty"]),
            popularity=meta.choice(["uniform", "zipf", "hotcold"]),
            requests_per_client=meta.randrange(1, 4),
            think_time=meta.randrange(0, 10),
            seed=meta.randrange(1000),
        )
        kwargs = dict(
            file_sizes=sizes,
            deadlines={name: 10_000 for name in catalogue},
            trace=True,
        )
        first = simulate_traffic(program, catalogue, spec, **kwargs)
        second = simulate_traffic(program, catalogue, spec, **kwargs)
        assert first.trace == second.trace
        assert first.summary == second.summary
